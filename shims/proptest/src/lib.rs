//! Offline stand-in for `proptest`.
//!
//! Supports the combinators this workspace's property tests use:
//! `any::<T>()`, range strategies, `Just`, tuples and `Vec`s of
//! strategies, `prop_map`, `prop_flat_map`, `prop_oneof!`, and the
//! `proptest!` macro with an optional `#![proptest_config(...)]` inner
//! attribute. Unlike real proptest there is **no shrinking** and no
//! failure-persistence file: a failing case panics with the standard
//! assertion message and the deterministic per-test seed reproduces it.

use std::ops::Range;

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of `T` (full range for integers,
/// finite-biased for floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical "arbitrary" distribution.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mostly moderate magnitudes, occasionally extreme — finite only.
        let raw: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let scale = 10f64.powi(rng.gen_range(-3i32..9));
        raw * scale
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Uniform choice among boxed strategies — what [`prop_oneof!`] builds.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn runner_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Property assertion (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = super::runner_rng("bounds");
        for _ in 0..200 {
            let v = (1usize..6).sample(&mut rng);
            assert!((1..6).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = super::runner_rng("compose");
        let s = (1usize..4).prop_flat_map(|n| {
            let parts: Vec<_> = (0..n).map(|_| 0i64..10).collect();
            parts.prop_map(|v| v.len())
        });
        for _ in 0..50 {
            let len = s.sample(&mut rng);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let mut rng = super::runner_rng("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuple args, ranges, any().
        #[test]
        fn macro_generates_cases(a in 0u64..100, (x, y) in (0i64..10, 0i64..10)) {
            prop_assert!(a < 100);
            prop_assert!(x < 10 && y < 10);
        }
    }
}
