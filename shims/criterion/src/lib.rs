//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark prints its mean time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Sets the warm-up window (accepted for API parity; this shim's
    /// calibration loop serves the same purpose).
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the measurement window (accepted for API parity).
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the default sample count (accepted for API parity).
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark receiving a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the closure; call [`Bencher::iter`] with the code to time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value live via `black_box`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate iteration count so one sample takes roughly 1ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let samples = sample_size.clamp(3, 20);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!("bench: {label:<48} mean {mean_ns:>12.1} ns/iter  (best {best_ns:.1} ns/iter, {iters} iters x {samples} samples)");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1u64 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("f", 32);
        assert_eq!(id.label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
