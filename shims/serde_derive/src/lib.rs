//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the shim `serde` crate's value-tree data model. Because the sandbox
//! cannot fetch `syn`/`quote`, the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes — everything this
//! workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, matching real serde's default).
//!
//! Generics and `#[serde(...)]` attributes are intentionally not
//! supported; deriving on such an item produces a compile error naming
//! this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde shim derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// --- parsing ------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Advances past `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && ident_of(&tokens[i]).as_deref() == Some("pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Splits a token list on commas at angle-bracket depth zero. Nested
/// `(...)`/`[...]`/`{...}` arrive as single group tokens, but generic
/// argument lists (`BTreeMap<String, V>`) are flat punctuation, so `<`
/// and `>` depth must be tracked explicitly.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, ',') && angle == 0 {
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
            continue;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Parses named fields out of a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for seg in split_top_commas(tokens) {
        let mut i = skip_attrs(&seg, 0);
        i = skip_vis(&seg, i);
        let name = seg
            .get(i)
            .and_then(ident_of)
            .ok_or_else(|| "serde shim derive: expected field name".to_owned())?;
        if !seg.get(i + 1).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!(
                "serde shim derive: expected `:` after field `{name}`"
            ));
        }
        names.push(name);
    }
    Ok(names)
}

/// Parses the fields of one enum variant or struct body element.
fn parse_variant(seg: &[TokenTree]) -> Result<(String, Fields), String> {
    let i = skip_attrs(seg, 0);
    let name = seg
        .get(i)
        .and_then(ident_of)
        .ok_or_else(|| "serde shim derive: expected variant name".to_owned())?;
    match seg.get(i + 1) {
        None => Ok((name, Fields::Unit)),
        Some(t) if is_punct(t, '=') => Ok((name, Fields::Unit)), // discriminant
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok((name, Fields::Tuple(split_top_commas(&inner).len())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok((name, Fields::Named(parse_named_fields(&inner)?)))
        }
        Some(other) => Err(format!(
            "serde shim derive: unexpected token after variant `{name}`: {other}"
        )),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = tokens
        .get(i)
        .and_then(ident_of)
        .ok_or_else(|| "serde shim derive: expected `struct` or `enum`".to_owned())?;
    i += 1;
    let name = tokens
        .get(i)
        .and_then(ident_of)
        .ok_or_else(|| "serde shim derive: expected item name".to_owned())?;
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported (the offline serde \
             stand-in only derives plain structs and enums)"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                None | Some(TokenTree::Punct(_)) => Fields::Unit, // `struct X;`
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_commas(&inner).len())
                }
                Some(other) => {
                    return Err(format!(
                        "serde shim derive: unexpected struct body: {other}"
                    ))
                }
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_commas(&inner)
                    .iter()
                    .map(|seg| parse_variant(seg))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Item::Enum { name, variants })
            }
            _ => Err("serde shim derive: expected enum body".to_owned()),
        },
        other => Err(format!(
            "serde shim derive: cannot derive for `{other}` items"
        )),
    }
}

// --- code generation ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// `field: from_value(...)` initializers for a named-field body read out
/// of the object expression `src`.
fn named_inits(owner: &str, fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?})\
                 .unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| e.ctx(\"{owner}.{f}\"))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Named(fs) => format!(
                "if !::std::matches!(v, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected object for {name}, found {{}}\", v.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                named_inits(name, fs, "v")
            ),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)\
                 .map_err(|e| e.ctx({name:?}))?))"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         _ => ::std::result::Result::Err(::serde::DeError::new(\
                             \"expected {n}-element array for {name}\")),\n\
                     }}",
                    items.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__val)\
                         .map_err(|e| e.ctx(\"{name}::{v}\"))?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match __val {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                                     \"expected {n}-element array for {name}::{v}\")),\n\
                             }},",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => Some(format!(
                        "{v:?} => {{\n\
                             if !::std::matches!(__val, ::serde::Value::Object(_)) {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::new(\
                                     \"expected object payload for {name}::{v}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                         }},",
                        named_inits(&format!("{name}::{v}"), fs, "__val")
                    )),
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, __val) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
