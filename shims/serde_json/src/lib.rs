//! Offline stand-in for `serde_json`: renders the shim `serde`'s
//! [`Value`] tree to JSON text and parses it back.
//!
//! Formatting conventions match real `serde_json` where the workspace
//! can observe them: non-finite floats serialize as `null`, object
//! order is preserved, `to_string_pretty` indents with two spaces.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns a parse error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// --- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            '[',
            ']',
            |o, it, ind, d| {
                write_value(o, it, ind, d);
            },
        ),
        Value::Object(pairs) => {
            write_seq(
                out,
                pairs.iter(),
                indent,
                depth,
                '{',
                '}',
                |o, (k, val), ind, d| {
                    write_escaped(o, k);
                    o.push(':');
                    if ind.is_some() {
                        o.push(' ');
                    }
                    write_value(o, val, ind, d);
                },
            );
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, Option<&str>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        let s = n.to_string();
        out.push_str(&s);
        // Keep floats recognizable as floats, like serde_json does.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (with nothing but whitespace after it).
fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the shim's
                            // writer; map lone surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"x": -3.5, "y": [1, 2e3], "s": "a\"b\\c\nd", "t": true}"#;
        let v = parse_value(text).unwrap();
        let back = parse_value(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 trailing").is_err());
        assert!(from_str::<bool>("truthy").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = "héllo → wörld ✓".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
