//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! that expose parking_lot's poison-free API (`lock()`/`read()`/
//! `write()` return guards directly, recovering from poisoning instead
//! of propagating it).

use std::sync::PoisonError;

/// Reader guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Writer guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's panic-tolerant semantics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-tolerant semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
