//! Offline stand-in for the `crossbeam::thread::scope` API, implemented
//! over `std::thread::scope` (stable since Rust 1.63, which makes the
//! crossbeam dependency unnecessary for this workspace's usage).

pub mod thread {
    //! Scoped threads.

    /// A scope handle; `spawn` borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Unlike crossbeam, the closure's
        /// argument carries no nested-scope handle — every caller in
        /// this workspace ignores it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err`: a panicking child propagates its panic at
    /// join time, matching how this workspace consumes the result
    /// (`.expect(...)`).
    #[allow(clippy::missing_panics_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (d, o) in data.chunks(2).zip(out.chunks_mut(2)) {
                s.spawn(move |_| {
                    for (x, y) in d.iter().zip(o.iter_mut()) {
                        *y = x * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
