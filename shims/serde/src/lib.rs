//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates.io, so the workspace ships
//! a self-contained replacement for the `serde` surface it uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums, and
//! `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Instead of real serde's visitor architecture, this shim routes
//! everything through one intermediate [`Value`] tree (the JSON data
//! model). [`Serialize`] renders into a `Value`; [`Deserialize`] reads
//! back out of one. The derive macro (in the sibling `serde_derive`
//! shim) generates those two impls with serde-compatible conventions:
//! structs as objects, unit enum variants as strings, data-carrying
//! variants as externally-tagged single-key objects.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, when this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefixes location context (e.g. a field path) onto the message.
    pub fn ctx(self, location: &str) -> Self {
        DeError {
            msg: format!("{location}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitives ---------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected integer for ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_serde_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if let Ok(n) = i64::try_from(*self) {
                    Value::I64(n)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected integer for ", stringify!($t), ", found {}"),
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // JSON has no NaN/Infinity literal; serde_json writes them as
        // null, so accept null back as NaN for round-trips.
        match v {
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| DeError::new(format!("expected number, found {}", v.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- containers ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output, matching BTreeMap.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {}-tuple, found array of {}", expected, items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<i64>::None.to_value(), Value::Null);
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3i64).to_value(), Value::I64(3));
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1.5f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn mismatched_shapes_error() {
        assert!(bool::from_value(&Value::I64(1)).is_err());
        assert!(Vec::<i64>::from_value(&Value::Str("x".into())).is_err());
        assert!(i64::from_value(&Value::F64(1.5)).is_err());
    }
}
