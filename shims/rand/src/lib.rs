//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the small slice of `rand` it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator behind
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is all the simulator and tuners require.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from their "standard" distribution
/// (`rand`'s `Standard`): `f64` in `[0,1)`, full-range integers, fair
/// booleans.
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is
/// below 2^-64 per draw, irrelevant for simulation workloads).
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(draw_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(draw_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` by expanding it with SplitMix64 (the
    /// same convention `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator real `rand` uses — streams differ —
    /// but deterministic, fast, and statistically strong enough for
    /// every consumer in this repository (simulation noise, samplers,
    /// tuner exploration).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice helpers (`rand::seq` subset).

    use super::Rng;

    /// Random helpers on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..32).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "32 elements almost surely move");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(7);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dyn_rng.gen_range(0..5);
        assert!(n < 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
