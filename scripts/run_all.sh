#!/usr/bin/env bash
# Regenerates every experiment in EXPERIMENTS.md.
# Text goes to results/<exp>.txt, structured data to results/<exp>.json.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p bench
mkdir -p results
for exp in table1 pipeline anatomy misconfig efficiency amortization \
           retune transfer slo joint colocation sensitivity tradeoff \
           ablation similarity whatif scheduler; do
  echo "== exp_$exp =="
  ./target/release/exp_$exp | tee results/exp_$exp.txt
  echo
done
