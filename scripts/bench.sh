#!/usr/bin/env bash
# Performance benchmark pipeline for the surrogate hot path.
#
# Usage: scripts/bench.sh
#
# Runs the Criterion micro-benchmarks (models + obs, short smoke
# windows — see the `criterion_group!` configs) and then the
# machine-readable latency benchmark, which writes `BENCH_models.json`
# at the repo root with fit/predict/propose latencies at n = 32/120/512
# and the speedups of the parallel and cached fit paths over the
# sequential per-grid-point baseline.
#
# `SEAMLESS_THREADS=<k>` overrides the worker count used by the
# parallel model-fitting layer (defaults to the machine's available
# parallelism).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench -p bench --bench models"
cargo bench -p bench --bench models

echo "==> cargo bench -p bench --bench obs"
cargo bench -p bench --bench obs

echo "==> cargo run --release -p bench --bin bench_models_json"
cargo run --release -p bench --bin bench_models_json

echo "BENCH OK (results in BENCH_models.json)"
