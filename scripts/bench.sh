#!/usr/bin/env bash
# Performance benchmark pipeline for the surrogate hot path.
#
# Usage: scripts/bench.sh
#
# Runs the Criterion micro-benchmarks (models + obs, short smoke
# windows — see the `criterion_group!` configs) and then the
# machine-readable latency benchmarks:
#
# * `BENCH_models.json` — fit/predict/propose latencies at
#   n = 32/120/512 and the speedups of the parallel and cached fit
#   paths over the sequential per-grid-point baseline;
# * `BENCH_service.json` — end-to-end service tuning at batch sizes
#   1/4/8 plus 8-tenant throughput (sequential loop vs `tune_many`),
#   with an equal-settings identical-results check.
#
# `SEAMLESS_THREADS=<k>` overrides the worker count used by the
# parallel model-fitting layer (defaults to the machine's available
# parallelism).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench -p bench --bench models"
cargo bench -p bench --bench models

echo "==> cargo bench -p bench --bench obs"
cargo bench -p bench --bench obs

echo "==> cargo run --release -p bench --bin bench_models_json"
cargo run --release -p bench --bin bench_models_json

echo "==> cargo run --release -p bench --bin bench_service_json"
SEAMLESS_THREADS="${SEAMLESS_THREADS:-2}" cargo run --release -p bench --bin bench_service_json

# Sanity-check the service report: valid JSON with the headline fields
# present (the binary itself asserts the equal-settings equivalence).
python3 - <<'EOF'
import json
with open("BENCH_service.json") as f:
    r = json.load(f)
assert r["multi_tenant"]["identical_best_at_equal_settings"] is True
assert r["multi_tenant"]["speedup"] > 0
assert {b["batch"] for b in r["single_tenant"]} == {1, 4, 8}
print(f"BENCH_service.json OK: {r['multi_tenant']['speedup']:.2f}x "
      f"8-tenant speedup at {r['threads']} threads")
EOF

echo "BENCH OK (results in BENCH_models.json, BENCH_service.json)"
