#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
#
# Mirrors what a hosted pipeline would run. Fails fast on the cheapest
# check first. Clippy warnings are errors so lints cannot accumulate.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo build -q -p bench --bins --benches"
cargo build -q -p bench --bins --benches

echo "CI OK"
