#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
#
# Mirrors what a hosted pipeline would run. Fails fast on the cheapest
# check first. Clippy warnings are errors so lints cannot accumulate.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Re-run the concurrency suites with an explicit worker count: the
# batched executor and sharded history store must behave identically
# whatever SEAMLESS_THREADS says.
echo "==> SEAMLESS_THREADS=2 cargo test -q -p seamless-core --test batch_equivalence --test history_stress"
SEAMLESS_THREADS=2 cargo test -q -p seamless-core --test batch_equivalence --test history_stress

# The chaos suite asserts seed-for-seed reproducible fault injection;
# running it at several worker counts proves fault decisions key off the
# global trial index, never the thread that happened to run the trial.
for threads in 1 2 8; do
  echo "==> SEAMLESS_THREADS=${threads} cargo test -q -p seamless-core --test fault_injection"
  SEAMLESS_THREADS="${threads}" cargo test -q -p seamless-core --test fault_injection
done

echo "==> cargo build -q -p bench --bins --benches"
cargo build -q -p bench --bins --benches

echo "CI OK"
