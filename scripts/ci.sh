#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
#
# Usage: scripts/ci.sh
#
# Mirrors what a hosted pipeline would run. Fails fast on the cheapest
# check first. Clippy warnings are errors so lints cannot accumulate.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# Re-run the concurrency suites with an explicit worker count: the
# batched executor and sharded history store must behave identically
# whatever SEAMLESS_THREADS says.
echo "==> SEAMLESS_THREADS=2 cargo test -q -p seamless-core --test batch_equivalence --test history_stress"
SEAMLESS_THREADS=2 cargo test -q -p seamless-core --test batch_equivalence --test history_stress

# The chaos suite asserts seed-for-seed reproducible fault injection;
# running it at several worker counts proves fault decisions key off the
# global trial index, never the thread that happened to run the trial.
for threads in 1 2 8; do
  echo "==> SEAMLESS_THREADS=${threads} cargo test -q -p seamless-core --test fault_injection"
  SEAMLESS_THREADS="${threads}" cargo test -q -p seamless-core --test fault_injection
done

echo "==> cargo build -q -p bench --bins --benches"
cargo build -q -p bench --bins --benches

# Live-telemetry smoke: a chaos-heavy stune run with the flight
# recorder armed must leave Chrome-trace dumps behind, and every dump
# must replay through trace_summary (which parses the trace, rebuilds
# span nesting, and exits non-zero on a malformed file).
echo "==> chaos flight-recorder smoke (stune --chaos --flight-dump + trace_summary)"
flight_dir="$(mktemp -d)"
cargo run -q --bin stune -- tune --workload pagerank --scale tiny \
  --tuner random --budget 12 --batch 4 --chaos 7 \
  --flight-dump "$flight_dir" --sample 2
dumps=("$flight_dir"/flight_*.json)
[ -e "${dumps[0]}" ] || { echo "no flight dump written"; exit 1; }
for dump in "${dumps[@]}"; do
  summary="$(cargo run -q -p bench --bin trace_summary -- "$dump")"
  echo "$summary" | head -n 1
  echo "$summary" | grep -q "# Trace summary" \
    || { echo "trace_summary could not replay $dump"; exit 1; }
done
rm -rf "$flight_dir"

echo "CI OK"
