//! `stune` — a small CLI over the seamless-tuning library.
//!
//! ```text
//! stune workloads                       list workloads
//! stune tuners                          list tuning strategies
//! stune catalog                         list the instance catalog
//! stune tune [OPTIONS]                  tune a workload
//!   --workload <name>     (default pagerank)
//!   --scale <tiny|small|ds1|ds2|ds3|<MB>>   (default small)
//!   --tuner <name>        (default bayesopt)
//!   --budget <n>          (default 20)
//!   --batch <n>           trials proposed+evaluated per round (default 1)
//!   --seed <n>            (default 42)
//!   --cluster <family.size:nodes>   (default h1.4xlarge:4)
//!   --goal <min-runtime|min-cost|deadline:<s>>  (default min-runtime)
//!   --chaos <seed>        inject the default chaos fault mix (10% errors,
//!                         2% hangs, 5% stragglers, 3% poisoned metrics)
//!                         with the given seed; trials run through the
//!                         resilient executor (retries, deadlines,
//!                         quarantine) and a degradation report is printed
//!   --metrics-addr <ip:port>   serve the metrics registry as OpenMetrics
//!                         text over HTTP for the duration of the run
//!                         (e.g. 127.0.0.1:9464; scrape with
//!                         `curl http://127.0.0.1:9464/metrics`)
//!   --flight-dump <dir>   arm the flight recorder: recent events are
//!                         kept in per-thread rings and dumped into
//!                         <dir> as Chrome-trace JSON on quarantine /
//!                         budget exhaustion, plus once at exit
//!   --sample <n>          head-based trace sampling for the flight
//!                         recorder: keep 1-in-<n> spans (errors and
//!                         censored trials always kept; default 1)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use seamless_tuning::core::goal::{GoalObjective, TuningGoal};
use seamless_tuning::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("workloads") => {
            for w in all_workloads() {
                println!("{}", w.name());
            }
            ExitCode::SUCCESS
        }
        Some("tuners") => {
            for k in TunerKind::all() {
                println!("{}", k.label());
            }
            ExitCode::SUCCESS
        }
        Some("catalog") => {
            println!(
                "{:<14} {:>5} {:>8} {:>10} {:>9} {:>8}",
                "instance", "vcpus", "mem(GB)", "disk(MB/s)", "net(MB/s)", "$/hr"
            );
            for i in seamless_tuning::simcluster::catalog::all_instances() {
                println!(
                    "{:<14} {:>5} {:>8} {:>10.0} {:>9.0} {:>8.3}",
                    i.name(),
                    i.vcpus,
                    i.mem_mb / 1024,
                    i.disk_mbps,
                    i.net_mbps,
                    i.price_per_hour
                );
            }
            ExitCode::SUCCESS
        }
        Some("tune") => tune(&args[1..]),
        _ => {
            eprintln!("usage: stune <workloads|tuners|catalog|tune> [options]");
            eprintln!("run `stune tune --workload pagerank --tuner bayesopt --budget 20`");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(flags)
}

fn parse_scale(s: &str) -> Result<DataScale, String> {
    Ok(match s {
        "tiny" => DataScale::Tiny,
        "small" => DataScale::Small,
        "ds1" => DataScale::Ds1,
        "ds2" => DataScale::Ds2,
        "ds3" => DataScale::Ds3,
        other => DataScale::Custom(
            other
                .parse::<f64>()
                .map_err(|_| format!("unknown scale `{other}`"))?,
        ),
    })
}

fn parse_tuner(s: &str) -> Result<TunerKind, String> {
    TunerKind::all()
        .into_iter()
        .find(|k| k.label() == s)
        .ok_or_else(|| format!("unknown tuner `{s}` (see `stune tuners`)"))
}

fn parse_cluster(s: &str) -> Result<ClusterSpec, String> {
    let (inst, nodes) = s
        .split_once(':')
        .ok_or_else(|| format!("cluster must look like h1.4xlarge:4, got `{s}`"))?;
    let (family, size) = inst
        .split_once('.')
        .ok_or_else(|| format!("instance must look like h1.4xlarge, got `{inst}`"))?;
    let instance = seamless_tuning::simcluster::catalog::lookup(family, size)
        .ok_or_else(|| format!("unknown instance `{inst}` (see `stune catalog`)"))?;
    let nodes: u32 = nodes
        .parse()
        .map_err(|_| format!("bad node count `{nodes}`"))?;
    if nodes == 0 {
        return Err("node count must be positive".to_owned());
    }
    Ok(ClusterSpec::new(instance, nodes))
}

fn parse_goal(s: &str) -> Result<TuningGoal, String> {
    if let Some(deadline) = s.strip_prefix("deadline:") {
        return Ok(TuningGoal::Deadline {
            seconds: deadline
                .parse()
                .map_err(|_| format!("bad deadline `{deadline}`"))?,
        });
    }
    match s {
        "min-runtime" => Ok(TuningGoal::MinRuntime),
        "min-cost" => Ok(TuningGoal::MinCost),
        other => Err(format!("unknown goal `{other}`")),
    }
}

fn tune(args: &[String]) -> ExitCode {
    let run = || -> Result<(), String> {
        let flags = parse_flags(args)?;
        let get = |key: &str, default: &str| -> String {
            flags
                .get(key)
                .cloned()
                .unwrap_or_else(|| default.to_owned())
        };
        let workload_name = get("workload", "pagerank");
        let workload = workload_by_name_or_err(&workload_name)?;
        let scale = parse_scale(&get("scale", "small"))?;
        let tuner = parse_tuner(&get("tuner", "bayesopt"))?;
        let budget: usize = get("budget", "20")
            .parse()
            .map_err(|_| "bad --budget".to_owned())?;
        let batch: usize = get("batch", "1")
            .parse()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| "bad --batch (must be >= 1)".to_owned())?;
        let seed: u64 = get("seed", "42")
            .parse()
            .map_err(|_| "bad --seed".to_owned())?;
        let cluster = parse_cluster(&get("cluster", "h1.4xlarge:4"))?;
        let goal = parse_goal(&get("goal", "min-runtime"))?;
        let chaos: Option<u64> = match flags.get("chaos") {
            None => None,
            Some(s) => Some(s.parse().map_err(|_| "bad --chaos (seed)".to_owned())?),
        };
        let sample: u64 = get("sample", "1")
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| "bad --sample (must be >= 1)".to_owned())?;

        // Live telemetry: the scrape endpoint stays up for the whole
        // run (it is dropped — and therefore shut down — on return).
        let _metrics_server = match flags.get("metrics-addr") {
            None => None,
            Some(addr) => {
                let server = seamless_tuning::obs::MetricsServer::start(addr.as_str())
                    .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
                println!(
                    "serving OpenMetrics on http://{}/metrics",
                    server.local_addr()
                );
                Some(server)
            }
        };
        let recorder = flags.get("flight-dump").map(|dir| {
            use seamless_tuning::obs;
            let recorder = obs::FlightRecorder::new(4096, dir);
            let sink: std::sync::Arc<dyn obs::Sink> = if sample > 1 {
                obs::SamplingSink::new(recorder.clone(), obs::SamplePolicy::one_in(sample))
            } else {
                recorder.clone()
            };
            obs::install(sink);
            obs::flightrec::set_dump_target(recorder.clone());
            println!("flight recorder armed: dumps in {dir}/ (sampling 1-in-{sample})");
            recorder
        });

        let job = workload.job(scale);
        println!(
            "tuning {} on {} with {} ({} executions, goal {})",
            job.name,
            cluster,
            tuner.label(),
            budget,
            goal.label()
        );

        let inner = DiscObjective::new(cluster, job, &SimEnvironment::dedicated(seed));
        let mut objective = GoalObjective::new(inner, goal);
        let mut session = TuningSession::new(tuner, seed ^ 0x5EED);
        if let Some(chaos_seed) = chaos {
            println!("chaos: injecting faults with seed {chaos_seed}");
            session.with_resilience(
                RetryPolicy::default(),
                FaultInjector::new(chaos_seed, FaultPlan::chaos()),
            );
        }
        // batch == 1 is the sequential loop; larger batches propose and
        // evaluate whole rounds at once.
        let outcome = session.run_batched(&mut objective, budget, batch);

        if let Some(d) = &outcome.degradation {
            println!(
                "resilience: {} ok, {} failed, {} timed out, {} retries, {} quarantined{}",
                d.completed,
                d.failed,
                d.timed_out,
                d.retries,
                d.quarantined,
                if d.budget_exhausted {
                    " (failure budget exhausted — partial result)"
                } else {
                    ""
                }
            );
        }

        match &outcome.best {
            None => println!("no configuration survived — every execution crashed"),
            Some(best) => {
                let true_runtime = best
                    .metrics
                    .as_ref()
                    .map_or(best.runtime_s, |m| m.runtime_s);
                println!(
                    "\nbest after {} executions: {:.1}s (${:.4}/run), tuning spend ${:.2}",
                    outcome.history.len(),
                    true_runtime,
                    best.cost_usd,
                    outcome.total_cost_usd()
                );
                println!("configuration:");
                for (name, value) in best.config.iter() {
                    println!("  {name} = {value}");
                }
            }
        }

        if let Some(recorder) = recorder {
            // Failure-path dumps (quarantine / budget exhaustion) have
            // already been written; leave one final on-demand dump so
            // every armed run ends with a trace to inspect.
            match recorder.dump("on_demand") {
                Ok(path) => println!(
                    "flight dump: {} ({} dump(s) this run)",
                    path.display(),
                    recorder.dumps()
                ),
                Err(e) => eprintln!("flight dump failed: {e}"),
            }
            seamless_tuning::obs::flightrec::uninstall();
            seamless_tuning::obs::uninstall_all();
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn workload_by_name_or_err(name: &str) -> Result<Box<dyn Workload>, String> {
    seamless_tuning::workloads::workload_by_name(name)
        .ok_or_else(|| format!("unknown workload `{name}` (see `stune workloads`)"))
}
