//! # seamless-tuning
//!
//! A reproduction of *"Towards Seamless Configuration Tuning of Big Data
//! Analytics"* (Fekry et al., ICDCS 2019): a configuration-tuning
//! framework for DISC (Data Intensive Scalable Computing) workloads,
//! driven against a discrete-event Spark/cloud simulator.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`confspace`] — typed parameter spaces, the Spark/cloud catalogs,
//!   samplers and feature encoding;
//! * [`simcluster`] — the Spark + cloud discrete-event simulator;
//! * [`workloads`] — the HiBench-like workload suite (Wordcount,
//!   Terasort, PageRank, Bayes, K-means, SQL join);
//! * [`models`] — surrogate models (GP, CART, random forest, Ernest),
//!   clustering and change-point detection;
//! * `core` (crate `seamless_core`) — the tuner strategies and the seamless
//!   tuning *service* (characterization, transfer, re-tuning detection,
//!   SLO metrics, the two-stage Fig. 1 pipeline).
//!
//! # Quickstart
//!
//! Tune PageRank on the paper's Table I testbed with CherryPick-style
//! Bayesian optimization:
//!
//! ```
//! use seamless_tuning::prelude::*;
//!
//! let job = Pagerank::new().job(DataScale::Tiny);
//! let mut objective = DiscObjective::new(
//!     ClusterSpec::table1_testbed(),
//!     job,
//!     &SimEnvironment::dedicated(42),
//! );
//! let mut session = TuningSession::new(TunerKind::BayesOpt, 7);
//! let outcome = session.run(&mut objective, 15);
//! assert!(outcome.best_runtime_s() > 0.0);
//! assert!(outcome.best_config().is_some());
//! ```

pub use confspace;
pub use models;
pub use obs;
pub use seamless_core as core;
pub use simcluster;
pub use workloads;

/// Convenience re-exports for examples and quick experiments.
pub mod prelude {
    pub use confspace::{
        cloud::cloud_space, spark::spark_space, Configuration, ParamSpace, Sampler, UniformSampler,
    };
    pub use seamless_core::service::ServiceConfig;
    pub use seamless_core::{
        CloudObjective, DiscObjective, FaultInjector, FaultPlan, GoalObjective, HistoryStore,
        JointObjective, ManagedWorkload, Objective, Observation, RetryPolicy, RetuneMonitor,
        RetunePolicy, SeamlessTuner, SimEnvironment, Tuner, TunerKind, TuningGoal, TuningOutcome,
        TuningSession, WorkloadSignature,
    };
    pub use simcluster::catalog::InstanceType;
    pub use simcluster::cluster::ClusterSpec;
    pub use simcluster::{InterferenceModel, JobSpec, Simulator, SparkEnv};
    pub use workloads::{
        all_workloads, table1_workloads, BayesClassifier, DataScale, KMeans, LogisticRegression,
        Pagerank, SqlJoin, Terasort, Wordcount, Workload,
    };
}
