//! Integration test: the full stack is reproducible under fixed seeds —
//! a requirement for every experiment in EXPERIMENTS.md.

use seamless_tuning::prelude::*;

fn full_session(seed: u64) -> (f64, Vec<f64>) {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Terasort::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(seed),
    );
    let mut session = TuningSession::new(TunerKind::Genetic, seed);
    let outcome = session.run(&mut obj, 12);
    (
        outcome.best_runtime_s(),
        outcome.history.iter().map(|o| o.runtime_s).collect(),
    )
}

#[test]
fn identical_seeds_give_identical_sessions() {
    let (best_a, hist_a) = full_session(42);
    let (best_b, hist_b) = full_session(42);
    assert_eq!(best_a, best_b);
    assert_eq!(hist_a, hist_b);
}

#[test]
fn different_seeds_give_different_trajectories() {
    let (_, hist_a) = full_session(1);
    let (_, hist_b) = full_session(2);
    assert_ne!(hist_a, hist_b);
}

#[test]
fn simulator_is_deterministic_across_workloads() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cluster = ClusterSpec::table1_testbed();
    let cfg = seamless_tuning::core::SeamlessTuner::house_default();
    let env = SparkEnv::resolve(&cluster, &cfg).expect("fits");
    for w in all_workloads() {
        let job = w.job(DataScale::Tiny);
        let sim = Simulator::dedicated();
        let a = sim
            .run(&env, &job, &mut StdRng::seed_from_u64(9))
            .expect("ok")
            .runtime_s;
        let b = sim
            .run(&env, &job, &mut StdRng::seed_from_u64(9))
            .expect("ok")
            .runtime_s;
        assert_eq!(a, b, "{} is nondeterministic", w.name());
    }
}
