//! Integration test: every tuning strategy drives the real simulator
//! and behaves sanely; model-guided search beats blind search.

use seamless_tuning::prelude::*;

fn tune(kind: TunerKind, budget: usize, seed: u64) -> TuningOutcome {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Pagerank::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(seed),
    );
    let mut session = TuningSession::new(kind, seed ^ 0xAB);
    session.run(&mut obj, budget)
}

#[test]
fn every_strategy_finds_a_working_configuration() {
    for kind in TunerKind::all() {
        let outcome = tune(kind, 15, 7);
        assert!(
            outcome.best.is_some(),
            "{kind} found no successful configuration in 15 executions"
        );
        let best = outcome.best_runtime_s();
        assert!(best.is_finite() && best > 0.0, "{kind}: best {best}");
        assert_eq!(outcome.history.len(), 15);
    }
}

#[test]
fn best_so_far_curves_are_monotone() {
    for kind in [
        TunerKind::BayesOpt,
        TunerKind::Genetic,
        TunerKind::BestConfig,
    ] {
        let outcome = tune(kind, 20, 11);
        let curve = outcome.best_so_far();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0], "{kind}: best-so-far must not regress");
        }
    }
}

#[test]
fn model_guided_search_beats_random_on_average() {
    let mut bo = 0.0;
    let mut rnd = 0.0;
    for seed in 0..4u64 {
        bo += tune(TunerKind::BayesOpt, 25, seed).best_runtime_s();
        rnd += tune(TunerKind::Random, 25, seed).best_runtime_s();
    }
    assert!(
        bo <= rnd * 1.05,
        "BO total {bo:.1} should not lose to random {rnd:.1} by >5%"
    );
}

#[test]
fn tuning_beats_spark_defaults_by_an_order_of_magnitude() {
    // §I's 89x claim in miniature: pagerank under the shipped defaults
    // vs 25 executions of BO.
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Pagerank::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(3),
    );
    let default = obj.evaluate(&spark_space().default_configuration());
    let tuned = tune(TunerKind::BayesOpt, 25, 3).best_runtime_s();
    // The default either crashes (penalty) or is dramatically slower.
    assert!(
        default.runtime_s / tuned > 5.0,
        "default {} vs tuned {}",
        default.runtime_s,
        tuned
    );
}

#[test]
fn warm_start_is_visible_to_the_strategy_but_not_charged() {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Pagerank::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(5),
    );
    let donated = tune(TunerKind::Random, 10, 21).history;
    let mut session = TuningSession::new(TunerKind::BayesOpt, 99);
    session.warm_start(donated);
    let outcome = session.run(&mut obj, 8);
    assert_eq!(
        outcome.history.len(),
        8,
        "warm observations are not in the outcome"
    );
}
