//! Integration test: managed execution detects workload change and the
//! re-tuned deployment beats the stale one (§IV-B + §V-D end-to-end).

use seamless_tuning::prelude::*;

#[test]
fn managed_execution_retunes_and_improves_after_growth() {
    let env = SimEnvironment::dedicated(77);
    let cluster = ClusterSpec::table1_testbed();

    // Tune at the small size first.
    let mut obj = DiscObjective::new(cluster.clone(), Pagerank::new().job(DataScale::Tiny), &env);
    let mut session = TuningSession::new(TunerKind::BayesOpt, 5);
    let tuned_small = session
        .run(&mut obj, 15)
        .best_config()
        .cloned()
        .expect("found a configuration");

    let mut managed = ManagedWorkload::new(
        cluster.clone(),
        Pagerank::new().job(DataScale::Tiny),
        tuned_small.clone(),
        ServiceConfig {
            retune_budget: 10,
            ..ServiceConfig::default()
        },
        &env,
        6,
    );
    for _ in 0..5 {
        let (obs, spent) = managed.run_once();
        assert!(obs.is_ok());
        assert_eq!(spent, 0);
    }

    // Input grows 16x.
    managed.set_job(Pagerank::new().job(DataScale::Custom(8192.0)));
    let mut retune_seen = false;
    let mut post_retune_runtimes = Vec::new();
    let mut stale = DiscObjective::new(
        cluster,
        Pagerank::new().job(DataScale::Custom(8192.0)),
        &SimEnvironment::dedicated(78),
    );
    let mut stale_runtimes = Vec::new();
    for _ in 0..8 {
        let (obs, spent) = managed.run_once();
        retune_seen |= spent > 0;
        if retune_seen && obs.is_ok() {
            post_retune_runtimes.push(obs.runtime_s);
        }
        stale_runtimes.push(stale.evaluate(&tuned_small).runtime_s);
    }
    assert!(retune_seen, "the monitor must fire after 16x input growth");
    assert!(!managed.retunings.is_empty());

    // After re-tuning, managed runs should not be slower than the stale
    // configuration on the grown input (allowing noise).
    if !post_retune_runtimes.is_empty() {
        let managed_mean: f64 =
            post_retune_runtimes.iter().sum::<f64>() / post_retune_runtimes.len() as f64;
        let stale_mean: f64 = stale_runtimes.iter().sum::<f64>() / stale_runtimes.len() as f64;
        assert!(
            managed_mean <= stale_mean * 1.15,
            "managed {managed_mean:.1} vs stale {stale_mean:.1}"
        );
    }
}

#[test]
fn fixed_threshold_is_jumpier_than_drift_detection() {
    // Feed both policies the same noisy-but-stationary stream.
    let env = SimEnvironment::dedicated(80);
    let cfg = seamless_tuning::core::SeamlessTuner::house_default();
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        SqlJoin::new().job(DataScale::Tiny),
        &env,
    );
    let stream: Vec<_> = (0..40).map(|_| obj.evaluate(&cfg)).collect();

    let fires = |policy: RetunePolicy| -> usize {
        let mut m = RetuneMonitor::new(policy);
        let mut count = 0;
        for obs in &stream {
            if m.observe(obs).is_some() {
                count += 1;
                m.reset();
            }
        }
        count
    };

    let tight_fixed = fires(RetunePolicy::FixedThresholdPct(10));
    let drift = fires(RetunePolicy::PageHinkley);
    assert!(
        tight_fixed >= drift,
        "fixed+10% fired {tight_fixed}, page-hinkley {drift}"
    );
}
