//! Integration test: the Table I shape must hold end-to-end.
//!
//! A scaled-down version of experiment E1 (40-configuration pools,
//! smaller sizes, savings averaged over three pools like the full
//! experiment) asserting the paper's qualitative result: re-tuning over
//! growing inputs saves substantially for Pagerank and nearly nothing
//! for Wordcount.

use seamless_tuning::prelude::*;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(cluster: &ClusterSpec, job: &simcluster::JobSpec, cfg: &Configuration) -> f64 {
    let Ok(env) = SparkEnv::resolve(cluster, cfg) else {
        return f64::INFINITY;
    };
    let sim = Simulator::dedicated();
    let mut total = 0.0;
    for seed in [11u64, 12] {
        let mut rng = StdRng::seed_from_u64(seed);
        match sim.run(&env, job, &mut rng) {
            Ok(r) => total += r.runtime_s,
            Err(_) => return f64::INFINITY,
        }
    }
    total / 2.0
}

/// Best-of-pool runtime and config for one (workload, size).
fn best_of_pool(
    cluster: &ClusterSpec,
    job: &simcluster::JobSpec,
    pool: &[Configuration],
) -> (Configuration, f64) {
    pool.iter()
        .map(|c| (c.clone(), run(cluster, job, c)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("pool non-empty")
}

/// Mean re-tuning saving over three independent pools; crashed reuse
/// counts as a full saving (re-tuning rescued the job).
fn saving(workload: &dyn Workload, small: DataScale, big: DataScale) -> f64 {
    let cluster = ClusterSpec::table1_testbed();
    let space = spark_space();
    let mut savings = Vec::new();
    for pool_seed in [99u64, 100, 101] {
        let mut rng = StdRng::seed_from_u64(pool_seed);
        let pool = UniformSampler.sample_n(&space, 40, &mut rng);
        let (cfg_small, _) = best_of_pool(&cluster, &workload.job(small), &pool);
        let (_, best_big) = best_of_pool(&cluster, &workload.job(big), &pool);
        let reused = run(&cluster, &workload.job(big), &cfg_small);
        savings.push(if reused.is_finite() {
            ((reused - best_big) / reused).max(0.0)
        } else {
            1.0
        });
    }
    savings.iter().sum::<f64>() / savings.len() as f64
}

#[test]
fn pagerank_retuning_saves_much_more_than_wordcount() {
    let small = DataScale::Custom(2048.0);
    let big = DataScale::Custom(49_152.0);
    let pr = saving(&Pagerank::new(), small, big);
    let wc = saving(&Wordcount::new(), small, big);
    assert!(
        pr > wc + 0.08,
        "pagerank saving {pr:.2} should exceed wordcount saving {wc:.2} by >8pts"
    );
    assert!(
        wc < 0.15,
        "wordcount re-tuning saving should be marginal, got {wc:.2}"
    );
    assert!(
        pr > 0.10,
        "24x growth must create a real re-tuning opportunity, got {pr:.2}"
    );
}
