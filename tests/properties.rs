//! Cross-crate property tests: invariants that must hold for *any*
//! configuration the samplers can produce.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use seamless_tuning::prelude::*;

/// Draws a valid random Spark configuration from a proptest seed.
fn arb_spark_config() -> impl Strategy<Value = Configuration> {
    any::<u64>().prop_map(|seed| {
        let space = spark_space();
        let mut rng = StdRng::seed_from_u64(seed);
        UniformSampler.sample(&space, &mut rng)
    })
}

fn arb_cloud_config() -> impl Strategy<Value = Configuration> {
    any::<u64>().prop_map(|seed| {
        let space = cloud_space();
        let mut rng = StdRng::seed_from_u64(seed);
        UniformSampler.sample(&space, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled configuration round-trips the feature encoding:
    /// exactly for discrete parameters, to 1e-9 relative error for
    /// continuous ones (one decode multiplication of rounding).
    #[test]
    fn encode_decode_roundtrip(cfg in arb_spark_config()) {
        let space = spark_space();
        let decoded = space.decode(&space.encode(&cfg));
        for (name, original) in cfg.iter() {
            let back = decoded.get(name).expect("decoded keeps every parameter");
            match (original, back) {
                (
                    seamless_tuning::confspace::ParamValue::Float(a),
                    seamless_tuning::confspace::ParamValue::Float(b),
                ) => {
                    prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "{name}: {a} vs {b}");
                }
                (a, b) => prop_assert_eq!(a, b, "{} differs", name),
            }
        }
    }

    /// Every sampled configuration either resolves to an executor
    /// layout or fails with a launch error — never panics.
    #[test]
    fn resolve_never_panics(cfg in arb_spark_config()) {
        let cluster = ClusterSpec::table1_testbed();
        let _ = SparkEnv::resolve(&cluster, &cfg);
    }

    /// Successful simulations produce positive, finite runtimes and
    /// costs, and metrics whose time fractions sum to ~1.
    #[test]
    fn simulation_outputs_are_sane(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let job = Wordcount::new().job(DataScale::Tiny);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(r) = Simulator::dedicated().run(&env, &job, &mut rng) {
                prop_assert!(r.runtime_s.is_finite() && r.runtime_s > 0.0);
                prop_assert!(r.cost_usd > 0.0);
                let m = &r.metrics;
                let frac_sum = m.cpu_frac() + m.io_frac() + m.net_frac()
                    + m.gc_frac() + m.ser_frac();
                prop_assert!((frac_sum - 1.0).abs() < 1e-6, "fractions sum to {frac_sum}");
            }
        }
    }

    /// More input never makes the same configuration meaningfully
    /// faster: 16x the data must cost at least 1.2x the *expected*
    /// runtime (averaged over seeds, so straggler tails on tiny jobs
    /// cannot flip the comparison).
    #[test]
    fn runtime_is_monotone_in_input(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let sim = Simulator::dedicated();
            let small = Wordcount::new().job(DataScale::Custom(512.0));
            let big = Wordcount::new().job(DataScale::Custom(8192.0));
            let mean = |job: &simcluster::JobSpec| -> Option<f64> {
                let mut total = 0.0;
                for i in 0..5u64 {
                    total += sim
                        .run(&env, job, &mut StdRng::seed_from_u64(seed ^ (i * 77)))
                        .ok()?
                        .runtime_s;
                }
                Some(total / 5.0)
            };
            if let (Some(a), Some(b)) = (mean(&small), mean(&big)) {
                prop_assert!(b > a * 1.2, "16x input: {a} -> {b}");
            }
        }
    }

    /// Cloud configurations always denote a purchasable cluster with a
    /// positive price, and cost scales linearly with time.
    #[test]
    fn cloud_configs_denote_real_clusters(cfg in arb_cloud_config()) {
        let cluster = ClusterSpec::from_config(&cfg).expect("catalog covers the space");
        prop_assert!(cluster.price_per_hour() > 0.0);
        let one_hour = cluster.cost_for(3600.0);
        let two_hours = cluster.cost_for(7200.0);
        prop_assert!((two_hours - 2.0 * one_hour).abs() < 1e-9);
    }

    /// The workload signature is always a bounded vector.
    #[test]
    fn signatures_are_bounded(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let job = BayesClassifier::new().job(DataScale::Tiny);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(r) = Simulator::dedicated().run(&env, &job, &mut rng) {
                let sig = WorkloadSignature::from_metrics(&r.metrics);
                prop_assert!(sig.features().iter().all(|f| (0.0..=1.0).contains(f)));
            }
        }
    }

    /// Observations fed to a tuner never produce an invalid proposal.
    #[test]
    fn tuner_proposals_are_always_valid(seed in any::<u64>(), kind_idx in 0usize..11) {
        let space = spark_space();
        let kind = TunerKind::all()[kind_idx];
        let mut tuner = kind.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = Vec::new();
        for i in 0..6 {
            let cfg = tuner.propose(&space, &history, &mut rng);
            prop_assert!(space.validate(&cfg).is_ok(), "{kind} proposal {i} invalid");
            history.push(seamless_tuning::core::Observation {
                config: cfg,
                runtime_s: 10.0 + i as f64,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
    }
}
