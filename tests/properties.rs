//! Cross-crate property tests: invariants that must hold for *any*
//! configuration the samplers can produce.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use seamless_tuning::prelude::*;

/// Draws a valid random Spark configuration from a proptest seed.
fn arb_spark_config() -> impl Strategy<Value = Configuration> {
    any::<u64>().prop_map(|seed| {
        let space = spark_space();
        let mut rng = StdRng::seed_from_u64(seed);
        UniformSampler.sample(&space, &mut rng)
    })
}

fn arb_cloud_config() -> impl Strategy<Value = Configuration> {
    any::<u64>().prop_map(|seed| {
        let space = cloud_space();
        let mut rng = StdRng::seed_from_u64(seed);
        UniformSampler.sample(&space, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled configuration round-trips the feature encoding:
    /// exactly for discrete parameters, to 1e-9 relative error for
    /// continuous ones (one decode multiplication of rounding).
    #[test]
    fn encode_decode_roundtrip(cfg in arb_spark_config()) {
        let space = spark_space();
        let decoded = space.decode(&space.encode(&cfg));
        for (name, original) in cfg.iter() {
            let back = decoded.get(name).expect("decoded keeps every parameter");
            match (original, back) {
                (
                    seamless_tuning::confspace::ParamValue::Float(a),
                    seamless_tuning::confspace::ParamValue::Float(b),
                ) => {
                    prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "{name}: {a} vs {b}");
                }
                (a, b) => prop_assert_eq!(a, b, "{} differs", name),
            }
        }
    }

    /// Every sampled configuration either resolves to an executor
    /// layout or fails with a launch error — never panics.
    #[test]
    fn resolve_never_panics(cfg in arb_spark_config()) {
        let cluster = ClusterSpec::table1_testbed();
        let _ = SparkEnv::resolve(&cluster, &cfg);
    }

    /// Successful simulations produce positive, finite runtimes and
    /// costs, and metrics whose time fractions sum to ~1.
    #[test]
    fn simulation_outputs_are_sane(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let job = Wordcount::new().job(DataScale::Tiny);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(r) = Simulator::dedicated().run(&env, &job, &mut rng) {
                prop_assert!(r.runtime_s.is_finite() && r.runtime_s > 0.0);
                prop_assert!(r.cost_usd > 0.0);
                let m = &r.metrics;
                let frac_sum = m.cpu_frac() + m.io_frac() + m.net_frac()
                    + m.gc_frac() + m.ser_frac();
                prop_assert!((frac_sum - 1.0).abs() < 1e-6, "fractions sum to {frac_sum}");
            }
        }
    }

    /// More input never makes the same configuration meaningfully
    /// faster: 16x the data must cost at least 1.2x the *expected*
    /// runtime (averaged over seeds, so straggler tails on tiny jobs
    /// cannot flip the comparison).
    #[test]
    fn runtime_is_monotone_in_input(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let sim = Simulator::dedicated();
            let small = Wordcount::new().job(DataScale::Custom(512.0));
            let big = Wordcount::new().job(DataScale::Custom(8192.0));
            let mean = |job: &simcluster::JobSpec| -> Option<f64> {
                let mut total = 0.0;
                for i in 0..5u64 {
                    total += sim
                        .run(&env, job, &mut StdRng::seed_from_u64(seed ^ (i * 77)))
                        .ok()?
                        .runtime_s;
                }
                Some(total / 5.0)
            };
            if let (Some(a), Some(b)) = (mean(&small), mean(&big)) {
                prop_assert!(b > a * 1.2, "16x input: {a} -> {b}");
            }
        }
    }

    /// Cloud configurations always denote a purchasable cluster with a
    /// positive price, and cost scales linearly with time.
    #[test]
    fn cloud_configs_denote_real_clusters(cfg in arb_cloud_config()) {
        let cluster = ClusterSpec::from_config(&cfg).expect("catalog covers the space");
        prop_assert!(cluster.price_per_hour() > 0.0);
        let one_hour = cluster.cost_for(3600.0);
        let two_hours = cluster.cost_for(7200.0);
        prop_assert!((two_hours - 2.0 * one_hour).abs() < 1e-9);
    }

    /// The workload signature is always a bounded vector.
    #[test]
    fn signatures_are_bounded(cfg in arb_spark_config(), seed in any::<u64>()) {
        let cluster = ClusterSpec::table1_testbed();
        if let Ok(env) = SparkEnv::resolve(&cluster, &cfg) {
            let job = BayesClassifier::new().job(DataScale::Tiny);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(r) = Simulator::dedicated().run(&env, &job, &mut rng) {
                let sig = WorkloadSignature::from_metrics(&r.metrics);
                prop_assert!(sig.features().iter().all(|f| (0.0..=1.0).contains(f)));
            }
        }
    }

    /// The un-jittered backoff schedule is monotone non-decreasing and
    /// never exceeds its cap, for any (finite, sane) policy parameters.
    #[test]
    fn retry_backoff_is_monotone_and_capped(
        base in 0.0f64..10.0,
        mult in 0.5f64..8.0,
        cap in 0.0f64..60.0,
        attempts in 1u32..12,
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_backoff_s: base,
            backoff_multiplier: mult,
            max_backoff_s: cap,
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut prev = 0.0;
        for k in 0..attempts {
            let b = policy.backoff_s(k);
            prop_assert!(b.is_finite());
            prop_assert!(b >= prev, "backoff decreased: {prev} -> {b} at attempt {k}");
            prop_assert!(b <= cap + 1e-12, "backoff {b} exceeds cap {cap}");
            prev = b;
        }
    }

    /// Cumulative backoff across a trial's whole retry schedule never
    /// exceeds the per-trial deadline, whatever the policy and seed.
    #[test]
    fn retry_schedule_respects_the_deadline(
        base in 0.0f64..10.0,
        mult in 1.0f64..4.0,
        cap in 0.0f64..60.0,
        jitter in 0.0f64..1.0,
        deadline in 0.0f64..120.0,
        attempts in 1u32..16,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_backoff_s: base,
            backoff_multiplier: mult,
            max_backoff_s: cap,
            jitter_frac: jitter,
            trial_deadline_s: deadline,
            ..RetryPolicy::default()
        };
        let schedule = policy.schedule(seed);
        prop_assert!(schedule.len() < attempts as usize || attempts == 0);
        let total: f64 = schedule.iter().sum();
        prop_assert!(
            total <= deadline,
            "cumulative backoff {total} exceeds deadline {deadline}"
        );
        for b in &schedule {
            prop_assert!(b.is_finite() && *b >= 0.0);
        }
    }

    /// Jittered backoff is deterministic in `(policy, attempt, seed)` —
    /// the same seed replays the same waits — bounded by the configured
    /// jitter fraction, and different seeds actually perturb it.
    #[test]
    fn retry_jitter_is_reproducible_from_the_seed(
        jitter in 0.01f64..1.0,
        attempt in 0u32..8,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy {
            base_backoff_s: 1.0,
            backoff_multiplier: 1.0,
            max_backoff_s: 1.0,
            jitter_frac: jitter,
            ..RetryPolicy::default()
        };
        let a = policy.jittered_backoff_s(attempt, seed);
        let b = policy.jittered_backoff_s(attempt, seed);
        prop_assert_eq!(a.to_bits(), b.to_bits(), "same seed, same jitter");
        let bare = policy.backoff_s(attempt);
        prop_assert!(a >= bare && a <= bare * (1.0 + jitter) + 1e-12,
            "jittered {a} outside [{bare}, {}]", bare * (1.0 + jitter));
        // Some other seed must land elsewhere (jitter is not a constant).
        let moved = (0..16u64).any(|d| {
            policy.jittered_backoff_s(attempt, seed ^ (d + 1)).to_bits() != a.to_bits()
        });
        prop_assert!(moved, "jitter ignores the seed");
    }

    /// Observations fed to a tuner never produce an invalid proposal.
    #[test]
    fn tuner_proposals_are_always_valid(seed in any::<u64>(), kind_idx in 0usize..11) {
        let space = spark_space();
        let kind = TunerKind::all()[kind_idx];
        let mut tuner = kind.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = Vec::new();
        for i in 0..6 {
            let cfg = tuner.propose(&space, &history, &mut rng);
            prop_assert!(space.validate(&cfg).is_ok(), "{kind} proposal {i} invalid");
            history.push(seamless_tuning::core::Observation {
                config: cfg,
                runtime_s: 10.0 + i as f64,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
    }
}
