//! Integration test: the Fig. 1 two-stage pipeline end to end, with
//! multi-tenant history, transfer, and the amortization ledger.

use std::sync::Arc;

use seamless_tuning::prelude::*;

fn service(store: Arc<HistoryStore>) -> SeamlessTuner {
    SeamlessTuner::new(
        store,
        SimEnvironment::dedicated(31),
        ServiceConfig {
            stage1_budget: 5,
            stage2_budget: 8,
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn pipeline_produces_deployable_outcome() {
    let store = Arc::new(HistoryStore::new());
    let svc = service(Arc::clone(&store));
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("t0", "wc", &job, 1);

    // Stage 1 chose a real catalog cluster.
    assert!(out.cluster.nodes >= 2);
    // Stage 2 produced a config valid for the DISC space.
    assert!(spark_space().validate(&out.disc_config).is_ok());
    // The best runtime is achievable (finite, positive).
    assert!(out.best_runtime_s.is_finite() && out.best_runtime_s > 0.0);
    // The provider recorded probe + stage1 + stage2 executions.
    assert!(store.len() >= 5);
}

#[test]
fn history_grows_and_transfer_kicks_in_for_similar_tenants() {
    let store = Arc::new(HistoryStore::new());
    let svc = service(Arc::clone(&store));
    let job = Pagerank::new().job(DataScale::Tiny);

    let first = svc.tune("alice", "pr", &job, 2);
    assert!(!first.used_transfer);
    let len_after_first = store.len();

    let second = svc.tune("bob", "pr2", &job, 3);
    assert!(second.used_transfer, "similar history must donate");
    assert!(store.len() > len_after_first);
}

#[test]
fn ledger_tracks_tuning_spend_and_break_even() {
    let store = Arc::new(HistoryStore::new());
    let svc = service(store);
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("carol", "wc", &job, 4);
    let ledger = out.ledger(0.05);
    assert!(ledger.tuning_cost_usd > 0.0);
    // With any positive per-run saving the break-even count is finite.
    if ledger.saving_per_run_usd() > 0.0 {
        assert!(ledger.runs_to_break_even().expect("positive saving") > 0.0);
    }
}

#[test]
fn signature_identifies_the_workload_across_configs() {
    let store = Arc::new(HistoryStore::new());
    let svc = service(Arc::clone(&store));
    let wc = svc.tune("d1", "wc", &Wordcount::new().job(DataScale::Tiny), 5);
    let km = svc.tune("d2", "km", &KMeans::new().job(DataScale::Tiny), 6);
    // The two workloads' signatures should be distinguishable.
    assert!(
        wc.signature.distance(&km.signature) > 0.03,
        "wordcount vs kmeans signature distance too small: {}",
        wc.signature.distance(&km.signature)
    );
}
