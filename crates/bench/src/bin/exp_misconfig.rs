//! **E4 — §I's misconfiguration claims**: plausible but wrong
//! configurations degrade analytics by an order of magnitude or more —
//! "under-provisioned cluster setups can slow the analytics pipelines
//! by up to 12X \[CherryPick\] while suboptimal framework configurations
//! can lead to 89X performance degradation \[DAC\]".
//!
//! For each workload we sweep 200 random DISC configurations and report
//! worst/best, default/best and the crash rate (DISC layer, fixed
//! cluster), plus the worst/best cloud-configuration ratio at equal
//! node count (cloud layer).
//!
//! Run with: `cargo run --release -p bench --bin exp_misconfig`

use bench::{eval_config, eval_pool, print_table, random_pool, seeds, write_json};
use confspace::spark::spark_space;
use seamless_core::FAILURE_PENALTY_S;
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel};
use workloads::{all_workloads, DataScale};

#[derive(Debug, Serialize)]
struct MisconfigRow {
    workload: String,
    best_s: f64,
    worst_finite_s: f64,
    default_s: Option<f64>,
    worst_over_best: f64,
    default_over_best: Option<f64>,
    crash_pct: f64,
}

fn main() {
    println!("E4: cost of misconfiguration (paper cites 12x cluster / 89x DISC)\n");
    let cluster = ClusterSpec::table1_testbed();
    let space = spark_space();
    let pool = random_pool(&space, 200, 0xBAD);
    let replicas = seeds(7, 2);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in all_workloads() {
        let job = w.job(DataScale::Ds1);
        let results: Vec<f64> =
            eval_pool(&cluster, &job, &pool, InterferenceModel::none(), &replicas)
                .iter()
                .map(|s| s.mean_runtime_s)
                .collect();
        let finite: Vec<f64> = results
            .iter()
            .copied()
            .filter(|r| *r < FAILURE_PENALTY_S)
            .collect();
        let crashes = results.len() - finite.len();
        let best = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = finite.iter().copied().fold(0.0, f64::max);
        let dflt = eval_config(
            &cluster,
            &job,
            &space.default_configuration(),
            InterferenceModel::none(),
            &replicas,
        )
        .mean_runtime_s;
        let default_s = (dflt < FAILURE_PENALTY_S).then_some(dflt);

        rows.push(vec![
            w.name().to_owned(),
            format!("{best:.0}"),
            format!("{worst:.0}"),
            default_s.map_or("CRASH".to_owned(), |d| format!("{d:.0}")),
            format!("{:.0}x", worst / best),
            default_s.map_or("inf".to_owned(), |d| format!("{:.0}x", d / best)),
            format!("{:.0}%", 100.0 * crashes as f64 / results.len() as f64),
        ]);
        json.push(MisconfigRow {
            workload: w.name().to_owned(),
            best_s: best,
            worst_finite_s: worst,
            default_s,
            worst_over_best: worst / best,
            default_over_best: default_s.map(|d| d / best),
            crash_pct: 100.0 * crashes as f64 / results.len() as f64,
        });
    }

    print_table(
        &[
            "workload",
            "best(s)",
            "worst(s)",
            "default(s)",
            "worst/best",
            "default/best",
            "crash rate",
        ],
        &rows,
    );

    let max_ratio = json.iter().map(|r| r.worst_over_best).fold(0.0, f64::max);
    println!("\nshape checks:");
    println!(
        "  order-of-magnitude degradation from plausible configs (paper: up to 89x): max worst/best = {max_ratio:.0}x -> {}",
        max_ratio >= 10.0
    );
    println!(
        "  some workloads crash outright under bad configs (paper: 'crashes when choosing incorrectly'): {}",
        json.iter().any(|r| r.crash_pct > 0.0)
    );

    write_json("exp_misconfig", &json);
}
