//! **E12 — §V-A**: "develop models that can transfer their tuning
//! knowledge" — the knowledge being "the correlation between the
//! different configuration parameters and the workload performance".
//!
//! For each workload we collect a 60-execution LHS history, extract
//! parameter-importance rankings with the additive-GP decomposition
//! (Duvenaud et al., the paper's cited interpretability route) and with
//! random-forest permutation importance, and report the top parameters.
//! The shape to reproduce: *different workloads are sensitive to
//! different parameters* (the reason one global model cannot serve all
//! workloads, §V-B), while the two analysis methods agree with each
//! other on the same workload.
//!
//! Run with: `cargo run --release -p bench --bin exp_sensitivity`

use bench::{print_table, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{additive_effects, permutation_importance, DiscObjective, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{all_workloads, DataScale};

#[derive(Debug, Serialize)]
struct SensitivityRow {
    workload: String,
    additive_top3: Vec<String>,
    forest_top3: Vec<String>,
    methods_overlap_in_top5: usize,
}

fn main() {
    println!("E12: which parameters matter, per workload (60 LHS executions each)\n");
    let space = confspace::spark::spark_space();
    let cluster = ClusterSpec::table1_testbed();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in all_workloads() {
        let mut objective = DiscObjective::new(
            cluster.clone(),
            w.job(DataScale::Small),
            &SimEnvironment::dedicated(7),
        );
        let mut session = TuningSession::new(TunerKind::Lhs, 7);
        let history = session.run(&mut objective, 60).history;

        let additive = additive_effects(&space, &history);
        let mut rng = StdRng::seed_from_u64(11);
        let forest = permutation_importance(&space, &history, &mut rng);

        let short = |s: &str| s.trim_start_matches("spark.").to_owned();
        let a3: Vec<String> = additive.top(3).iter().map(|s| short(s)).collect();
        let f3: Vec<String> = forest.top(3).iter().map(|s| short(s)).collect();
        let a5: Vec<&str> = additive.top(5);
        let overlap = forest.top(5).iter().filter(|p| a5.contains(p)).count();

        rows.push(vec![
            w.name().to_owned(),
            a3.join(", "),
            f3.join(", "),
            format!("{overlap}/5"),
        ]);
        json.push(SensitivityRow {
            workload: w.name().to_owned(),
            additive_top3: a3,
            forest_top3: f3,
            methods_overlap_in_top5: overlap,
        });
    }

    print_table(
        &[
            "workload",
            "additive-GP top-3",
            "forest top-3",
            "method overlap",
        ],
        &rows,
    );

    // Shape checks.
    let top1: Vec<&String> = json.iter().map(|r| &r.additive_top3[0]).collect();
    let distinct: std::collections::HashSet<&&String> = top1.iter().collect();
    println!("\nshape checks:");
    println!(
        "  workloads differ in their most-important parameter ({} distinct among {}): {}",
        distinct.len(),
        top1.len(),
        distinct.len() >= 3
    );
    let mean_overlap: f64 = json
        .iter()
        .map(|r| r.methods_overlap_in_top5 as f64)
        .sum::<f64>()
        / json.len() as f64;
    println!(
        "  the two analyses broadly agree on the same workload (mean top-5 overlap {mean_overlap:.1}/5): {}",
        mean_overlap >= 2.0
    );

    write_json("exp_sensitivity", &json);
}
