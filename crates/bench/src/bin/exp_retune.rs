//! **E7 — §V-D**: defining the need for re-tuning.
//!
//! The paper argues fixed percentage thresholds re-tune "either too
//! frequently or too late". We stream managed-run observations through
//! each policy under three scenarios and measure false positives and
//! detection delay:
//!
//! * `stationary` — constant workload with realistic noise (any signal
//!   is a false positive);
//! * `spike` — a transient co-location burst that reverts (a robust
//!   policy stays quiet);
//! * `env-drift` — the environment degrades persistently (+35% runtime
//!   at the same input size; a good policy fires promptly);
//! * `growth` — the input size steps up mid-stream: the workload
//!   *signature* catches this in one run for every policy, so it is
//!   reported separately.
//!
//! Run with: `cargo run --release -p bench --bin exp_retune`

use bench::{print_table, write_json};
use seamless_core::retune::{RetuneMonitor, RetunePolicy};
use seamless_core::{DiscObjective, Objective, Observation, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{DataScale, Pagerank, Workload};

const RUNS_BEFORE: usize = 20;
const RUNS_AFTER: usize = 20;
const TRIALS: u64 = 10;

#[derive(Debug, Serialize)]
struct RetuneRow {
    policy: String,
    stationary_fp_rate: f64,
    spike_fp_rate: f64,
    growth_detect_rate: f64,
    growth_mean_delay: f64,
}

/// Collects the observation stream for one scenario trial.
fn stream(scenario: &str, seed: u64) -> Vec<Observation> {
    let cluster = ClusterSpec::table1_testbed();
    let cfg = SeamlessTuner::house_default();
    let mut obj = DiscObjective::new(
        cluster,
        Pagerank::new().job(DataScale::Small),
        &SimEnvironment::dedicated(seed),
    );
    let mut out = Vec::new();
    for i in 0..RUNS_BEFORE + RUNS_AFTER {
        if scenario == "growth" && i == RUNS_BEFORE {
            obj.set_job(Pagerank::new().job(DataScale::Ds1));
        }
        let mut obs = obj.evaluate(&cfg);
        if scenario == "spike" && i == RUNS_BEFORE {
            // A one-run co-location burst: +35% runtime, then reverts.
            obs.runtime_s *= 1.35;
        }
        if scenario == "env-drift" && i >= RUNS_BEFORE {
            // Persistent environment degradation at the same input
            // size: runtime up 35%, signature unchanged.
            obs.runtime_s *= 1.35;
        }
        out.push(obs);
    }
    out
}

fn main() {
    println!(
        "E7: re-tuning detection — false positives vs detection delay ({TRIALS} trials/scenario)\n"
    );
    let policies = [
        RetunePolicy::FixedThresholdPct(10),
        RetunePolicy::FixedThresholdPct(20),
        RetunePolicy::FixedThresholdPct(50),
        RetunePolicy::PageHinkley,
        RetunePolicy::Cusum,
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for policy in policies {
        let mut stationary_fp = 0usize;
        let mut spike_fp = 0usize;
        let mut growth_hits = 0usize;
        let mut delays = Vec::new();
        for trial in 0..TRIALS {
            // Stationary: any firing is false.
            let mut m = RetuneMonitor::new(policy);
            if stream("stationary", 100 + trial)
                .iter()
                .any(|o| m.observe(o).is_some())
            {
                stationary_fp += 1;
            }
            // Spike: firing on the transient is false.
            let mut m = RetuneMonitor::new(policy);
            if stream("spike", 200 + trial)
                .iter()
                .any(|o| m.observe(o).is_some())
            {
                spike_fp += 1;
            }
            // Env-drift: firing after the change point is a hit;
            // measure delay in runs.
            let mut m = RetuneMonitor::new(policy);
            for (i, o) in stream("env-drift", 300 + trial).iter().enumerate() {
                if m.observe(o).is_some() {
                    if i >= RUNS_BEFORE {
                        growth_hits += 1;
                        delays.push((i - RUNS_BEFORE) as f64 + 1.0);
                    }
                    break;
                }
            }
        }
        let t = TRIALS as f64;
        let row = RetuneRow {
            policy: policy.label(),
            stationary_fp_rate: stationary_fp as f64 / t,
            spike_fp_rate: spike_fp as f64 / t,
            growth_detect_rate: growth_hits as f64 / t,
            growth_mean_delay: if delays.is_empty() {
                f64::NAN
            } else {
                models::stats::mean(&delays)
            },
        };
        rows.push(vec![
            row.policy.clone(),
            format!("{:.0}%", 100.0 * row.stationary_fp_rate),
            format!("{:.0}%", 100.0 * row.spike_fp_rate),
            format!("{:.0}%", 100.0 * row.growth_detect_rate),
            if row.growth_mean_delay.is_nan() {
                "-".to_owned()
            } else {
                format!("{:.1}", row.growth_mean_delay)
            },
        ]);
        json.push(row);
    }

    print_table(
        &[
            "policy",
            "false-pos (stationary)",
            "false-pos (spike)",
            "detect (env-drift)",
            "mean delay (runs)",
        ],
        &rows,
    );

    // Input growth is caught by the signature channel, independent of
    // the runtime-drift policy.
    let mut m = RetuneMonitor::new(RetunePolicy::PageHinkley);
    let growth_delay = stream("growth", 999)
        .iter()
        .enumerate()
        .find_map(|(i, o)| m.observe(o).map(|_| i as i64 - RUNS_BEFORE as i64 + 1));
    println!(
        "
input-size growth (16x) is caught by the workload signature in {} run(s), for every policy",
        growth_delay.unwrap_or(-1)
    );

    let tight = json
        .iter()
        .find(|r| r.policy == "fixed+10%")
        .expect("fixed10");
    let loose = json
        .iter()
        .find(|r| r.policy == "fixed+50%")
        .expect("fixed50");
    let ph = json
        .iter()
        .find(|r| r.policy == "page-hinkley")
        .expect("ph");
    println!("shape checks (the paper's 'too frequently or too late'):");
    println!(
        "  tight fixed threshold misfires on noise/spikes: fp={:.0}%/{:.0}% -> {}",
        100.0 * tight.stationary_fp_rate,
        100.0 * tight.spike_fp_rate,
        tight.stationary_fp_rate + tight.spike_fp_rate > 0.0
    );
    println!(
        "  loose fixed threshold detects late or never: detect={:.0}% -> {}",
        100.0 * loose.growth_detect_rate,
        loose.growth_detect_rate < 1.0 || loose.growth_mean_delay > ph.growth_mean_delay
    );
    println!(
        "  drift detector is near-quiet on noise (<=10% fp) AND always catches the drift: fp={:.0}%, detect={:.0}% -> {}",
        100.0 * ph.stationary_fp_rate,
        100.0 * ph.growth_detect_rate,
        ph.stationary_fp_rate <= 0.10 && ph.growth_detect_rate == 1.0
    );

    write_json("exp_retune", &json);
}
