//! **E3 — Fig. 2**: Spark's internal execution anatomy, made visible.
//!
//! Runs each workload once on the testbed and prints the job → stage →
//! task decomposition with the per-stage time breakdown (CPU, IO,
//! shuffle network, GC, serialization) — the executable counterpart of
//! the paper's architecture figure, and the evidence for §III-A's point
//! that critical paths vary workload to workload.
//!
//! Run with: `cargo run --release -p bench --bin exp_anatomy`

use bench::{print_table, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::SeamlessTuner;
use serde::Serialize;
use simcluster::{ClusterSpec, Simulator, SparkEnv};
use workloads::{all_workloads, DataScale};

#[derive(Debug, Serialize)]
struct AnatomyRow {
    workload: String,
    stages: usize,
    tasks: u32,
    runtime_s: f64,
    cpu_frac: f64,
    io_frac: f64,
    net_frac: f64,
    gc_frac: f64,
    ser_frac: f64,
}

fn main() {
    println!("E3 / Fig. 2: job -> stages -> tasks anatomy per workload\n");
    let cluster = ClusterSpec::table1_testbed();
    let cfg = SeamlessTuner::house_default();
    let env = SparkEnv::resolve(&cluster, &cfg).expect("house default fits the testbed");
    let sim = Simulator::dedicated();

    let mut summary = Vec::new();
    for w in all_workloads() {
        let job = w.job(DataScale::Small);
        let mut rng = StdRng::seed_from_u64(7);
        let result = sim
            .run(&env, &job, &mut rng)
            .expect("house default succeeds");
        let m = &result.metrics;

        println!(
            "== {} ({} stages, {} tasks, {:.1}s) ==",
            job.name,
            m.stages.len(),
            m.total_tasks,
            m.runtime_s
        );
        let rows: Vec<Vec<String>> = m
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    s.tasks.to_string(),
                    format!("{:.2}", s.duration_s),
                    format!("{:.1}", s.cpu_s),
                    format!("{:.1}", s.io_s),
                    format!("{:.1}", s.net_s),
                    format!("{:.1}", s.gc_s),
                    format!("{:.1}", s.ser_s),
                    if s.cache_hit_frac > 0.0 {
                        format!("{:.0}%", 100.0 * s.cache_hit_frac)
                    } else {
                        "-".to_owned()
                    },
                ]
            })
            .collect();
        print_table(
            &[
                "stage",
                "tasks",
                "wall(s)",
                "cpu(s)",
                "io(s)",
                "net(s)",
                "gc(s)",
                "ser(s)",
                "cache-hit",
            ],
            &rows,
        );
        println!();

        summary.push(AnatomyRow {
            workload: w.name().to_owned(),
            stages: m.stages.len(),
            tasks: m.total_tasks,
            runtime_s: m.runtime_s,
            cpu_frac: m.cpu_frac(),
            io_frac: m.io_frac(),
            net_frac: m.net_frac(),
            gc_frac: m.gc_frac(),
            ser_frac: m.ser_frac(),
        });
    }

    println!("bottleneck profile per workload (fraction of task time):");
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.0}%", 100.0 * r.cpu_frac),
                format!("{:.0}%", 100.0 * r.io_frac),
                format!("{:.0}%", 100.0 * r.net_frac),
                format!("{:.0}%", 100.0 * r.gc_frac),
                format!("{:.0}%", 100.0 * r.ser_frac),
            ]
        })
        .collect();
    print_table(&["workload", "cpu", "io", "net", "gc", "ser"], &rows);

    write_json("exp_anatomy", &summary);
}
