//! **E11 — §II-A's co-location bias**: "choices could be biased due to
//! transient co-location of test workload runs with other
//! resource-intensive workloads or (at the other end) with atypically
//! low contention".
//!
//! Ground truth: the best instance family measured on dedicated
//! hardware. We then select a family from measurements taken in a
//! heavily-shared cloud, either from a single run per candidate
//! (the naive static approach) or from the median of 5 runs
//! (replication), and count how often each procedure picks the true
//! best family.
//!
//! Run with: `cargo run --release -p bench --bin exp_colocation`

use bench::{eval_config, print_table, write_json};
use confspace::cloud::{cloud_space, names as cn, FAMILIES};
use seamless_core::SeamlessTuner;
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel};
use workloads::{DataScale, Pagerank, Workload};

const TRIALS: u64 = 20;

#[derive(Debug, Serialize)]
struct ColocationResult {
    true_best_family: String,
    single_sample_accuracy: f64,
    median_of_5_accuracy: f64,
    mean_regret_single_pct: f64,
    mean_regret_median_pct: f64,
}

fn family_cluster(family: &str) -> ClusterSpec {
    let cfg = cloud_space()
        .default_configuration()
        .with(cn::INSTANCE_FAMILY, family)
        .with(cn::INSTANCE_SIZE, "2xlarge")
        .with(cn::NODE_COUNT, 4i64);
    ClusterSpec::from_config(&cfg).expect("catalog has every family at 2xlarge")
}

fn main() {
    println!("E11: co-location bias in cloud-configuration choice ({TRIALS} trials)\n");
    let job = Pagerank::new().job(DataScale::Small);
    let cfg = SeamlessTuner::house_default();

    // Ground truth on dedicated hardware (heavily replicated).
    let dedicated_seeds: Vec<u64> = (0..10).collect();
    let truth: Vec<(String, f64)> = FAMILIES
        .iter()
        .map(|f| {
            let r = eval_config(
                &family_cluster(f),
                &job,
                &cfg,
                InterferenceModel::none(),
                &dedicated_seeds,
            );
            ((*f).to_owned(), r.mean_runtime_s)
        })
        .collect();
    let (true_best, _) = truth
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
        .clone();
    let truth_by_family: std::collections::HashMap<&str, f64> =
        truth.iter().map(|(f, r)| (f.as_str(), *r)).collect();

    println!("ground truth (dedicated hardware):");
    print_table(
        &["family", "runtime(s)"],
        &truth
            .iter()
            .map(|(f, r)| vec![f.clone(), format!("{r:.1}")])
            .collect::<Vec<_>>(),
    );
    println!("  -> true best family: {true_best}\n");

    // Selection under heavy interference.
    let mut single_hits = 0usize;
    let mut median_hits = 0usize;
    let mut single_regret = Vec::new();
    let mut median_regret = Vec::new();
    for trial in 0..TRIALS {
        let pick = |replicas: usize, salt: u64| -> String {
            FAMILIES
                .iter()
                .enumerate()
                .map(|(fi, f)| {
                    // Each family is benchmarked at a different moment,
                    // so its co-location draw is independent.
                    let seeds: Vec<u64> = (0..replicas as u64)
                        .map(|i| trial * 1000 + salt * 100 + i * 7 + fi as u64 * 31)
                        .collect();
                    let r = eval_config(
                        &family_cluster(f),
                        &job,
                        &cfg,
                        InterferenceModel::heavy(),
                        &seeds,
                    );
                    ((*f).to_owned(), r.mean_runtime_s)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty")
                .0
        };
        let s = pick(1, 1);
        let m = pick(5, 2);
        if s == true_best {
            single_hits += 1;
        }
        if m == true_best {
            median_hits += 1;
        }
        let best_rt = truth_by_family[true_best.as_str()];
        single_regret.push(100.0 * (truth_by_family[s.as_str()] / best_rt - 1.0));
        median_regret.push(100.0 * (truth_by_family[m.as_str()] / best_rt - 1.0));
    }

    let result = ColocationResult {
        true_best_family: true_best.clone(),
        single_sample_accuracy: single_hits as f64 / TRIALS as f64,
        median_of_5_accuracy: median_hits as f64 / TRIALS as f64,
        mean_regret_single_pct: models::stats::mean(&single_regret),
        mean_regret_median_pct: models::stats::mean(&median_regret),
    };

    print_table(
        &[
            "procedure",
            "picks true best",
            "mean regret (runtime vs best)",
        ],
        &[
            vec![
                "single sample per candidate".to_owned(),
                format!("{:.0}%", 100.0 * result.single_sample_accuracy),
                format!("{:.1}%", result.mean_regret_single_pct),
            ],
            vec![
                "5-run replication".to_owned(),
                format!("{:.0}%", 100.0 * result.median_of_5_accuracy),
                format!("{:.1}%", result.mean_regret_median_pct),
            ],
        ],
    );

    println!("\nshape check: replication reduces co-location bias:");
    println!(
        "  accuracy {:.0}% -> {:.0}%, regret {:.1}% -> {:.1}% : {}",
        100.0 * result.single_sample_accuracy,
        100.0 * result.median_of_5_accuracy,
        result.mean_regret_single_pct,
        result.mean_regret_median_pct,
        result.median_of_5_accuracy >= result.single_sample_accuracy
    );

    write_json("exp_colocation", &result);
}
