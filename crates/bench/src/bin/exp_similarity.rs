//! **E15 — §V-B challenge (i)**: "finding accurate ways to characterize
//! workloads and define similarity across workloads".
//!
//! We run every workload under 12 different configurations, compute the
//! signature of each run, and test whether the signature space actually
//! separates workloads from one another:
//!
//! * *separability* — for each run, is its nearest neighbour (among all
//!   other runs) a run of the same workload? (1-NN accuracy);
//! * *cluster purity* — k-medoids with k = #workloads: fraction of runs
//!   whose cluster is dominated by their own workload.
//!
//! Both must be high for history-based transfer (E8/E9) to donate from
//! the right neighbours — and for "negative transfer" (§V-B) to be
//! avoidable at all.
//!
//! Run with: `cargo run --release -p bench --bin exp_similarity`

use bench::{print_table, random_pool, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::{SeamlessTuner, WorkloadSignature};
use serde::Serialize;
use simcluster::{ClusterSpec, Simulator, SparkEnv};
use workloads::{all_workloads, DataScale};

const CONFIGS_PER_WORKLOAD: usize = 12;

#[derive(Debug, Serialize)]
struct SimilarityResult {
    one_nn_accuracy: f64,
    cluster_purity: f64,
    per_workload_accuracy: Vec<(String, f64)>,
}

fn main() {
    println!(
        "E15: does the workload signature separate workloads? ({CONFIGS_PER_WORKLOAD} configs each)\n"
    );
    let cluster = ClusterSpec::table1_testbed();
    let space = confspace::spark::spark_space();
    let sim = Simulator::dedicated();

    // Configurations: the house default plus random ones that launch.
    let mut labels: Vec<String> = Vec::new();
    let mut sigs: Vec<WorkloadSignature> = Vec::new();
    for w in all_workloads() {
        let job = w.job(DataScale::Small);
        let mut collected = 0;
        let mut configs = vec![SeamlessTuner::house_default()];
        configs.extend(random_pool(
            &space,
            CONFIGS_PER_WORKLOAD * 3,
            0x11 + w.name().len() as u64,
        ));
        for cfg in configs {
            if collected >= CONFIGS_PER_WORKLOAD {
                break;
            }
            let Ok(env) = SparkEnv::resolve(&cluster, &cfg) else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(500 + collected as u64);
            let Ok(result) = sim.run(&env, &job, &mut rng) else {
                continue;
            };
            labels.push(w.name().to_owned());
            sigs.push(WorkloadSignature::from_metrics(&result.metrics));
            collected += 1;
        }
    }

    // 1-NN accuracy.
    let mut correct_per: std::collections::BTreeMap<String, (usize, usize)> =
        std::collections::BTreeMap::new();
    let mut correct = 0usize;
    for i in 0..sigs.len() {
        let nn = (0..sigs.len())
            .filter(|&j| j != i)
            .min_by(|&a, &b| {
                sigs[i]
                    .distance(&sigs[a])
                    .total_cmp(&sigs[i].distance(&sigs[b]))
            })
            .expect("more than one run");
        let hit = labels[nn] == labels[i];
        let entry = correct_per.entry(labels[i].clone()).or_insert((0, 0));
        entry.1 += 1;
        if hit {
            entry.0 += 1;
            correct += 1;
        }
    }
    let one_nn = correct as f64 / sigs.len() as f64;

    // k-medoids purity.
    let points: Vec<Vec<f64>> = sigs.iter().map(|s| s.features().to_vec()).collect();
    let k = all_workloads().len();
    let mut rng = StdRng::seed_from_u64(77);
    let clustering = models::k_medoids(&points, k, 20, &mut rng);
    let mut pure = 0usize;
    for c in 0..k {
        let members = clustering.members(c);
        if members.is_empty() {
            continue;
        }
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for &m in &members {
            *counts.entry(labels[m].as_str()).or_default() += 1;
        }
        pure += counts.values().max().copied().unwrap_or(0);
    }
    let purity = pure as f64 / sigs.len() as f64;

    let per: Vec<(String, f64)> = correct_per
        .iter()
        .map(|(w, (c, t))| (w.clone(), *c as f64 / *t as f64))
        .collect();
    print_table(
        &["workload", "1-NN same-workload accuracy"],
        &per.iter()
            .map(|(w, a)| vec![w.clone(), format!("{:.0}%", 100.0 * a)])
            .collect::<Vec<_>>(),
    );
    println!("\noverall 1-NN accuracy: {:.0}%", 100.0 * one_nn);
    println!("k-medoids cluster purity (k = {k}): {:.0}%", 100.0 * purity);

    println!("\nshape checks:");
    println!(
        "  signatures separate workloads far above chance ({:.0}% vs ~{:.0}% chance): {}",
        100.0 * one_nn,
        100.0 / k as f64,
        one_nn > 3.0 / k as f64
    );
    println!(
        "  clusters are workload-dominated (purity {:.0}%): {}",
        100.0 * purity,
        purity > 0.5
    );

    write_json(
        "exp_similarity",
        &SimilarityResult {
            one_nn_accuracy: one_nn,
            cluster_purity: purity,
            per_workload_accuracy: per,
        },
    );
}
