//! **E6 — §IV-C's amortization argument**: "the BestConfig system
//! requires 500 execution samples to identify a good Spark
//! configuration, and this would consume more resources than the 90
//! 'normal' runs of our exemplar workload during a 3 months period."
//!
//! For each strategy we tune the exemplar (Pagerank @ DS1) and build
//! the amortization ledger: tuning spend, per-run saving vs. the
//! house-default baseline, runs to break even, and whether the spend
//! amortizes within the paper's 90-run lifetime. BestConfig is run at
//! its published 500-execution budget; the others at 30.
//!
//! Run with: `cargo run --release -p bench --bin exp_amortization`

use bench::{print_table, write_json};
use seamless_core::slo::AmortizationLedger;
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{DiscObjective, Objective, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{DataScale, Pagerank, Workload};

const LIFETIME_RUNS: f64 = 90.0; // the paper's 3-month exemplar

#[derive(Debug, Serialize)]
struct AmortRow {
    tuner: String,
    budget: usize,
    tuning_cost_usd: f64,
    tuned_run_cost_usd: f64,
    baseline_run_cost_usd: f64,
    runs_to_break_even: Option<f64>,
    amortizes_in_90_runs: bool,
    net_after_90_runs_usd: f64,
}

fn main() {
    println!("E6: does tuning pay for itself within 90 production runs?\n");
    let cluster = ClusterSpec::table1_testbed();
    let job = Pagerank::new().job(DataScale::Ds1);

    // Baseline: the provider's house default.
    let mut base_obj =
        DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(50));
    let baseline = base_obj.evaluate(&SeamlessTuner::house_default());
    println!(
        "baseline (house default): {:.1}s, ${:.3} per run\n",
        baseline.runtime_s, baseline.cost_usd
    );

    let plans: Vec<(TunerKind, usize)> = vec![
        (TunerKind::BayesOpt, 30),
        (TunerKind::AdditiveBayesOpt, 30),
        (TunerKind::Genetic, 30),
        (TunerKind::HillClimb, 30),
        (TunerKind::Random, 30),
        (TunerKind::BestConfig, 500), // the paper's cited budget
    ];

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (kind, budget) in plans {
        let mut obj =
            DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(51));
        let mut session = TuningSession::new(kind, 4321);
        let outcome = session.run(&mut obj, budget);
        let tuned_cost = outcome
            .best
            .as_ref()
            .map_or(baseline.cost_usd, |o| o.cost_usd);
        let ledger = AmortizationLedger {
            tuning_cost_usd: outcome.total_cost_usd(),
            baseline_run_cost_usd: baseline.cost_usd,
            tuned_run_cost_usd: tuned_cost,
        };
        rows.push(vec![
            format!("{kind}"),
            budget.to_string(),
            format!("{:.2}", ledger.tuning_cost_usd),
            format!("{:.3}", ledger.tuned_run_cost_usd),
            ledger
                .runs_to_break_even()
                .map_or("never".to_owned(), |r| format!("{r:.0}")),
            if ledger.amortizes_within(LIFETIME_RUNS) {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
            format!("{:+.2}", ledger.net_saving_after(LIFETIME_RUNS)),
        ]);
        json.push(AmortRow {
            tuner: kind.label().to_owned(),
            budget,
            tuning_cost_usd: ledger.tuning_cost_usd,
            tuned_run_cost_usd: ledger.tuned_run_cost_usd,
            baseline_run_cost_usd: ledger.baseline_run_cost_usd,
            runs_to_break_even: ledger.runs_to_break_even(),
            amortizes_in_90_runs: ledger.amortizes_within(LIFETIME_RUNS),
            net_after_90_runs_usd: ledger.net_saving_after(LIFETIME_RUNS),
        });
    }

    print_table(
        &[
            "tuner",
            "budget",
            "tuning cost($)",
            "run cost($)",
            "break-even runs",
            "amortizes in 90?",
            "net after 90 ($)",
        ],
        &rows,
    );

    let bo = json.iter().find(|r| r.tuner == "bayesopt").expect("bo row");
    let bc = json
        .iter()
        .find(|r| r.tuner == "bestconfig")
        .expect("bc row");
    println!("\nshape checks:");
    println!(
        "  bestconfig@500 spends far more on tuning than bayesopt@30: ${:.2} vs ${:.2} -> {}",
        bc.tuning_cost_usd,
        bo.tuning_cost_usd,
        bc.tuning_cost_usd > 5.0 * bo.tuning_cost_usd
    );
    println!(
        "  bayesopt amortizes within the 90-run lifetime: {}",
        bo.amortizes_in_90_runs
    );

    write_json("exp_amortization", &json);
}
