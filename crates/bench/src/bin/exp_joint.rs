//! **E10 — §I's joint-optimization claim**: "real-world scenarios imply
//! that such optimisations need to be done jointly … a basic example
//! would be the relationship between the number of virtual CPUs
//! allocated and the number of Spark executor cores."
//!
//! Three searches with the SAME total execution budget:
//!
//! * `disc-only` — tune Spark parameters on a fixed default cluster;
//! * `staged` — stage 1 picks the cluster, stage 2 tunes Spark on it
//!   (Fig. 1's pipeline, budget split between stages);
//! * `joint` — one search over the combined 29-parameter space.
//!
//! We also quantify the vCPU ↔ executor-cores interaction directly.
//!
//! Run with: `cargo run --release -p bench --bin exp_joint`

use bench::{eval_config, print_table, seeds, write_json};
use confspace::cloud::names as cn;
use confspace::spark::names as sp;
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{CloudObjective, DiscObjective, JointObjective, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel};
use workloads::{DataScale, Terasort, Workload};

const TOTAL_BUDGET: usize = 40;
const REPEATS: u64 = 3;

#[derive(Debug, Serialize)]
struct JointRow {
    mode: String,
    mean_best_runtime_s: f64,
    mean_best_cost_usd: f64,
}

fn main() {
    println!("E10: joint cloud+DISC tuning vs staged vs DISC-only (budget {TOTAL_BUDGET})\n");
    let job = Terasort::new().job(DataScale::Small);

    let mut json = Vec::new();
    let mut rows = Vec::new();
    for mode in ["disc-only", "staged", "joint"] {
        let mut runtimes = Vec::new();
        let mut costs = Vec::new();
        for rep in 0..REPEATS {
            let env = SimEnvironment::dedicated(70 + rep);
            let (best_runtime, best_cost) = match mode {
                "disc-only" => {
                    let mut obj =
                        DiscObjective::new(ClusterSpec::table1_testbed(), job.clone(), &env);
                    let mut s = TuningSession::new(TunerKind::BayesOpt, 71 + rep);
                    let o = s.run(&mut obj, TOTAL_BUDGET);
                    (
                        o.best_runtime_s(),
                        o.best.as_ref().map_or(0.0, |b| b.cost_usd),
                    )
                }
                "staged" => {
                    let mut cloud =
                        CloudObjective::new(job.clone(), SeamlessTuner::house_default(), &env);
                    let mut s1 = TuningSession::new(TunerKind::BayesOpt, 72 + rep);
                    let o1 = s1.run(&mut cloud, TOTAL_BUDGET / 3);
                    let cluster = o1
                        .best_config()
                        .and_then(|c| ClusterSpec::from_config(c).ok())
                        .unwrap_or_else(ClusterSpec::table1_testbed);
                    let mut disc = DiscObjective::new(cluster, job.clone(), &env);
                    let mut s2 = TuningSession::new(TunerKind::BayesOpt, 73 + rep);
                    let o2 = s2.run(&mut disc, TOTAL_BUDGET - TOTAL_BUDGET / 3);
                    (
                        o2.best_runtime_s(),
                        o2.best.as_ref().map_or(0.0, |b| b.cost_usd),
                    )
                }
                _ => {
                    let mut obj = JointObjective::new(job.clone(), &env);
                    let mut s = TuningSession::new(TunerKind::BayesOpt, 74 + rep);
                    let o = s.run(&mut obj, TOTAL_BUDGET);
                    (
                        o.best_runtime_s(),
                        o.best.as_ref().map_or(0.0, |b| b.cost_usd),
                    )
                }
            };
            runtimes.push(best_runtime);
            costs.push(best_cost);
        }
        let row = JointRow {
            mode: mode.to_owned(),
            mean_best_runtime_s: models::stats::mean(&runtimes),
            mean_best_cost_usd: models::stats::mean(&costs),
        };
        rows.push(vec![
            row.mode.clone(),
            format!("{:.1}", row.mean_best_runtime_s),
            format!("{:.3}", row.mean_best_cost_usd),
        ]);
        json.push(row);
    }
    print_table(&["mode", "mean best runtime(s)", "mean run cost($)"], &rows);

    // --- The vCPU <-> executor-cores interaction, measured directly ---
    println!("\nvCPU <-> executor-cores coupling (runtime in s; h1 sizes x executor cores):");
    let replicas = seeds(8, 3);
    let mut coupling_rows = Vec::new();
    let mut coupling = Vec::new();
    for size in ["xlarge", "2xlarge", "4xlarge"] {
        let vcpus = simcluster::catalog::lookup("h1", size)
            .expect("h1 size")
            .vcpus;
        let mut row = vec![format!("h1.{size} ({vcpus} vCPU)")];
        for cores in [2i64, 4, 8, 16] {
            let cloud = confspace::cloud::cloud_space()
                .default_configuration()
                .with(cn::INSTANCE_SIZE, size);
            let cluster = ClusterSpec::from_config(&cloud).expect("valid cluster");
            let cfg = SeamlessTuner::house_default()
                .with(sp::EXECUTOR_INSTANCES, 8i64)
                .with(sp::EXECUTOR_CORES, cores)
                .with(sp::EXECUTOR_MEMORY_MB, 6144i64);
            let r = eval_config(&cluster, &job, &cfg, InterferenceModel::none(), &replicas);
            row.push(format!("{:.1}", r.mean_runtime_s));
            coupling.push((size.to_owned(), cores, r.mean_runtime_s));
        }
        coupling_rows.push(row);
    }
    print_table(
        &["cluster", "cores=2", "cores=4", "cores=8", "cores=16"],
        &coupling_rows,
    );

    // Shape: the penalty of a high core count shrinks as node vCPUs
    // grow — the vCPU <-> executor-cores interaction §I points to.
    let runtime_at = |size: &str, cores: i64| {
        coupling
            .iter()
            .find(|(s, c, _)| s == size && *c == cores)
            .map(|(_, _, r)| *r)
            .expect("measured")
    };
    let penalty = |size: &str| {
        let best = [2i64, 4, 8, 16]
            .iter()
            .map(|&c| runtime_at(size, c))
            .fold(f64::INFINITY, f64::min);
        runtime_at(size, 8) / best
    };
    println!(
        "\nshape check: the cores=8 penalty shrinks with node vCPUs (xlarge {:.1}x vs 4xlarge {:.1}x): {}",
        penalty("xlarge"),
        penalty("4xlarge"),
        penalty("xlarge") > penalty("4xlarge") * 1.3
    );

    write_json("exp_joint", &json);
}
