//! **E1 — Table I**: potential execution-time saving of re-tuning the
//! configuration over evolving input sizes.
//!
//! Methodology mirrors the paper: for each workload (Pagerank, Bayes,
//! Wordcount) and each evolving input size (DS1, DS2, DS3), run 100
//! random configurations on a 4 × h1.4xlarge cluster and take the best.
//! The table reports the saving of re-tuning at DS2/DS3 relative to
//! re-using DS1's best configuration:
//!
//! `saving = (t(DS_i, best(DS1)) − t(DS_i, best(DS_i))) / t(DS_i, best(DS1))`
//!
//! Two refinements keep the estimate out of the winner's-curse noise
//! the paper's single draw is exposed to: the per-size best is selected
//! in two passes (screen all 100 with 2 replicas, re-measure the top 10
//! with 6), and the whole experiment is averaged over 3 independent
//! random-configuration pools.
//!
//! Paper values: Pagerank 8%/56%, Bayes 17%/25%, Wordcount 0%/3%.
//!
//! Run with: `cargo run --release -p bench --bin exp_table1`

use bench::{eval_config, eval_pool, print_table, random_pool, seeds, write_json};
use confspace::spark::spark_space;
use confspace::Configuration;
use seamless_core::FAILURE_PENALTY_S;
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel, JobSpec};
use workloads::{table1_workloads, DataScale};

const POOL_SEEDS: [u64; 3] = [0xF00D, 0xBEEF, 0xCAFE];

#[derive(Debug, Serialize)]
struct Table1Row {
    workload: String,
    saving_ds2_pct: f64,
    saving_ds3_pct: f64,
    paper_ds2_pct: f64,
    paper_ds3_pct: f64,
    per_pool_ds2: Vec<f64>,
    per_pool_ds3: Vec<f64>,
    /// Pools where re-using DS1's best configuration crashed outright
    /// at the larger size (counted separately: the paper's testbed
    /// never crashed, but "plausible but wrong" reuse can).
    reuse_crashes_ds2: usize,
    reuse_crashes_ds3: usize,
}

/// Two-pass best-of-pool: screen with 2 replicas, refine top-10 with 6.
fn best_of_pool(
    cluster: &ClusterSpec,
    job: &JobSpec,
    pool: &[Configuration],
    base_seed: u64,
) -> (Configuration, f64) {
    let screen_seeds = seeds(base_seed, 2);
    let mut screened: Vec<(f64, &Configuration)> =
        eval_pool(cluster, job, pool, InterferenceModel::none(), &screen_seeds)
            .iter()
            .zip(pool)
            .map(|(s, c)| (s.mean_runtime_s, c))
            .collect();
    screened.sort_by(|a, b| a.0.total_cmp(&b.0));
    let refine_seeds = seeds(base_seed + 1, 6);
    screened
        .into_iter()
        .take(10)
        .map(|(_, c)| {
            (
                c.clone(),
                eval_config(cluster, job, c, InterferenceModel::none(), &refine_seeds)
                    .mean_runtime_s,
            )
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("pool is non-empty")
}

fn main() {
    let cluster = ClusterSpec::table1_testbed();
    let space = spark_space();
    let paper = [(8.0, 56.0), (17.0, 25.0), (0.0, 3.0)];

    println!("E1 / Table I: potential saving of re-tuning over evolving input sizes");
    println!("(100 random configurations per workload+size, 4x h1.4xlarge,");
    println!(
        " two-pass selection, averaged over {} pools)\n",
        POOL_SEEDS.len()
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (w, &(p2, p3)) in table1_workloads().iter().zip(&paper) {
        let mut per_pool_ds2 = Vec::new();
        let mut per_pool_ds3 = Vec::new();
        let mut reuse_crashes = [0usize; 2];
        for (pi, &pool_seed) in POOL_SEEDS.iter().enumerate() {
            let pool = random_pool(&space, 100, pool_seed + w.name().len() as u64);
            let eval_seed = 42 + 100 * pi as u64;

            let mut best_per_size = Vec::new();
            for scale in DataScale::evolving() {
                let job = w.job(scale);
                best_per_size.push(best_of_pool(&cluster, &job, &pool, eval_seed));
            }
            let (ds1_cfg, _) = &best_per_size[0];
            let refine_seeds = seeds(eval_seed + 1, 6);
            for (slot, (i, out)) in [(1usize, &mut per_pool_ds2), (2usize, &mut per_pool_ds3)]
                .into_iter()
                .enumerate()
            {
                let (_, own_best) = &best_per_size[i];
                let job = w.job(DataScale::evolving()[i]);
                let reused = eval_config(
                    &cluster,
                    &job,
                    ds1_cfg,
                    InterferenceModel::none(),
                    &refine_seeds,
                )
                .mean_runtime_s;
                if reused >= FAILURE_PENALTY_S {
                    // Re-using the stale configuration crashed the job:
                    // report separately rather than as a ~100% saving.
                    reuse_crashes[slot] += 1;
                } else {
                    out.push((100.0 * (reused - own_best) / reused).max(0.0));
                }
            }
        }

        let s2 = models::stats::mean(&per_pool_ds2);
        let s3 = models::stats::mean(&per_pool_ds3);
        let crash_note = |n: usize| {
            if n > 0 {
                format!(" [+{n} crash]")
            } else {
                String::new()
            }
        };
        rows.push(vec![
            w.name().to_owned(),
            format!("{s2:.0}% (paper {p2:.0}%){}", crash_note(reuse_crashes[0])),
            format!("{s3:.0}% (paper {p3:.0}%){}", crash_note(reuse_crashes[1])),
        ]);
        json_rows.push(Table1Row {
            workload: w.name().to_owned(),
            saving_ds2_pct: s2,
            saving_ds3_pct: s3,
            paper_ds2_pct: p2,
            paper_ds3_pct: p3,
            per_pool_ds2,
            per_pool_ds3,
            reuse_crashes_ds2: reuse_crashes[0],
            reuse_crashes_ds3: reuse_crashes[1],
        });
    }

    print_table(
        &[
            "potential savings",
            "DS1_best - DS2_best",
            "DS1_best - DS3_best",
        ],
        &rows,
    );

    println!("\nshape checks:");
    let pr = &json_rows[0];
    let by = &json_rows[1];
    let wc = &json_rows[2];
    println!(
        "  savings grow with input size for pagerank: {}",
        pr.saving_ds3_pct > pr.saving_ds2_pct
    );
    println!(
        "  pagerank DS3 saving >> wordcount DS3 saving: {}",
        pr.saving_ds3_pct > wc.saving_ds3_pct + 20.0
    );
    println!(
        "  wordcount savings are marginal (<10%): {}",
        wc.saving_ds2_pct < 10.0 && wc.saving_ds3_pct < 10.0
    );
    println!(
        "  bayes and pagerank both show substantial DS3 savings (>15%) while wordcount stays marginal: {}",
        by.saving_ds3_pct > 15.0 && pr.saving_ds3_pct > 15.0 && wc.saving_ds3_pct < 10.0
    );

    write_json("exp_table1", &json_rows);
}
