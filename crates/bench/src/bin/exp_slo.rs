//! **E9 — §IV-D**: "jobs should run within X% of the optimal runtime".
//!
//! For six tenant workloads (variants of the suite's six types) we
//! approximate each optimum with a large offline search, then measure
//! three deployment modes — provider house default, isolated
//! small-budget tuning, and the seamless service whose history has
//! already seen the *base* version of each workload from earlier
//! tenants — and report the SLO attainment curve: the fraction of
//! workloads within X% of optimal, the candidate SLO metric the paper
//! proposes. Every mode's chosen configuration is re-measured with the
//! same replica seeds, so no mode benefits from its own in-session
//! winner's-curse minimum.
//!
//! Run with: `cargo run --release -p bench --bin exp_slo`

use std::sync::Arc;

use bench::{eval_config, eval_pool, print_table, random_pool, seeds, write_json};
use confspace::spark::spark_space;
use confspace::Configuration;
use seamless_core::service::ServiceConfig;
use seamless_core::slo::{attainment_curve, SloReport};
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{DiscObjective, HistoryStore, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel, JobSpec};
use workloads::DataScale;
use workloads::{BayesClassifier, KMeans, Pagerank, SqlJoin, Terasort, Wordcount, Workload};

const ISOLATED_BUDGET: usize = 12;
const MODE_SEEDS: u64 = 3;

#[derive(Debug, Serialize)]
struct SloJson {
    mode: String,
    curve: Vec<(f64, f64)>,
}

/// The earlier tenants' workloads (what the provider's history holds).
fn base_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Wordcount::new()),
        Box::new(Terasort::new()),
        Box::new(Pagerank::new()),
        Box::new(BayesClassifier::new()),
        Box::new(KMeans::new()),
        Box::new(SqlJoin::new()),
    ]
}

/// The new tenants' workloads: similar-but-not-identical variants.
fn variant_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Wordcount::with_combine_ratio(0.08)),
        Box::new(Terasort::new()),
        Box::new(Pagerank::with_iterations(4)),
        Box::new(BayesClassifier {
            shuffle_ratio: 0.25,
        }),
        Box::new(KMeans::with_iterations(6)),
        Box::new(SqlJoin {
            fact_fraction: 0.75,
            skew: 0.4,
        }),
    ]
}

fn main() {
    println!("E9: SLO attainment — fraction of workloads within X% of optimal\n");
    let cluster = ClusterSpec::table1_testbed();
    let space = spark_space();
    let screen = seeds(3, 2);
    let refine = seeds(0x5E, 6);

    let refined = |job: &JobSpec, cfg: &Configuration| {
        eval_config(&cluster, job, cfg, InterferenceModel::none(), &refine).mean_runtime_s
    };

    // Optimum proxy per variant workload: 150 random (screened, top-10
    // refined) plus a 60-execution BO session, all re-measured with the
    // shared refine seeds.
    let mut optima = Vec::new();
    for w in variant_suite() {
        let job = w.job(DataScale::Small);
        let pool = random_pool(&space, 150, 0x0517 + w.name().len() as u64);
        let mut screened: Vec<(f64, &Configuration)> =
            eval_pool(&cluster, &job, &pool, InterferenceModel::none(), &screen)
                .iter()
                .zip(&pool)
                .map(|(s, c)| (s.mean_runtime_s, c))
                .collect();
        screened.sort_by(|a, b| a.0.total_cmp(&b.0));
        let best_random = screened
            .iter()
            .take(10)
            .map(|(_, c)| refined(&job, c))
            .fold(f64::INFINITY, f64::min);
        let mut obj =
            DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(61));
        let mut session = TuningSession::new(TunerKind::BayesOpt, 616);
        let bo_best = session
            .run(&mut obj, 60)
            .best_config()
            .map(|c| refined(&job, c))
            .unwrap_or(f64::INFINITY);
        optima.push(best_random.min(bo_best));
    }

    let thresholds = [0.10, 0.25, 0.50, 1.0, 2.0];
    let mut json = Vec::new();
    let mut rows = Vec::new();

    // --- Mode A: provider house default (no tuning). ---
    let mut reports = Vec::new();
    for (w, &opt) in variant_suite().iter().zip(&optima) {
        let job = w.job(DataScale::Small);
        reports.push(SloReport {
            tuned_runtime_s: refined(&job, &SeamlessTuner::house_default()),
            optimal_runtime_s: Some(opt),
            best_similar_runtime_s: None,
            default_runtime_s: None,
        });
    }
    push_mode("house-default", &reports, &thresholds, &mut rows, &mut json);

    // --- Mode B: isolated small-budget tuning per tenant. ---
    let mut reports = Vec::new();
    for rep in 0..MODE_SEEDS {
        for (w, &opt) in variant_suite().iter().zip(&optima) {
            let job = w.job(DataScale::Small);
            let mut obj = DiscObjective::new(
                cluster.clone(),
                job.clone(),
                &SimEnvironment::dedicated(620 + rep),
            );
            let mut session = TuningSession::new(TunerKind::BayesOpt, 6260 + rep);
            let best = session
                .run(&mut obj, ISOLATED_BUDGET)
                .best_config()
                .map(|c| refined(&job, c))
                .unwrap_or(f64::INFINITY);
            reports.push(SloReport {
                tuned_runtime_s: best,
                optimal_runtime_s: Some(opt),
                best_similar_runtime_s: None,
                default_runtime_s: None,
            });
        }
    }
    push_mode(
        &format!("isolated BO ({ISOLATED_BUDGET} execs)"),
        &reports,
        &thresholds,
        &mut rows,
        &mut json,
    );

    // --- Mode C: the seamless service. The provider's history already
    // holds the base version of each workload (earlier tenants); the
    // new tenants tune their variants with the same budget. Stage 1 is
    // pinned to the testbed so the comparison isolates history/transfer.
    let mut reports = Vec::new();
    for rep in 0..MODE_SEEDS {
        let store = Arc::new(HistoryStore::new());
        let service = SeamlessTuner::new(
            Arc::clone(&store),
            SimEnvironment::dedicated(630 + rep),
            ServiceConfig {
                stage1_budget: 0,
                stage2_budget: ISOLATED_BUDGET,
                ..ServiceConfig::default()
            },
        );
        for (i, w) in base_suite().into_iter().enumerate() {
            let job = w.job(DataScale::Small);
            let _ = service.tune(&format!("earlier-{i}"), w.name(), &job, 700 + i as u64);
        }
        for ((i, w), &opt) in variant_suite().into_iter().enumerate().zip(&optima) {
            let job = w.job(DataScale::Small);
            let out = service.tune(&format!("tenant-{i}"), w.name(), &job, 800 + i as u64);
            reports.push(SloReport {
                tuned_runtime_s: refined(&job, &out.disc_config),
                optimal_runtime_s: Some(opt),
                best_similar_runtime_s: store.best_similar_runtime(&out.signature, 10),
                default_runtime_s: None,
            });
        }
    }
    push_mode(
        "seamless service (1st submission)",
        &reports,
        &thresholds,
        &mut rows,
        &mut json,
    );

    // --- Mode D: returning workloads (§IV: "40% of the analytics jobs
    // are recurring"). The tenant re-submits the same workload later:
    // the provider already holds its tuned configuration, so deployment
    // costs ONE validation run instead of a tuning session.
    let mut reports = Vec::new();
    for rep in 0..MODE_SEEDS {
        let store = Arc::new(HistoryStore::new());
        let service = SeamlessTuner::new(
            Arc::clone(&store),
            SimEnvironment::dedicated(630 + rep),
            ServiceConfig {
                stage1_budget: 0,
                stage2_budget: ISOLATED_BUDGET,
                ..ServiceConfig::default()
            },
        );
        for ((i, w), &opt) in variant_suite().into_iter().enumerate().zip(&optima) {
            let job = w.job(DataScale::Small);
            // First submission: full tuning, recorded in the history.
            let _ = service.tune(&format!("tenant-{i}"), w.name(), &job, 800 + i as u64);
            // Re-submission: the provider replays its best recorded
            // configuration for this tenant's workload (1 validation).
            let best = store
                .for_workload(&format!("tenant-{i}"), w.name())
                .into_iter()
                .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
                .expect("history holds the first submission");
            reports.push(SloReport {
                tuned_runtime_s: refined(&job, &best.config),
                optimal_runtime_s: Some(opt),
                best_similar_runtime_s: None,
                default_runtime_s: None,
            });
        }
    }
    push_mode(
        "seamless service (recurring, 1 run)",
        &reports,
        &thresholds,
        &mut rows,
        &mut json,
    );

    let headers: Vec<String> = std::iter::once("mode".to_owned())
        .chain(
            thresholds
                .iter()
                .map(|t| format!("within {:.0}%", t * 100.0)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);

    println!("\nshape checks:");
    let dflt = &json[0].curve;
    let iso = &json[1].curve;
    let svc = &json[2].curve;
    let recurring = &json[3].curve;
    println!(
        "  the service dominates house defaults at every threshold: {}",
        dflt.iter().zip(svc).all(|(d, s)| s.1 >= d.1)
    );
    let mean = |c: &Vec<(f64, f64)>| c.iter().map(|p| p.1).sum::<f64>() / c.len() as f64;
    println!(
        "  at equal budget the service is in the same league as isolated tuning (mean attainment {:.2} vs {:.2}; §V-B transfer across *different* workloads is an open challenge): {}",
        mean(svc),
        mean(iso),
        mean(svc) >= mean(iso) - 0.20
    );
    println!(
        "  recurring workloads reach tuned-level SLO attainment for ONE validation run (mean {:.2} vs isolated {:.2} at {}x the executions): {}",
        mean(recurring),
        mean(iso),
        ISOLATED_BUDGET,
        mean(recurring) >= mean(iso) - 0.05
    );

    write_json("exp_slo", &json);
}

fn push_mode(
    name: &str,
    reports: &[SloReport],
    thresholds: &[f64],
    rows: &mut Vec<Vec<String>>,
    json: &mut Vec<SloJson>,
) {
    let curve = attainment_curve(reports, thresholds);
    rows.push(
        std::iter::once(name.to_owned())
            .chain(curve.iter().map(|(_, f)| format!("{:.0}%", 100.0 * f)))
            .collect(),
    );
    json.push(SloJson {
        mode: name.to_owned(),
        curve,
    });
}
