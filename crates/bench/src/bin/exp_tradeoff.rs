//! **E13 — §IV-D's trade-off question**: "do I need the results quickly
//! no matter the cost, or am I willing to wait a long time for the
//! results? … Who can tell me if scaling vertically, horizontally or
//! both gives me the best benefit vs cost ratio?"
//!
//! Part 1 answers the scaling question directly: the runtime-vs-cost
//! frontier of scaling the Table I workload vertically (bigger nodes),
//! horizontally (more nodes) and both.
//!
//! Part 2 runs goal-aware tuning: the same tuner under `min-runtime`,
//! `min-cost` and `deadline` goals picks different clusters.
//!
//! Run with: `cargo run --release -p bench --bin exp_tradeoff`

use bench::{eval_config, print_table, seeds, write_json};
use confspace::cloud::names as cn;
use seamless_core::goal::{GoalObjective, TuningGoal};
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{CloudObjective, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::{ClusterSpec, InterferenceModel};
use workloads::{DataScale, Pagerank, Workload};

#[derive(Debug, Serialize)]
struct FrontierPoint {
    cluster: String,
    scaling: String,
    runtime_s: f64,
    cost_usd: f64,
}

#[derive(Debug, Serialize)]
struct GoalRow {
    goal: String,
    cluster: String,
    runtime_s: f64,
    cost_usd: f64,
}

fn main() {
    let job = Pagerank::new().job(DataScale::Small);
    let disc = SeamlessTuner::house_default();
    let replicas = seeds(4, 3);

    // ---- Part 1: vertical vs horizontal scaling frontier ----
    println!(
        "E13 part 1: vertical vs horizontal scaling of {}\n",
        job.name
    );
    let plans: Vec<(&str, &str, i64)> = vec![
        ("vertical", "xlarge", 4),
        ("vertical", "2xlarge", 4),
        ("vertical", "4xlarge", 4),
        ("horizontal", "xlarge", 4),
        ("horizontal", "xlarge", 8),
        ("horizontal", "xlarge", 16),
        ("both", "2xlarge", 8),
        ("both", "4xlarge", 8),
    ];
    let mut frontier = Vec::new();
    for (scaling, size, nodes) in plans {
        let cloud = confspace::cloud::cloud_space()
            .default_configuration()
            .with(cn::INSTANCE_FAMILY, "m5")
            .with(cn::INSTANCE_SIZE, size)
            .with(cn::NODE_COUNT, nodes);
        let cluster = ClusterSpec::from_config(&cloud).expect("valid plan");
        let r = eval_config(&cluster, &job, &disc, InterferenceModel::none(), &replicas);
        frontier.push(FrontierPoint {
            cluster: cluster.to_string(),
            scaling: scaling.to_owned(),
            runtime_s: r.mean_runtime_s,
            cost_usd: r.mean_cost_usd,
        });
    }
    print_table(
        &["scaling", "cluster", "runtime(s)", "run cost($)"],
        &frontier
            .iter()
            .map(|p| {
                vec![
                    p.scaling.clone(),
                    p.cluster.clone(),
                    format!("{:.1}", p.runtime_s),
                    format!("{:.4}", p.cost_usd),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // ---- Part 2: goal-aware tuning picks different clusters ----
    println!("\nE13 part 2: the same tuner under different user goals\n");
    let goals = [
        TuningGoal::MinRuntime,
        TuningGoal::MinCost,
        TuningGoal::Deadline { seconds: 60.0 },
        TuningGoal::Weighted { alpha: 0.5 },
    ];
    let mut rows = Vec::new();
    let mut json_goals = Vec::new();
    for goal in goals {
        let inner = CloudObjective::new(job.clone(), disc.clone(), &SimEnvironment::dedicated(9));
        let mut obj = GoalObjective::new(inner, goal);
        let mut session = TuningSession::new(TunerKind::BayesOpt, 33);
        let outcome = session.run(&mut obj, 20);
        let best_cfg = outcome.best_config().cloned();
        let (cluster_name, runtime, cost) = match best_cfg {
            Some(cfg) => {
                let cluster = ClusterSpec::from_config(&cfg).expect("valid cloud config");
                let r = eval_config(&cluster, &job, &disc, InterferenceModel::none(), &replicas);
                (cluster.to_string(), r.mean_runtime_s, r.mean_cost_usd)
            }
            None => ("-".to_owned(), f64::NAN, f64::NAN),
        };
        rows.push(vec![
            goal.label(),
            cluster_name.clone(),
            format!("{runtime:.1}"),
            format!("{cost:.4}"),
        ]);
        json_goals.push(GoalRow {
            goal: goal.label(),
            cluster: cluster_name,
            runtime_s: runtime,
            cost_usd: cost,
        });
    }
    print_table(
        &["goal", "chosen cluster", "runtime(s)", "run cost($)"],
        &rows,
    );

    let fast = json_goals
        .iter()
        .find(|g| g.goal == "min-runtime")
        .expect("row");
    let cheap = json_goals
        .iter()
        .find(|g| g.goal == "min-cost")
        .expect("row");
    println!("\nshape checks:");
    println!(
        "  min-cost picks a cheaper run than min-runtime (${:.4} vs ${:.4}): {}",
        cheap.cost_usd,
        fast.cost_usd,
        cheap.cost_usd <= fast.cost_usd
    );
    println!(
        "  min-runtime picks a faster run than min-cost ({:.1}s vs {:.1}s): {}",
        fast.runtime_s,
        cheap.runtime_s,
        fast.runtime_s <= cheap.runtime_s
    );

    #[derive(Serialize)]
    struct Out {
        frontier: Vec<FrontierPoint>,
        goals: Vec<GoalRow>,
    }
    write_json(
        "exp_tradeoff",
        &Out {
            frontier,
            goals: json_goals,
        },
    );
}
