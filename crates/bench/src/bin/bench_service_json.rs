//! Machine-readable latency benchmark for the batched multi-tenant
//! tuning service, written to `BENCH_service.json` at the repo root.
//!
//! Measures (BayesOpt, stage budgets 6 + 16, transfer disabled so
//! every run is interleaving-independent):
//!
//! * `single_tenant` — one `tune` call at batch sizes 1 / 4 / 8.
//!   Batch 1 is the legacy strictly-sequential propose→evaluate loop
//!   (bitwise-pinned by `tests/batch_equivalence.rs`); larger batches
//!   amortize one surrogate fit and one acquisition scan across the
//!   whole round, so they win even on a single core.
//! * `multi_tenant` — an 8-tenant workload: the legacy shape (eight
//!   sequential `tune` calls at batch 1) vs the concurrent batched
//!   service (`tune_many` at batch 8). The headline `speedup` combines
//!   round-level amortization with cross-tenant concurrency (the
//!   latter contributing only when `threads > 1`).
//! * `identical_best_at_equal_settings` — at *equal* settings
//!   (batch 1, transfer off), `tune_many` must reproduce the eight
//!   sequential outcomes exactly; the bench re-checks what the test
//!   suite pins, on the bench workload.
//! * `resilience` — the same single-tenant tune through the resilient
//!   executor with a 5% injected trial-error rate vs the no-fault
//!   resilient path: wall-clock overhead plus the retry/failure
//!   counters the obs registry accumulated during the faulty run.
//! * `telemetry` — the same single-tenant batch-8 tune three ways:
//!   no sink installed (the relaxed-load disabled fast path), the
//!   flight recorder behind 1-in-8 head sampling, and the full
//!   unsampled flight recorder — the wall-clock price of live
//!   telemetry, plus the kept/skipped event counts that justify it.
//!
//! Run with: `cargo run --release -p bench --bin bench_service_json`

use std::sync::Arc;
use std::time::Instant;

use seamless_core::objective::SimEnvironment;
use seamless_core::{
    FaultInjector, FaultPlan, HistoryStore, RetryPolicy, SeamlessTuner, ServiceConfig,
    ServiceOutcome, TenantRequest, TunerKind,
};
use serde::Serialize;
use workloads::{DataScale, Wordcount, Workload};

const TENANTS: usize = 8;
const STAGE1_BUDGET: usize = 6;
const STAGE2_BUDGET: usize = 16;

#[derive(Debug, Serialize)]
struct BatchReport {
    batch: usize,
    tune_s: f64,
    speedup_vs_batch1: f64,
}

#[derive(Debug, Serialize)]
struct MultiTenantReport {
    tenants: usize,
    /// The legacy service shape: eight sequential `tune` calls, batch 1.
    sequential_batch1_s: f64,
    /// The batched concurrent service: one `tune_many`, batch 8.
    tune_many_batch8_s: f64,
    speedup: f64,
    /// `tune_many` vs sequential at equal settings produced bitwise
    /// identical best runtimes and configurations for every tenant.
    identical_best_at_equal_settings: bool,
}

#[derive(Debug, Serialize)]
struct ResilienceReport {
    /// Injected trial-error rate driven through the fault injector.
    error_rate: f64,
    /// One resilient tune with no faults injected (the overhead baseline).
    clean_tune_s: f64,
    /// The same tune with 5% of trial attempts erroring.
    faulty_tune_s: f64,
    /// `faulty_tune_s / clean_tune_s - 1`: the wall-clock cost of
    /// retrying through the fault stream.
    retry_overhead_frac: f64,
    /// Retry attempts the faulty run consumed (obs counter delta).
    retries: u64,
    /// Trials that still failed after retries (obs counter delta).
    failed_trials: u64,
    /// Sessions that ended degraded (obs counter delta).
    degraded_sessions: u64,
}

#[derive(Debug, Serialize)]
struct TelemetryReport {
    /// One batch-8 tune with no sink installed: every emission site is
    /// a single relaxed atomic load.
    disabled_tune_s: f64,
    /// The same tune with the flight recorder behind 1-in-N head
    /// sampling (anomalies and counters always kept).
    sample_one_in: u64,
    sampled_tune_s: f64,
    sampled_overhead_frac: f64,
    /// Events the sampling decision forwarded vs dropped per tune.
    sampled_events_kept: u64,
    sampled_events_skipped: u64,
    /// The same tune with the full, unsampled flight recorder.
    full_tune_s: f64,
    full_overhead_frac: f64,
    /// Events one tune pushes into the recorder rings when unsampled.
    full_events_per_tune: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    threads: usize,
    tuner: String,
    stage1_budget: usize,
    stage2_budget: usize,
    single_tenant: Vec<BatchReport>,
    multi_tenant: MultiTenantReport,
    resilience: ResilienceReport,
    telemetry: TelemetryReport,
}

fn service(batch: usize) -> SeamlessTuner {
    SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(7),
        ServiceConfig {
            tuner: TunerKind::BayesOpt,
            stage1_budget: STAGE1_BUDGET,
            stage2_budget: STAGE2_BUDGET,
            transfer_k: 0,
            batch,
            ..ServiceConfig::default()
        },
    )
}

fn requests() -> Vec<TenantRequest> {
    (0..TENANTS)
        .map(|i| TenantRequest {
            client: format!("tenant-{i}"),
            workload: "wordcount".to_owned(),
            job: Wordcount::new().job(DataScale::Tiny),
            seed: 500 + i as u64,
        })
        .collect()
}

/// Median wall-clock seconds of `f` over `reps` runs (after one warm-up).
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn same_outcome(a: &ServiceOutcome, b: &ServiceOutcome) -> bool {
    a.cloud_config == b.cloud_config
        && a.disc_config == b.disc_config
        && a.best_runtime_s.to_bits() == b.best_runtime_s.to_bits()
}

fn main() {
    let threads = models::par::num_threads();
    println!("bench_service_json: tenants={TENANTS}, threads={threads}");

    // Part 1: one tenant, batch 1 / 4 / 8. A fresh service per run so
    // the history store (and therefore surrogate fit cost) is identical
    // across batch sizes.
    let reqs = requests();
    let mut single = Vec::new();
    let mut batch1_s = f64::NAN;
    for batch in [1usize, 4, 8] {
        let r = &reqs[0];
        let tune_s = time_median(3, || {
            let svc = service(batch);
            let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        });
        if batch == 1 {
            batch1_s = tune_s;
        }
        let speedup = batch1_s / tune_s;
        println!(
            "batch={batch}  tune {:8.1}ms  ({speedup:.2}x vs batch 1)",
            tune_s * 1e3
        );
        single.push(BatchReport {
            batch,
            tune_s,
            speedup_vs_batch1: speedup,
        });
    }

    // Part 2: the 8-tenant workload — legacy sequential loop vs the
    // batched concurrent service.
    let sequential_s = time_median(3, || {
        let svc = service(1);
        for r in &reqs {
            let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        }
    });
    let tune_many_s = time_median(3, || {
        let svc = service(8);
        let _ = svc.tune_many(&reqs);
    });
    let speedup = sequential_s / tune_many_s;
    println!(
        "{TENANTS} tenants: sequential(batch1) {:8.1}ms  tune_many(batch8) {:8.1}ms  ({speedup:.2}x)",
        sequential_s * 1e3,
        tune_many_s * 1e3,
    );

    // Equal-settings equivalence: with transfer disabled the store is
    // write-only during tuning, so concurrency must not change results.
    let seq_svc = service(1);
    let seq_outcomes: Vec<ServiceOutcome> = reqs
        .iter()
        .map(|r| seq_svc.tune(&r.client, &r.workload, &r.job, r.seed))
        .collect();
    let par_svc = service(1);
    let par_outcomes = par_svc.tune_many(&reqs);
    let identical = seq_outcomes.len() == par_outcomes.len()
        && seq_outcomes
            .iter()
            .zip(&par_outcomes)
            .all(|(a, b)| same_outcome(a, b));
    println!("identical best at equal settings: {identical}");
    assert!(
        identical,
        "tune_many diverged from sequential tunes at equal settings"
    );

    // Part 3: resilience overhead. One tenant, batch 8, resilient
    // executor — first with no faults (the pure harness overhead
    // baseline), then with 5% of trial attempts erroring. The obs
    // registry counters isolate what the retries actually cost.
    const ERROR_RATE: f64 = 0.05;
    let resilient_service = |chaos: Option<FaultInjector>| {
        SeamlessTuner::new(
            Arc::new(HistoryStore::new()),
            SimEnvironment::dedicated(7),
            ServiceConfig {
                tuner: TunerKind::BayesOpt,
                stage1_budget: STAGE1_BUDGET,
                stage2_budget: STAGE2_BUDGET,
                transfer_k: 0,
                batch: 8,
                retry: Some(RetryPolicy::default()),
                chaos,
                ..ServiceConfig::default()
            },
        )
    };
    let r = &reqs[0];
    let clean_tune_s = time_median(3, || {
        let svc = resilient_service(None);
        let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
    });
    let reg = obs::registry();
    let retries_before = reg.counter("executor.retries").get();
    let failures_before = reg.counter("executor.trial_failures").get();
    let degraded_before = reg.counter("service.degraded_sessions").get();
    let faulty_injector = FaultInjector::new(2718, FaultPlan::errors(ERROR_RATE));
    let faulty_tune_s = {
        let svc = resilient_service(Some(faulty_injector));
        let t = Instant::now();
        let out = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        let elapsed = t.elapsed().as_secs_f64();
        assert!(
            out.best_runtime_s.is_finite() && out.best_runtime_s > 0.0,
            "the faulty tune must still converge"
        );
        elapsed
    };
    let retries = reg.counter("executor.retries").get() - retries_before;
    let failed_trials = reg.counter("executor.trial_failures").get() - failures_before;
    let degraded_sessions = reg.counter("service.degraded_sessions").get() - degraded_before;
    let retry_overhead_frac = faulty_tune_s / clean_tune_s - 1.0;
    println!(
        "resilience: clean {:8.1}ms  faulty({:.0}% errors) {:8.1}ms  retries={retries} failed={failed_trials}",
        clean_tune_s * 1e3,
        ERROR_RATE * 100.0,
        faulty_tune_s * 1e3,
    );

    // Part 4: live-telemetry overhead. The identical batch-8 tune with
    // telemetry disabled, through a 1-in-8 sampled flight recorder,
    // and through the full recorder. The recorder never dumps here, so
    // this prices the rings, not file I/O. A tune is ~3 ms, inside
    // this container's bursty scheduling noise, so the three modes are
    // *interleaved* within each repetition — a noise spike hits all of
    // them, not whichever mode happened to be running.
    const SAMPLE_ONE_IN: u64 = 8;
    const TELEMETRY_REPS: usize = 25;
    let r = &reqs[0];
    let sampled_recorder =
        obs::FlightRecorder::new(16_384, std::env::temp_dir().join("bench_flight"));
    let sampler = obs::SamplingSink::new(
        std::sync::Arc::clone(&sampled_recorder) as std::sync::Arc<dyn obs::Sink>,
        obs::SamplePolicy::one_in(SAMPLE_ONE_IN),
    );
    let full_recorder = obs::FlightRecorder::new(16_384, std::env::temp_dir().join("bench_flight"));
    let timed_tune = || {
        let svc = service(8);
        let t = Instant::now();
        let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        t.elapsed().as_secs_f64()
    };
    let mut disabled_samples = Vec::new();
    let mut sampled_samples = Vec::new();
    let mut full_samples = Vec::new();
    for rep in 0..=TELEMETRY_REPS {
        let disabled = timed_tune();
        obs::install(std::sync::Arc::clone(&sampler) as std::sync::Arc<dyn obs::Sink>);
        let sampled = timed_tune();
        obs::uninstall_all();
        obs::install(std::sync::Arc::clone(&full_recorder) as std::sync::Arc<dyn obs::Sink>);
        let full = timed_tune();
        obs::uninstall_all();
        if rep > 0 {
            // rep 0 is the warm-up
            disabled_samples.push(disabled);
            sampled_samples.push(sampled);
            full_samples.push(full);
        }
    }
    let median = |mut v: Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let disabled_tune_s = median(disabled_samples);
    let sampled_tune_s = median(sampled_samples);
    let full_tune_s = median(full_samples);
    let telemetry_runs = (TELEMETRY_REPS + 1) as u64;
    let sampled_events_kept = sampler.kept() / telemetry_runs;
    let sampled_events_skipped = sampler.skipped() / telemetry_runs;
    let full_events_per_tune = full_recorder.snapshot().len() as u64 / telemetry_runs;

    let sampled_overhead_frac = sampled_tune_s / disabled_tune_s - 1.0;
    let full_overhead_frac = full_tune_s / disabled_tune_s - 1.0;
    println!(
        "telemetry: disabled {:8.1}ms  sampled(1-in-{SAMPLE_ONE_IN}) {:8.1}ms ({:+.1}%)  full {:8.1}ms ({:+.1}%)",
        disabled_tune_s * 1e3,
        sampled_tune_s * 1e3,
        sampled_overhead_frac * 100.0,
        full_tune_s * 1e3,
        full_overhead_frac * 100.0,
    );

    let report = BenchReport {
        threads,
        tuner: "bayesopt".to_owned(),
        stage1_budget: STAGE1_BUDGET,
        stage2_budget: STAGE2_BUDGET,
        single_tenant: single,
        multi_tenant: MultiTenantReport {
            tenants: TENANTS,
            sequential_batch1_s: sequential_s,
            tune_many_batch8_s: tune_many_s,
            speedup,
            identical_best_at_equal_settings: identical,
        },
        resilience: ResilienceReport {
            error_rate: ERROR_RATE,
            clean_tune_s,
            faulty_tune_s,
            retry_overhead_frac,
            retries,
            failed_trials,
            degraded_sessions,
        },
        telemetry: TelemetryReport {
            disabled_tune_s,
            sample_one_in: SAMPLE_ONE_IN,
            sampled_tune_s,
            sampled_overhead_frac,
            sampled_events_kept,
            sampled_events_skipped,
            full_tune_s,
            full_overhead_frac,
            full_events_per_tune,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\n[written to BENCH_service.json]");
}
