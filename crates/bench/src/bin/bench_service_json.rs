//! Machine-readable latency benchmark for the batched multi-tenant
//! tuning service, written to `BENCH_service.json` at the repo root.
//!
//! Measures (BayesOpt, stage budgets 6 + 16, transfer disabled so
//! every run is interleaving-independent):
//!
//! * `single_tenant` — one `tune` call at batch sizes 1 / 4 / 8.
//!   Batch 1 is the legacy strictly-sequential propose→evaluate loop
//!   (bitwise-pinned by `tests/batch_equivalence.rs`); larger batches
//!   amortize one surrogate fit and one acquisition scan across the
//!   whole round, so they win even on a single core.
//! * `multi_tenant` — an 8-tenant workload: the legacy shape (eight
//!   sequential `tune` calls at batch 1) vs the concurrent batched
//!   service (`tune_many` at batch 8). The headline `speedup` combines
//!   round-level amortization with cross-tenant concurrency (the
//!   latter contributing only when `threads > 1`).
//! * `identical_best_at_equal_settings` — at *equal* settings
//!   (batch 1, transfer off), `tune_many` must reproduce the eight
//!   sequential outcomes exactly; the bench re-checks what the test
//!   suite pins, on the bench workload.
//!
//! Run with: `cargo run --release -p bench --bin bench_service_json`

use std::sync::Arc;
use std::time::Instant;

use seamless_core::objective::SimEnvironment;
use seamless_core::{
    HistoryStore, SeamlessTuner, ServiceConfig, ServiceOutcome, TenantRequest, TunerKind,
};
use serde::Serialize;
use workloads::{DataScale, Wordcount, Workload};

const TENANTS: usize = 8;
const STAGE1_BUDGET: usize = 6;
const STAGE2_BUDGET: usize = 16;

#[derive(Debug, Serialize)]
struct BatchReport {
    batch: usize,
    tune_s: f64,
    speedup_vs_batch1: f64,
}

#[derive(Debug, Serialize)]
struct MultiTenantReport {
    tenants: usize,
    /// The legacy service shape: eight sequential `tune` calls, batch 1.
    sequential_batch1_s: f64,
    /// The batched concurrent service: one `tune_many`, batch 8.
    tune_many_batch8_s: f64,
    speedup: f64,
    /// `tune_many` vs sequential at equal settings produced bitwise
    /// identical best runtimes and configurations for every tenant.
    identical_best_at_equal_settings: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    threads: usize,
    tuner: String,
    stage1_budget: usize,
    stage2_budget: usize,
    single_tenant: Vec<BatchReport>,
    multi_tenant: MultiTenantReport,
}

fn service(batch: usize) -> SeamlessTuner {
    SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(7),
        ServiceConfig {
            tuner: TunerKind::BayesOpt,
            stage1_budget: STAGE1_BUDGET,
            stage2_budget: STAGE2_BUDGET,
            transfer_k: 0,
            batch,
            ..ServiceConfig::default()
        },
    )
}

fn requests() -> Vec<TenantRequest> {
    (0..TENANTS)
        .map(|i| TenantRequest {
            client: format!("tenant-{i}"),
            workload: "wordcount".to_owned(),
            job: Wordcount::new().job(DataScale::Tiny),
            seed: 500 + i as u64,
        })
        .collect()
}

/// Median wall-clock seconds of `f` over `reps` runs (after one warm-up).
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn same_outcome(a: &ServiceOutcome, b: &ServiceOutcome) -> bool {
    a.cloud_config == b.cloud_config
        && a.disc_config == b.disc_config
        && a.best_runtime_s.to_bits() == b.best_runtime_s.to_bits()
}

fn main() {
    let threads = models::par::num_threads();
    println!("bench_service_json: tenants={TENANTS}, threads={threads}");

    // Part 1: one tenant, batch 1 / 4 / 8. A fresh service per run so
    // the history store (and therefore surrogate fit cost) is identical
    // across batch sizes.
    let reqs = requests();
    let mut single = Vec::new();
    let mut batch1_s = f64::NAN;
    for batch in [1usize, 4, 8] {
        let r = &reqs[0];
        let tune_s = time_median(3, || {
            let svc = service(batch);
            let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        });
        if batch == 1 {
            batch1_s = tune_s;
        }
        let speedup = batch1_s / tune_s;
        println!(
            "batch={batch}  tune {:8.1}ms  ({speedup:.2}x vs batch 1)",
            tune_s * 1e3
        );
        single.push(BatchReport {
            batch,
            tune_s,
            speedup_vs_batch1: speedup,
        });
    }

    // Part 2: the 8-tenant workload — legacy sequential loop vs the
    // batched concurrent service.
    let sequential_s = time_median(3, || {
        let svc = service(1);
        for r in &reqs {
            let _ = svc.tune(&r.client, &r.workload, &r.job, r.seed);
        }
    });
    let tune_many_s = time_median(3, || {
        let svc = service(8);
        let _ = svc.tune_many(&reqs);
    });
    let speedup = sequential_s / tune_many_s;
    println!(
        "{TENANTS} tenants: sequential(batch1) {:8.1}ms  tune_many(batch8) {:8.1}ms  ({speedup:.2}x)",
        sequential_s * 1e3,
        tune_many_s * 1e3,
    );

    // Equal-settings equivalence: with transfer disabled the store is
    // write-only during tuning, so concurrency must not change results.
    let seq_svc = service(1);
    let seq_outcomes: Vec<ServiceOutcome> = reqs
        .iter()
        .map(|r| seq_svc.tune(&r.client, &r.workload, &r.job, r.seed))
        .collect();
    let par_svc = service(1);
    let par_outcomes = par_svc.tune_many(&reqs);
    let identical = seq_outcomes.len() == par_outcomes.len()
        && seq_outcomes
            .iter()
            .zip(&par_outcomes)
            .all(|(a, b)| same_outcome(a, b));
    println!("identical best at equal settings: {identical}");
    assert!(
        identical,
        "tune_many diverged from sequential tunes at equal settings"
    );

    let report = BenchReport {
        threads,
        tuner: "bayesopt".to_owned(),
        stage1_budget: STAGE1_BUDGET,
        stage2_budget: STAGE2_BUDGET,
        single_tenant: single,
        multi_tenant: MultiTenantReport {
            tenants: TENANTS,
            sequential_batch1_s: sequential_s,
            tune_many_batch8_s: tune_many_s,
            speedup,
            identical_best_at_equal_settings: identical,
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\n[written to BENCH_service.json]");
}
