//! **E17 — §IV-D's provider-scheduling claim**: "predictability …
//! simplifies the task of cloud provider's job scheduler and should
//! make it more efficient".
//!
//! A shared cluster receives a realistic tenant mix — one long
//! iterative job and several short interactive ones — and we compare
//! cross-job policies:
//!
//! * FIFO in submission order (the naive queue);
//! * FAIR processor sharing;
//! * FIFO with *predicted* shortest-job-first ordering, where the
//!   demand prediction comes from the provider's What-If profiles — the
//!   concrete "more efficient scheduling" the paper says predictability
//!   unlocks.
//!
//! Run with: `cargo run --release -p bench --bin exp_scheduler`

use bench::{print_table, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::{JobProfile, SeamlessTuner};
use serde::Serialize;
use simcluster::{run_shared, ClusterSpec, SharingPolicy, Simulator, SparkEnv, Submission};
use workloads::{DataScale, Pagerank, SqlJoin, Wordcount, Workload};

#[derive(Debug, Serialize)]
struct SchedulerRow {
    policy: String,
    mean_completion_s: f64,
    short_job_mean_s: f64,
    makespan_s: f64,
}

fn tenant_mix() -> Vec<Submission> {
    let cfg = SeamlessTuner::house_default();
    let mut subs = vec![Submission {
        tenant: "analytics-nightly".to_owned(),
        job: Pagerank::new().job(DataScale::Small),
        config: cfg.clone(),
    }];
    for i in 0..3 {
        subs.push(Submission {
            tenant: format!("interactive-{i}"),
            job: Wordcount::new().job(DataScale::Custom(768.0)),
            config: cfg.clone(),
        });
    }
    subs.push(Submission {
        tenant: "dashboard".to_owned(),
        job: SqlJoin::new().job(DataScale::Custom(1024.0)),
        config: cfg,
    });
    subs
}

fn main() {
    println!("E17: provider-side scheduling of a shared cluster\n");
    let cluster = ClusterSpec::table1_testbed();
    let sim = Simulator::dedicated();
    let subs = tenant_mix();

    let measure = |subs: &[Submission], policy: SharingPolicy, label: &str| -> SchedulerRow {
        let mut rng = StdRng::seed_from_u64(9);
        let out = run_shared(&cluster, subs, policy, &sim, &mut rng);
        let short: Vec<f64> = out
            .jobs
            .iter()
            .filter(|j| j.tenant.starts_with("interactive"))
            .map(|j| j.completion_s)
            .collect();
        SchedulerRow {
            policy: label.to_owned(),
            mean_completion_s: out.mean_completion_s(),
            short_job_mean_s: models::stats::mean(&short),
            makespan_s: out.makespan_s,
        }
    };

    let fifo = measure(&subs, SharingPolicy::Fifo, "FIFO (submission order)");
    let fair = measure(&subs, SharingPolicy::Fair, "FAIR (processor sharing)");

    // Predicted shortest-job-first: the provider profiles each tenant's
    // workload once (its history already holds such runs) and orders
    // the queue by *predicted* demand.
    let mut predicted: Vec<(f64, Submission)> = subs
        .iter()
        .map(|s| {
            let env = SparkEnv::resolve(&cluster, &s.config).expect("house default fits");
            let mut rng = StdRng::seed_from_u64(31);
            let profile_run = sim.run(&env, &s.job, &mut rng).expect("profiling run");
            let profile = JobProfile::from_run(&env, &profile_run.metrics);
            (profile.predict(&env), s.clone())
        })
        .collect();
    predicted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let sjf_order: Vec<Submission> = predicted.into_iter().map(|(_, s)| s).collect();
    let sjf = measure(&sjf_order, SharingPolicy::Fifo, "predicted SJF (what-if)");

    let rows: Vec<Vec<String>> = [&fifo, &fair, &sjf]
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}", r.mean_completion_s),
                format!("{:.1}", r.short_job_mean_s),
                format!("{:.1}", r.makespan_s),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "mean completion(s)",
            "interactive-job mean(s)",
            "makespan(s)",
        ],
        &rows,
    );

    println!("\nshape checks:");
    println!(
        "  FAIR rescues interactive jobs stuck behind the long one ({:.1}s vs {:.1}s): {}",
        fair.short_job_mean_s,
        fifo.short_job_mean_s,
        fair.short_job_mean_s < fifo.short_job_mean_s
    );
    println!(
        "  predictability enables SJF, the best mean completion ({:.1}s vs FIFO {:.1}s, FAIR {:.1}s): {}",
        sjf.mean_completion_s,
        fifo.mean_completion_s,
        fair.mean_completion_s,
        sjf.mean_completion_s <= fifo.mean_completion_s
            && sjf.mean_completion_s <= fair.mean_completion_s
    );
    println!(
        "  work is conserved: identical makespans across policies: {}",
        (fifo.makespan_s - fair.makespan_s).abs() < 1.0
            && (fifo.makespan_s - sjf.makespan_s).abs() < 2.0
    );

    write_json("exp_scheduler", &[fifo, fair, sjf]);
}
