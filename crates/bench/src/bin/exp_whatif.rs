//! **E16 — §II-B's Starfish accuracy claim**: "it showed less accuracy
//! when tried with heterogeneous applications and cloud workloads".
//!
//! We profile each workload with ONE execution under the house-default
//! configuration, then ask the What-If engine three kinds of question
//! and compare its predictions against the simulator's ground truth
//! (mean absolute percentage error):
//!
//! * *cluster scaling* — same configuration, 2/8/16 nodes (Starfish's
//!   home turf: resource rescaling);
//! * *input scaling* — same configuration and cluster, 2×/4× the data;
//! * *heterogeneous configs* — 25 random Spark configurations on the
//!   same cluster (where §II-B says accuracy degrades: the profile
//!   never saw the changed serializer/codec/memory behaviour).
//!
//! Run with: `cargo run --release -p bench --bin exp_whatif`

use bench::{print_table, random_pool, write_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::{JobProfile, SeamlessTuner};
use serde::Serialize;
use simcluster::{ClusterSpec, JobSpec, Simulator, SparkEnv};
use workloads::{all_workloads, DataScale};

#[derive(Debug, Serialize)]
struct WhatIfRow {
    workload: String,
    mape_cluster_scaling: f64,
    mape_input_scaling: f64,
    mape_hetero_configs: f64,
}

fn actual(env: &SparkEnv, job: &JobSpec, seed: u64) -> Option<f64> {
    let mut total = 0.0;
    for s in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed + s);
        total += Simulator::dedicated()
            .run(env, job, &mut rng)
            .ok()?
            .runtime_s;
    }
    Some(total / 3.0)
}

fn mape(pairs: &[(f64, f64)]) -> f64 {
    let v: Vec<f64> = pairs
        .iter()
        .map(|(pred, act)| (pred - act).abs() / act.max(1e-9))
        .collect();
    100.0 * models::stats::mean(&v)
}

fn main() {
    println!("E16: What-If (Starfish) prediction accuracy by question type\n");
    let cfg = SeamlessTuner::house_default();
    let space = confspace::spark::spark_space();
    let node = simcluster::catalog::h1_4xlarge();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for w in all_workloads() {
        let job = w.job(DataScale::Small);
        let base_cluster = ClusterSpec::new(node.clone(), 4);
        let base_env = SparkEnv::resolve(&base_cluster, &cfg).expect("house default fits");
        let mut rng = StdRng::seed_from_u64(7);
        let profile_run = Simulator::dedicated()
            .run(&base_env, &job, &mut rng)
            .expect("profiling run succeeds");
        let profile = JobProfile::from_run(&base_env, &profile_run.metrics);

        // Question 1: cluster scaling.
        let mut cluster_pairs = Vec::new();
        for nodes in [2u32, 8, 16] {
            let cluster = ClusterSpec::new(node.clone(), nodes);
            let env = SparkEnv::resolve(&cluster, &cfg).expect("fits");
            if let Some(act) = actual(&env, &job, 100 + u64::from(nodes)) {
                cluster_pairs.push((profile.predict(&env), act));
            }
        }

        // Question 2: input scaling.
        let mut input_pairs = Vec::new();
        for ratio in [2.0f64, 4.0] {
            let scaled = w.job(DataScale::Custom(DataScale::Small.input_mb() * ratio));
            if let Some(act) = actual(&base_env, &scaled, 200 + ratio as u64) {
                input_pairs.push((profile.predict_scaled(&base_env, ratio), act));
            }
        }

        // Question 3: heterogeneous configurations. The predictions
        // are batched so the profile's stage totals are summed once
        // for all 25 what-if questions.
        let envs: Vec<SparkEnv> = random_pool(&space, 25, 0xE16 + w.name().len() as u64)
            .iter()
            .filter_map(|c| SparkEnv::resolve(&base_cluster, c).ok())
            .collect();
        let preds = profile.predict_many(&envs);
        let mut hetero_pairs = Vec::new();
        for (env, pred) in envs.iter().zip(preds) {
            if let Some(act) = actual(env, &job, 300) {
                hetero_pairs.push((pred, act));
            }
        }

        let row = WhatIfRow {
            workload: w.name().to_owned(),
            mape_cluster_scaling: mape(&cluster_pairs),
            mape_input_scaling: mape(&input_pairs),
            mape_hetero_configs: mape(&hetero_pairs),
        };
        rows.push(vec![
            row.workload.clone(),
            format!("{:.0}%", row.mape_cluster_scaling),
            format!("{:.0}%", row.mape_input_scaling),
            format!("{:.0}%", row.mape_hetero_configs),
        ]);
        json.push(row);
    }

    print_table(
        &[
            "workload",
            "MAPE: cluster scaling",
            "MAPE: input scaling",
            "MAPE: heterogeneous configs",
        ],
        &rows,
    );

    let mean_of =
        |f: fn(&WhatIfRow) -> f64| models::stats::mean(&json.iter().map(f).collect::<Vec<_>>());
    let homo = mean_of(|r| r.mape_cluster_scaling).min(mean_of(|r| r.mape_input_scaling));
    let hetero = mean_of(|r| r.mape_hetero_configs);
    println!("\nshape check (§II-B: 'less accuracy with heterogeneous … workloads'):");
    println!(
        "  heterogeneous-config error ({hetero:.0}%) is far above same-behaviour rescaling error ({homo:.0}%): {}",
        hetero > 1.5 * homo
    );

    write_json("exp_whatif", &json);
}
