//! **E8 — §V-B**: leveraging tuning knowledge across workloads.
//!
//! A donor tenant tunes a workload; a second tenant then tunes a
//! *similar* workload cold vs. warm-started from the donor's history.
//! The warm start should converge in fewer executions. A third case
//! warm-starts from a *dissimilar* workload to exercise the
//! negative-transfer guard (Ge et al. \[17\]): the guard must keep the
//! dissimilar donation from making things worse than cold start.
//!
//! Run with: `cargo run --release -p bench --bin exp_transfer`

use bench::{print_table, write_json};
use seamless_core::transfer::TransferTuner;
use seamless_core::tuner::{best_so_far, TunerKind, TuningSession};
use seamless_core::{DiscObjective, Observation, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{DataScale, Pagerank, Terasort, Wordcount, Workload};

const BUDGET: usize = 25;
const REPEATS: u64 = 10;

#[derive(Debug, Serialize)]
struct TransferRow {
    setting: String,
    best_runtime_s: f64,
    best_at_8_evals: f64,
    evals_to_within_15pct: Option<usize>,
}

/// Tunes the donor and returns its history as donated observations.
fn donor_history(seed: u64) -> Vec<Observation> {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Pagerank::with_iterations(4).job(DataScale::Small),
        &SimEnvironment::dedicated(seed),
    );
    let mut session = TuningSession::new(TunerKind::BayesOpt, seed);
    session.run(&mut obj, 30).history
}

/// A "donation" from a totally different workload (scan-bound, whose
/// optimum prefers small memory / high parallelism trade-offs that
/// mislead a cache-bound iterative job).
fn dissimilar_history(seed: u64) -> Vec<Observation> {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(seed),
    );
    let mut session = TuningSession::new(TunerKind::BayesOpt, seed);
    session.run(&mut obj, 30).history
}

fn mean_curve(settings: &str, donor: Option<Vec<Observation>>) -> Vec<f64> {
    let _ = settings;
    let mut mean = vec![0.0f64; BUDGET];
    for rep in 0..REPEATS {
        let mut obj = DiscObjective::new(
            ClusterSpec::table1_testbed(),
            Pagerank::new().job(DataScale::Small),
            &SimEnvironment::dedicated(900 + rep),
        );
        let mut session = match &donor {
            None => TuningSession::new(TunerKind::BayesOpt, 40 + rep),
            Some(d) => TuningSession::with_tuner(
                Box::new(TransferTuner::new(TunerKind::BayesOpt.build(), d.clone())),
                40 + rep,
            ),
        };
        let outcome = session.run(&mut obj, BUDGET);
        for (i, b) in best_so_far(&outcome.history).iter().enumerate() {
            mean[i] += b / REPEATS as f64;
        }
    }
    mean
}

fn main() {
    println!("E8: transfer learning across workloads ({REPEATS} repeats, budget {BUDGET})\n");

    // Target: Pagerank (5 iters). Donor: Pagerank (4 iters) — similar.
    // Dissimilar donor: tiny Wordcount.
    let similar = donor_history(70);
    let dissimilar = dissimilar_history(71);
    let _ = Terasort::new(); // (kept for symmetry with DESIGN.md's workload table)

    let settings: Vec<(&str, Option<Vec<Observation>>)> = vec![
        ("cold-start", None),
        ("warm (similar donor)", Some(similar)),
        ("warm (dissimilar donor, guarded)", Some(dissimilar)),
    ];

    let mut curves = Vec::new();
    for (name, donor) in settings {
        curves.push((name, mean_curve(name, donor)));
    }

    let global_best = curves
        .iter()
        .map(|(_, c)| *c.last().expect("non-empty"))
        .fold(f64::INFINITY, f64::min);
    let target = global_best * 1.15;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, curve) in &curves {
        let within = curve.iter().position(|&b| b <= target).map(|i| i + 1);
        rows.push(vec![
            (*name).to_owned(),
            format!("{:.1}", curve.last().expect("non-empty")),
            format!("{:.1}", curve[7]),
            within.map_or(format!(">{BUDGET}"), |n| n.to_string()),
        ]);
        json.push(TransferRow {
            setting: (*name).to_owned(),
            best_runtime_s: *curve.last().expect("non-empty"),
            best_at_8_evals: curve[7],
            evals_to_within_15pct: within,
        });
    }
    print_table(
        &[
            "setting",
            "best(s)",
            "best after 8 execs(s)",
            "execs to within 15%",
        ],
        &rows,
    );

    let cold = &json[0];
    let warm = &json[1];
    let guarded = &json[2];
    println!("\nshape checks:");
    println!(
        "  similar-donor warm start is ahead early (after 8 execs): {:.1}s vs {:.1}s -> {}",
        warm.best_at_8_evals,
        cold.best_at_8_evals,
        warm.best_at_8_evals <= cold.best_at_8_evals
    );
    println!(
        "  guard keeps dissimilar donation from ending worse than cold start: {:.1}s vs {:.1}s -> {}",
        guarded.best_runtime_s,
        cold.best_runtime_s,
        guarded.best_runtime_s <= cold.best_runtime_s * 1.25
    );

    write_json("exp_transfer", &json);
}
