//! **trace_summary** — replays a structured trace into a human-readable
//! latency/cost breakdown.
//!
//! Accepts either a JSONL trace (written by an [`obs::JsonlSink`]) or a
//! Chrome trace-event JSON file (written by [`obs::write_chrome_trace`]
//! or the flight recorder's `flight_NNN_<reason>.json` dumps) — the
//! format is sniffed from the document head. For every span name it
//! reports call count, total/mean/min/max/p95 wall time, *self* time
//! (exclusive of child spans), and the share of the trace's wall
//! clock; a second table ranks spans by self time, so the hot leaf is
//! visible even when a parent span dominates the totals. Counter
//! samples and instant events are listed after the latency tables.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bench --bin trace_summary -- trace.jsonl
//! cargo run --release -p bench --bin trace_summary -- flight_000_quarantine.json
//! cargo run --release -p bench --bin trace_summary -- --demo
//! ```
//!
//! `--demo` runs one default [`SeamlessTuner::tune`] session with a
//! JSONL sink attached to `results/demo_trace.jsonl` (and a Chrome
//! trace next to it, loadable in `chrome://tracing` / Perfetto), then
//! summarizes the file it just wrote.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

use obs::{Event, EventKind};

/// Rows shown per latency table; deeper traces are truncated (and say
/// so) — the point of the summary is the head, not the tail.
const TOP_K: usize = 15;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.first().map(String::as_str) {
        Some("--demo") => match write_demo_trace() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("demo trace failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Some(p) => p.to_owned(),
        None => {
            eprintln!("usage: trace_summary <trace.jsonl|chrome_trace.json> | --demo");
            return ExitCode::FAILURE;
        }
    };

    let events = match read_trace(&path) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("{path}: no events");
        return ExitCode::FAILURE;
    }
    println!("# Trace summary: {path} ({} events)", events.len());
    print_span_table(&events);
    print_self_time_table(&events);
    print_counters(&events);
    print_instants(&events);
    ExitCode::SUCCESS
}

/// Reads a trace file in either supported format. Both start with
/// `{`, so the sniff keys on the Chrome trace document's mandatory
/// top-level `"traceEvents"` key; everything else is treated as JSONL
/// (one event object per line).
fn read_trace(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let head: String = text
        .trim_start()
        .chars()
        .take(64)
        .filter(|c| c != &' ')
        .collect();
    if head.starts_with("{\"traceEvents\"") {
        obs::parse_chrome_trace(&text)
    } else {
        obs::parse_jsonl(&text)
    }
}

/// Per-span-name latency aggregate over `SpanEnd` durations.
#[derive(Default)]
struct SpanAgg {
    durs_ns: Vec<u64>,
    self_ns: u64,
}

impl SpanAgg {
    fn total(&self) -> u64 {
        self.durs_ns.iter().sum()
    }

    fn quantile(&mut self, q: f64) -> u64 {
        self.durs_ns.sort_unstable();
        if self.durs_ns.is_empty() {
            return 0;
        }
        let idx = ((self.durs_ns.len() - 1) as f64 * q).round() as usize;
        self.durs_ns[idx]
    }
}

/// Aggregates `SpanEnd` events by name, attributing to each span its
/// *self* time: its duration minus the summed durations of its direct
/// children (clamped at 0 — concurrent children can overlap a parent).
fn span_durations(events: &[Event]) -> BTreeMap<String, SpanAgg> {
    // First pass: each completed span instance and its duration.
    let mut instances: BTreeMap<u64, (&str, u64)> = BTreeMap::new();
    // Sum of direct children's durations per parent span id.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::SpanEnd {
            continue;
        }
        let Some(dur) = e.field("dur_ns").and_then(|f| f.as_u64()) else {
            continue;
        };
        if e.span_id != 0 {
            instances.insert(e.span_id, (e.name.as_str(), dur));
        }
        if e.parent_id != 0 {
            *child_ns.entry(e.parent_id).or_default() += dur;
        }
    }
    let mut by_name: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for (span_id, (name, dur)) in &instances {
        let agg = by_name.entry((*name).to_string()).or_default();
        agg.durs_ns.push(*dur);
        let children = child_ns.get(span_id).copied().unwrap_or(0);
        agg.self_ns += dur.saturating_sub(children);
    }
    by_name
}

fn trace_wall_ns(events: &[Event]) -> u64 {
    let first = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let last = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    (last - first).max(1)
}

fn print_span_table(events: &[Event]) {
    let mut by_name = span_durations(events);
    if by_name.is_empty() {
        println!("\n(no completed spans)");
        return;
    }
    let wall = trace_wall_ns(events);
    let total_names = by_name.len();

    struct Row {
        name: String,
        n: usize,
        total: u64,
        self_ns: u64,
        mean: u64,
        min: u64,
        max: u64,
        p95: u64,
    }
    let mut rows: Vec<Row> = by_name
        .iter_mut()
        .map(|(name, agg)| {
            let n = agg.durs_ns.len();
            let total = agg.total();
            Row {
                name: name.clone(),
                n,
                total,
                self_ns: agg.self_ns,
                mean: total / n as u64,
                min: *agg.durs_ns.iter().min().unwrap_or(&0),
                max: *agg.durs_ns.iter().max().unwrap_or(&0),
                p95: agg.quantile(0.95),
            }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total)); // heaviest total first
    rows.truncate(TOP_K);

    println!(
        "\n## Span latency by total time ({}; wall = {})",
        if total_names > TOP_K {
            format!("top {TOP_K} of {total_names}")
        } else {
            "heaviest first".to_string()
        },
        fmt_ns(wall)
    );
    println!(
        "| {:<18} | {:>6} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>6} |",
        "span", "count", "total", "self", "mean", "min", "max", "p95", "%wall"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(20),
        "-".repeat(8),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(8)
    );
    for r in rows {
        println!(
            "| {:<18} | {:>6} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>5.1}% |",
            r.name,
            r.n,
            fmt_ns(r.total),
            fmt_ns(r.self_ns),
            fmt_ns(r.mean),
            fmt_ns(r.min),
            fmt_ns(r.max),
            fmt_ns(r.p95),
            100.0 * r.total as f64 / wall as f64
        );
    }
}

fn print_self_time_table(events: &[Event]) {
    let by_name = span_durations(events);
    if by_name.is_empty() {
        return;
    }
    let wall = trace_wall_ns(events);
    let total_names = by_name.len();
    let mut rows: Vec<(String, usize, u64)> = by_name
        .into_iter()
        .map(|(name, agg)| (name, agg.durs_ns.len(), agg.self_ns))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2));
    rows.truncate(TOP_K);

    println!(
        "\n## Span self time (exclusive of children; {})",
        if total_names > TOP_K {
            format!("top {TOP_K} of {total_names}")
        } else {
            "hottest first".to_string()
        }
    );
    println!(
        "| {:<18} | {:>6} | {:>10} | {:>6} |",
        "span", "count", "self", "%wall"
    );
    println!(
        "|{}|{}|{}|{}|",
        "-".repeat(20),
        "-".repeat(8),
        "-".repeat(12),
        "-".repeat(8)
    );
    for (name, n, self_ns) in rows {
        println!(
            "| {:<18} | {:>6} | {:>10} | {:>5.1}% |",
            name,
            n,
            fmt_ns(self_ns),
            100.0 * self_ns as f64 / wall as f64
        );
    }
}

fn print_counters(events: &[Event]) {
    // Counter samples carry the running value; report the last one seen.
    let mut last: BTreeMap<String, f64> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::Counter {
            continue;
        }
        if let Some(v) = e.field("value").and_then(|f| f.as_f64()) {
            last.insert(e.name.clone(), v);
        }
    }
    if last.is_empty() {
        return;
    }
    println!("\n## Counters (final value)");
    for (name, v) in last {
        println!("  {name:<30} {v}");
    }
}

fn print_instants(events: &[Event]) {
    let instants: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant)
        .collect();
    if instants.is_empty() {
        return;
    }
    println!("\n## Instant events ({})", instants.len());
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &instants {
        *by_name.entry(e.name.as_str()).or_default() += 1;
    }
    for (name, n) in by_name {
        println!("  {name:<30} ×{n}");
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Runs one default end-to-end tuning with a JSONL sink attached and
/// returns the trace path.
fn write_demo_trace() -> std::io::Result<String> {
    use seamless_core::{HistoryStore, SeamlessTuner, ServiceConfig, SimEnvironment};
    use workloads::{DataScale, Wordcount, Workload};

    std::fs::create_dir_all("results")?;
    let jsonl_path = "results/demo_trace.jsonl".to_owned();
    let sink = obs::JsonlSink::create(&jsonl_path)?;
    obs::install(sink);

    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(42),
        ServiceConfig::default(),
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("demo", "wordcount", &job, 1);
    eprintln!(
        "demo tune finished: best runtime {:.1}s, tuning cost ${:.2}",
        out.best_runtime_s,
        out.tuning_cost_usd()
    );
    obs::registry().publish();
    obs::uninstall_all();

    // A Chrome trace next to the JSONL, for chrome://tracing / Perfetto.
    let events = obs::read_jsonl_file(&jsonl_path)?;
    obs::write_chrome_trace("results/demo_trace.json", &events)?;
    eprintln!("wrote results/demo_trace.jsonl and results/demo_trace.json");

    // The in-process metrics the same run populated.
    eprintln!("\n{}", obs::registry().snapshot());
    Ok(jsonl_path)
}
