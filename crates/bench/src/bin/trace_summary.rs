//! **trace_summary** — replays a structured JSONL trace (written by an
//! [`obs::JsonlSink`]) into a human-readable latency/cost breakdown.
//!
//! For every span name it reports call count, total/mean/min/max/p95
//! wall time and the share of the root span's duration; counter samples
//! and instant events are listed after the latency table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p bench --bin trace_summary -- trace.jsonl
//! cargo run --release -p bench --bin trace_summary -- --demo
//! ```
//!
//! `--demo` runs one default [`SeamlessTuner::tune`] session with a
//! JSONL sink attached to `results/demo_trace.jsonl` (and a Chrome
//! trace next to it, loadable in `chrome://tracing` / Perfetto), then
//! summarizes the file it just wrote.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

use obs::{Event, EventKind};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.first().map(String::as_str) {
        Some("--demo") => match write_demo_trace() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("demo trace failed: {e}");
                return ExitCode::FAILURE;
            }
        },
        Some(p) => p.to_owned(),
        None => {
            eprintln!("usage: trace_summary <trace.jsonl> | --demo");
            return ExitCode::FAILURE;
        }
    };

    let events = match obs::read_jsonl_file(&path) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!("{path}: no events");
        return ExitCode::FAILURE;
    }
    println!("# Trace summary: {path} ({} events)", events.len());
    print_span_table(&events);
    print_counters(&events);
    print_instants(&events);
    ExitCode::SUCCESS
}

/// Per-span-name latency aggregate over `SpanEnd` durations.
#[derive(Default)]
struct SpanAgg {
    durs_ns: Vec<u64>,
}

impl SpanAgg {
    fn total(&self) -> u64 {
        self.durs_ns.iter().sum()
    }

    fn quantile(&mut self, q: f64) -> u64 {
        self.durs_ns.sort_unstable();
        if self.durs_ns.is_empty() {
            return 0;
        }
        let idx = ((self.durs_ns.len() - 1) as f64 * q).round() as usize;
        self.durs_ns[idx]
    }
}

fn span_durations(events: &[Event]) -> BTreeMap<String, SpanAgg> {
    let mut by_name: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::SpanEnd {
            continue;
        }
        let Some(dur) = e.field("dur_ns").and_then(|f| f.as_u64()) else {
            continue;
        };
        by_name.entry(e.name.clone()).or_default().durs_ns.push(dur);
    }
    by_name
}

fn print_span_table(events: &[Event]) {
    let mut by_name = span_durations(events);
    if by_name.is_empty() {
        println!("\n(no completed spans)");
        return;
    }
    // Wall clock covered by the trace: first to last timestamp.
    let first = events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
    let last = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
    let wall = (last - first).max(1);

    let mut rows: Vec<(String, usize, u64, u64, u64, u64, u64)> = by_name
        .iter_mut()
        .map(|(name, agg)| {
            let n = agg.durs_ns.len();
            let total = agg.total();
            let mean = total / n as u64;
            let min = *agg.durs_ns.iter().min().unwrap_or(&0);
            let max = *agg.durs_ns.iter().max().unwrap_or(&0);
            let p95 = agg.quantile(0.95);
            (name.clone(), n, total, mean, min, max, p95)
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.2)); // heaviest first

    println!(
        "\n## Span latency (heaviest first; wall = {})",
        fmt_ns(wall)
    );
    println!(
        "| {:<18} | {:>6} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>6} |",
        "span", "count", "total", "mean", "min", "max", "p95", "%wall"
    );
    println!(
        "|{}|{}|{}|{}|{}|{}|{}|{}|",
        "-".repeat(20),
        "-".repeat(8),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(12),
        "-".repeat(8)
    );
    for (name, n, total, mean, min, max, p95) in rows {
        println!(
            "| {:<18} | {:>6} | {:>10} | {:>10} | {:>10} | {:>10} | {:>10} | {:>5.1}% |",
            name,
            n,
            fmt_ns(total),
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            fmt_ns(p95),
            100.0 * total as f64 / wall as f64
        );
    }
}

fn print_counters(events: &[Event]) {
    // Counter samples carry the running value; report the last one seen.
    let mut last: BTreeMap<String, f64> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::Counter {
            continue;
        }
        if let Some(v) = e.field("value").and_then(|f| f.as_f64()) {
            last.insert(e.name.clone(), v);
        }
    }
    if last.is_empty() {
        return;
    }
    println!("\n## Counters (final value)");
    for (name, v) in last {
        println!("  {name:<30} {v}");
    }
}

fn print_instants(events: &[Event]) {
    let instants: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant)
        .collect();
    if instants.is_empty() {
        return;
    }
    println!("\n## Instant events ({})", instants.len());
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &instants {
        *by_name.entry(e.name.as_str()).or_default() += 1;
    }
    for (name, n) in by_name {
        println!("  {name:<30} ×{n}");
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Runs one default end-to-end tuning with a JSONL sink attached and
/// returns the trace path.
fn write_demo_trace() -> std::io::Result<String> {
    use seamless_core::{HistoryStore, SeamlessTuner, ServiceConfig, SimEnvironment};
    use workloads::{DataScale, Wordcount, Workload};

    std::fs::create_dir_all("results")?;
    let jsonl_path = "results/demo_trace.jsonl".to_owned();
    let sink = obs::JsonlSink::create(&jsonl_path)?;
    obs::install(sink);

    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(42),
        ServiceConfig::default(),
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("demo", "wordcount", &job, 1);
    eprintln!(
        "demo tune finished: best runtime {:.1}s, tuning cost ${:.2}",
        out.best_runtime_s,
        out.tuning_cost_usd()
    );
    obs::registry().publish();
    obs::uninstall_all();

    // A Chrome trace next to the JSONL, for chrome://tracing / Perfetto.
    let events = obs::read_jsonl_file(&jsonl_path)?;
    obs::write_chrome_trace("results/demo_trace.json", &events)?;
    eprintln!("wrote results/demo_trace.jsonl and results/demo_trace.json");

    // The in-process metrics the same run populated.
    eprintln!("\n{}", obs::registry().snapshot());
    Ok(jsonl_path)
}
