//! **E14 — ablations** of the design choices DESIGN.md calls out for
//! the tuning service's default strategy (CherryPick-style BO):
//!
//! * kernel family (Matérn-5/2 vs squared-exponential vs additive);
//! * warm-up design size (4 / 8 / 16 Latin-hypercube samples);
//! * the Ernest analytic model's adaptivity gap: excellent on its
//!   ML-style niche (logistic regression over cluster sizes), poor on
//!   a shuffle-bound workload (§II-A's "poor adaptivity" citation).
//!
//! Run with: `cargo run --release -p bench --bin exp_ablation`

use bench::{print_table, write_json};
use models::Kernel;
use seamless_core::tuner::{bo::BayesOpt, TunerKind, TuningSession};
use seamless_core::{CloudObjective, DiscObjective, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{DataScale, LogisticRegression, Pagerank, Terasort, Workload};

const BUDGET: usize = 30;
const REPEATS: u64 = 4;

#[derive(Debug, Serialize)]
struct AblationRow {
    ablation: String,
    variant: String,
    mean_best_runtime_s: f64,
}

fn bo_variant(kernel: Kernel, init: usize) -> Box<BayesOpt> {
    let mut t = BayesOpt::with_kernel(kernel);
    t.init_samples = init;
    Box::new(t)
}

fn mean_best(make: impl Fn() -> Box<BayesOpt>, job_seed: u64) -> f64 {
    let job = Pagerank::new().job(DataScale::Small);
    let mut total = 0.0;
    for rep in 0..REPEATS {
        let mut obj = DiscObjective::new(
            ClusterSpec::table1_testbed(),
            job.clone(),
            &SimEnvironment::dedicated(job_seed + rep),
        );
        let mut session = TuningSession::with_tuner(make(), 100 + rep);
        total += session.run(&mut obj, BUDGET).best_runtime_s();
    }
    total / REPEATS as f64
}

fn main() {
    println!("E14: ablations of the default strategy ({BUDGET} executions, {REPEATS} repeats)\n");
    let mut json = Vec::new();

    // --- Kernel family ---
    let kernels = [
        (
            "matern52",
            Kernel::Matern52 {
                length_scale: 0.4,
                variance: 1.0,
            },
        ),
        (
            "squared-exp",
            Kernel::SquaredExp {
                length_scale: 0.4,
                variance: 1.0,
            },
        ),
        (
            "additive",
            Kernel::Additive {
                length_scale: 0.3,
                variance: 1.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, kernel) in kernels {
        let m = mean_best(|| bo_variant(kernel, 8), 50);
        rows.push(vec![
            "kernel".to_owned(),
            name.to_owned(),
            format!("{m:.1}"),
        ]);
        json.push(AblationRow {
            ablation: "kernel".to_owned(),
            variant: name.to_owned(),
            mean_best_runtime_s: m,
        });
    }

    // --- Warm-up design size ---
    for init in [4usize, 8, 16] {
        let m = mean_best(
            || {
                bo_variant(
                    Kernel::Matern52 {
                        length_scale: 0.4,
                        variance: 1.0,
                    },
                    init,
                )
            },
            60,
        );
        rows.push(vec![
            "init-design".to_owned(),
            format!("{init} samples"),
            format!("{m:.1}"),
        ]);
        json.push(AblationRow {
            ablation: "init-design".to_owned(),
            variant: format!("{init}"),
            mean_best_runtime_s: m,
        });
    }
    print_table(
        &[
            "ablation",
            "variant",
            "mean best runtime(s) on pagerank@small",
        ],
        &rows,
    );

    // --- Ernest's adaptivity gap (§II-A) ---
    println!("\nErnest vs BO on cloud selection, per workload class:");
    let mut rows = Vec::new();
    for (class, job) in [
        (
            "ML (its niche)",
            LogisticRegression::new().job(DataScale::Small),
        ),
        ("shuffle-bound", Terasort::new().job(DataScale::Small)),
    ] {
        let mut per_kind = Vec::new();
        for kind in [TunerKind::Ernest, TunerKind::BayesOpt] {
            let mut total = 0.0;
            for rep in 0..REPEATS {
                let mut obj = CloudObjective::new(
                    job.clone(),
                    SeamlessTuner::house_default(),
                    &SimEnvironment::dedicated(70 + rep),
                );
                let mut session = TuningSession::new(kind, 200 + rep);
                total += session.run(&mut obj, 14).best_runtime_s();
            }
            per_kind.push(total / REPEATS as f64);
            json.push(AblationRow {
                ablation: format!("ernest-adaptivity/{class}"),
                variant: kind.label().to_owned(),
                mean_best_runtime_s: total / REPEATS as f64,
            });
        }
        rows.push(vec![
            class.to_owned(),
            format!("{:.1}", per_kind[0]),
            format!("{:.1}", per_kind[1]),
            format!("{:.2}x", per_kind[0] / per_kind[1]),
        ]);
    }
    print_table(
        &[
            "workload class",
            "ernest best(s)",
            "bayesopt best(s)",
            "ernest/bo",
        ],
        &rows,
    );

    let ml_ratio: f64 = rows[0][3].trim_end_matches('x').parse().expect("ratio");
    let shuffle_ratio: f64 = rows[1][3].trim_end_matches('x').parse().expect("ratio");
    println!("\nshape check (Ernest's poor adaptivity outside its niche):");
    println!(
        "  ernest is relatively stronger on ML than on shuffle-bound work ({ml_ratio:.2}x vs {shuffle_ratio:.2}x): {}",
        ml_ratio <= shuffle_ratio
    );

    write_json("exp_ablation", &json);
}
