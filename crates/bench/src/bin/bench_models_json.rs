//! Machine-readable latency benchmark for the surrogate hot path,
//! written to `BENCH_models.json` at the repo root.
//!
//! Measures, at history sizes n = 32 / 120 / 512 (d = 26, the Spark
//! space dimensionality):
//!
//! * `fit_sequential_baseline_s` — the pre-optimization `fit_auto`
//!   shape: 15 independent full `GpRegressor::fit` calls, one per
//!   hyperparameter grid point, each rebuilding its own kernel matrix;
//! * `fit_auto_s` — the shipped `fit_auto` (shared Gram per length
//!   scale, grid parallelized over [`models::par`]);
//! * `fit_cached_incremental_s` — `GpFitCache` warm path: cache holds
//!   n−1 points, one new row arrives (the steady state of a BO loop);
//! * `predict_s` / `predict_batch_s` — single-point vs batched
//!   prediction, per query;
//! * `propose_s` — a full `BayesOpt::propose` step at that history
//!   size (n ≤ 120 only: the tuner subsamples above `MAX_GP_POINTS`).
//!
//! Run with: `cargo run --release -p bench --bin bench_models_json`

use std::time::Instant;

use models::{GpFitCache, GpRegressor, Kernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seamless_core::tuner::{BayesOpt, Tuner};
use seamless_core::Observation;
use serde::Serialize;

const D: usize = 26;
const MATERN: Kernel = Kernel::Matern52 {
    length_scale: 0.4,
    variance: 1.0,
};
const LS_GRID: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.6];
const NOISE_GRID: [f64; 3] = [1e-4, 1e-2, 5e-2];

#[derive(Debug, Serialize)]
struct SizeReport {
    n: usize,
    fit_sequential_baseline_s: f64,
    fit_auto_s: f64,
    fit_cached_incremental_s: f64,
    fit_auto_speedup: f64,
    fit_cached_speedup: f64,
    predict_s: f64,
    predict_batch_s: f64,
    propose_s: Option<f64>,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    threads: usize,
    dim: usize,
    /// Headline: the steady-state BO fit (cached incremental, the path
    /// `BayesOpt::propose` actually takes) vs the pre-optimization
    /// sequential baseline, at n = 120.
    fit_n120_hot_path_speedup: f64,
    sizes: Vec<SizeReport>,
}

fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..D).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|v| {
            2.0 + v
                .iter()
                .enumerate()
                .map(|(i, u)| (u - 0.1 * (i % 7) as f64).powi(2))
                .sum::<f64>()
        })
        .collect();
    (x, y)
}

/// Median wall-clock seconds of `f` over `reps` runs (after one warm-up).
fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-optimization fit shape: every grid point refits from
/// scratch, rebuilding its own kernel matrix (15 Gram builds + 15 full
/// Cholesky factorizations).
fn fit_sequential_baseline(x: &[Vec<f64>], y: &[f64]) -> GpRegressor {
    let mut best: Option<GpRegressor> = None;
    for ls in LS_GRID {
        for noise in NOISE_GRID {
            if let Ok(gp) = GpRegressor::fit(x, y, MATERN.with_length_scale(ls), noise) {
                let better = best
                    .as_ref()
                    .map(|b| gp.log_marginal_likelihood() > b.log_marginal_likelihood())
                    .unwrap_or(true);
                if better {
                    best = Some(gp);
                }
            }
        }
    }
    best.expect("at least one grid point fits")
}

fn propose_latency(n: usize) -> f64 {
    let space = confspace::spark::spark_space();
    let mut rng = StdRng::seed_from_u64(17);
    let pool = bench::random_pool(&space, n, 23);
    let history: Vec<Observation> = pool
        .into_iter()
        .enumerate()
        .map(|(i, config)| Observation {
            config,
            runtime_s: 60.0 + (i % 11) as f64 * 7.0,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        })
        .collect();
    let mut bo = BayesOpt::new();
    time_median(5, || {
        let _ = bo.propose(&space, &history, &mut rng);
    })
}

fn main() {
    let threads = models::par::num_threads();
    println!("bench_models_json: d={D}, threads={threads}");

    let mut sizes = Vec::new();
    for n in [32usize, 120, 512] {
        let reps = if n >= 512 { 3 } else { 7 };
        let (x, y) = synthetic(n, 0xBE + n as u64);

        let baseline = time_median(reps, || {
            let _ = fit_sequential_baseline(&x, &y);
        });
        let auto = time_median(reps, || {
            let _ = GpRegressor::fit_auto(&x, &y, MATERN);
        });
        // Warm the cache with n−1 points once, then time only the
        // incremental one-row step a BO iteration pays (cloning the
        // warm cache per sample so each run appends exactly one row).
        let mut cache = GpFitCache::new();
        cache.fit_auto(&x[..n - 1], &y[..n - 1], MATERN);
        let incremental = {
            let mut samples = Vec::new();
            for _ in 0..reps {
                let mut c = cache.clone();
                let t = Instant::now();
                let _ = c.fit_auto(&x, &y, MATERN);
                samples.push(t.elapsed().as_secs_f64());
            }
            samples.sort_by(f64::total_cmp);
            samples[samples.len() / 2]
        };

        let gp = GpRegressor::fit_auto(&x, &y, MATERN);
        let qs: Vec<Vec<f64>> = synthetic(256, 0xF0 + n as u64).0;
        let predict = time_median(reps, || {
            for q in &qs {
                let _ = gp.predict(q);
            }
        }) / qs.len() as f64;
        let predict_batch = time_median(reps, || {
            let _ = gp.predict_batch(&qs);
        }) / qs.len() as f64;

        let propose = (n <= 120).then(|| propose_latency(n));

        println!(
            "n={n:4}  baseline {:8.1}ms  fit_auto {:8.1}ms ({:.1}x)  incremental {:8.1}ms ({:.1}x)",
            baseline * 1e3,
            auto * 1e3,
            baseline / auto,
            incremental * 1e3,
            baseline / incremental,
        );
        sizes.push(SizeReport {
            n,
            fit_sequential_baseline_s: baseline,
            fit_auto_s: auto,
            fit_cached_incremental_s: incremental,
            fit_auto_speedup: baseline / auto,
            fit_cached_speedup: baseline / incremental,
            predict_s: predict,
            predict_batch_s: predict_batch,
            propose_s: propose,
        });
    }

    let hot = sizes
        .iter()
        .find(|s| s.n == 120)
        .map(|s| s.fit_cached_speedup)
        .unwrap_or(f64::NAN);
    let report = BenchReport {
        threads,
        dim: D,
        fit_n120_hot_path_speedup: hot,
        sizes,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_models.json", &json).expect("write BENCH_models.json");
    println!("\n[written to BENCH_models.json]");
}
