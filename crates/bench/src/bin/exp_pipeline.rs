//! **E2 — Fig. 1**: the two-stage tuning pipeline, end to end.
//!
//! Stage 1 selects the virtual-cluster characteristics (instance
//! family, size, node count); stage 2 tunes the DISC configuration on
//! the chosen cluster. The run prints each stage's trace — the exact
//! flow of the paper's Fig. 1 — and the final deployment.
//!
//! Run with: `cargo run --release -p bench --bin exp_pipeline`

use std::sync::Arc;

use bench::{print_table, write_json};
use seamless_core::service::ServiceConfig;
use seamless_core::{HistoryStore, SeamlessTuner, SimEnvironment};
use serde::Serialize;
use workloads::{DataScale, Pagerank, Workload};

#[derive(Debug, Serialize)]
struct PipelineResult {
    cluster: String,
    stage1_evals: usize,
    stage2_evals: usize,
    stage1_best_s: f64,
    stage2_best_s: f64,
    tuning_cost_usd: f64,
}

fn main() {
    println!("E2 / Fig. 1: the two-stage seamless tuning pipeline\n");
    let job = Pagerank::new().job(DataScale::Small);
    let service = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::shared(99),
        ServiceConfig {
            stage1_budget: 12,
            stage2_budget: 24,
            ..ServiceConfig::default()
        },
    );
    let outcome = service.tune("tenant-0", "pagerank", &job, 4242);

    println!("STAGE 1 — cloud configuration (select virtual cluster):");
    let mut rows = Vec::new();
    for (i, o) in outcome.stage1.history.iter().enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            o.config.str("cloud.instance.family").to_owned()
                + "."
                + o.config.str("cloud.instance.size"),
            o.config.int("cloud.node.count").to_string(),
            if o.is_ok() {
                format!("{:.1}", o.runtime_s)
            } else {
                "crash".to_owned()
            },
        ]);
    }
    print_table(&["exec", "instance", "nodes", "runtime(s)"], &rows);
    println!("  -> chosen cluster: {}\n", outcome.cluster);

    println!("STAGE 2 — DISC configuration on the chosen cluster:");
    let curve = outcome.stage2.best_so_far();
    let mut rows = Vec::new();
    for (i, (o, b)) in outcome.stage2.history.iter().zip(&curve).enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            if o.is_ok() {
                format!("{:.1}", o.runtime_s)
            } else {
                "crash".to_owned()
            },
            format!("{b:.1}"),
        ]);
    }
    print_table(&["exec", "runtime(s)", "best-so-far(s)"], &rows);

    println!("\nfinal deployment:");
    println!("  cluster:        {}", outcome.cluster);
    println!("  best runtime:   {:.1}s", outcome.best_runtime_s);
    println!("  tuning spend:   ${:.2}", outcome.tuning_cost_usd());
    println!("  disc config:    {}", outcome.disc_config);

    write_json(
        "exp_pipeline",
        &PipelineResult {
            cluster: outcome.cluster.to_string(),
            stage1_evals: outcome.stage1.history.len(),
            stage2_evals: outcome.stage2.history.len(),
            stage1_best_s: outcome.stage1.best_runtime_s(),
            stage2_best_s: outcome.stage2.best_runtime_s(),
            tuning_cost_usd: outcome.tuning_cost_usd(),
        },
    );
}
