//! **E5 — §II/§IV-C's sample-efficiency claims**: how many executions
//! does each strategy need?
//!
//! The paper contrasts BestConfig's ~500-execution budget with
//! CherryPick's small-sample Bayesian optimization and notes
//! model-based approaches need large training sets. For every built-in
//! strategy we tune Pagerank/Terasort/Bayes on the testbed with a
//! 120-execution budget (3 repetitions) and report (a) the best runtime
//! found and (b) the executions needed to get within 10% of the best
//! runtime any strategy ever found for that workload.
//!
//! Run with: `cargo run --release -p bench --bin exp_efficiency`

use bench::{print_table, write_json};
use seamless_core::tuner::{best_so_far, TunerKind, TuningSession};
use seamless_core::{DiscObjective, Objective, SimEnvironment};
use serde::Serialize;
use simcluster::ClusterSpec;
use workloads::{BayesClassifier, DataScale, Pagerank, Terasort, Workload};

const BUDGET: usize = 120;
const REPEATS: u64 = 3;

#[derive(Debug, Serialize)]
struct EfficiencyRow {
    workload: String,
    tuner: String,
    best_runtime_s: f64,
    evals_to_within_10pct: Option<usize>,
    evals_to_2x_default: Option<usize>,
}

fn main() {
    println!(
        "E5: sample efficiency of tuning strategies ({BUDGET} executions, {REPEATS} repeats)\n"
    );
    let cluster = ClusterSpec::table1_testbed();
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(Pagerank::new()),
        Box::new(Terasort::new()),
        Box::new(BayesClassifier::new()),
    ];

    let mut json = Vec::new();
    for w in &workloads {
        let job = w.job(DataScale::Small);
        println!("== {} ==", job.name);

        // Collect mean best-so-far curves per tuner.
        let mut curves: Vec<(TunerKind, Vec<f64>)> = Vec::new();
        for kind in TunerKind::all() {
            let mut mean_curve = vec![0.0f64; BUDGET];
            for rep in 0..REPEATS {
                let mut obj = DiscObjective::new(
                    cluster.clone(),
                    job.clone(),
                    &SimEnvironment::dedicated(1000 + rep),
                );
                let mut session = TuningSession::new(kind, 777 + rep);
                let outcome = session.run(&mut obj, BUDGET);
                for (i, b) in best_so_far(&outcome.history).iter().enumerate() {
                    mean_curve[i] += b / REPEATS as f64;
                }
            }
            curves.push((kind, mean_curve));
        }

        // Global best across strategies = the optimum proxy.
        let global_best = curves
            .iter()
            .map(|(_, c)| *c.last().expect("non-empty curve"))
            .fold(f64::INFINITY, f64::min);
        let target = global_best * 1.10;

        // Reference: default-configuration runtime (for "2x default").
        let mut obj =
            DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(5));
        let dflt = obj
            .evaluate(&confspace::spark::spark_space().default_configuration())
            .runtime_s;

        let mut rows = Vec::new();
        for (kind, curve) in &curves {
            let within = curve.iter().position(|&b| b <= target).map(|i| i + 1);
            let twox = curve.iter().position(|&b| b <= dflt / 2.0).map(|i| i + 1);
            rows.push(vec![
                kind.label().to_owned(),
                format!("{:.1}", curve.last().expect("non-empty")),
                within.map_or(">120".to_owned(), |n| n.to_string()),
                twox.map_or(">120".to_owned(), |n| n.to_string()),
            ]);
            json.push(EfficiencyRow {
                workload: w.name().to_owned(),
                tuner: kind.label().to_owned(),
                best_runtime_s: *curve.last().expect("non-empty"),
                evals_to_within_10pct: within,
                evals_to_2x_default: twox,
            });
        }
        rows.sort_by(|a, b| {
            a[1].parse::<f64>()
                .unwrap_or(1e9)
                .total_cmp(&b[1].parse::<f64>().unwrap_or(1e9))
        });
        print_table(
            &[
                "tuner",
                "best(s)",
                "execs to within 10% of overall best",
                "execs to beat 2x default",
            ],
            &rows,
        );
        println!();
    }

    // Shape check: the model-guided strategies should reach the target
    // in far fewer executions than exhaustive-style search.
    let mean_evals = |label: &str| {
        let v: Vec<f64> = json
            .iter()
            .filter(|r| r.tuner == label)
            .map(|r| {
                r.evals_to_within_10pct
                    .map_or(BUDGET as f64 * 1.5, |n| n as f64)
            })
            .collect();
        models::stats::mean(&v)
    };
    println!("shape checks:");
    println!(
        "  bayesopt needs fewer executions than random (CherryPick's data-efficiency): {:.0} vs {:.0} -> {}",
        mean_evals("bayesopt"),
        mean_evals("random"),
        mean_evals("bayesopt") < mean_evals("random")
    );
    println!(
        "  greedy local search (MROnline-style hill climbing) is the slowest to halve the default runtime: {}",
        {
            let hc: f64 = json.iter().filter(|r| r.tuner == "hillclimb")
                .map(|r| r.evals_to_2x_default.map_or(BUDGET as f64 * 1.5, |n| n as f64))
                .sum::<f64>();
            let bo: f64 = json.iter().filter(|r| r.tuner == "bayesopt")
                .map(|r| r.evals_to_2x_default.map_or(BUDGET as f64 * 1.5, |n| n as f64))
                .sum::<f64>();
            hc > bo
        }
    );
    println!(
        "  every strategy reached its final best well inside BestConfig's published 500-execution budget (E6 prices that budget out)"
    );

    write_json("exp_efficiency", &json);
}
