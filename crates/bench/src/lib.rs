//! Shared harness for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Each binary regenerates one table/figure/claim from the paper (see
//! DESIGN.md §3 for the index and EXPERIMENTS.md for recorded results).
//! The helpers here keep the binaries small: replicated configuration
//! evaluation, deterministic random-configuration pools, markdown table
//! printing, and JSON result dumps under `results/`.

use std::fs;
use std::path::Path;

use confspace::{Configuration, ParamSpace, Sampler, UniformSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use seamless_core::FAILURE_PENALTY_S;
use simcluster::{ClusterSpec, InterferenceModel, JobSpec, Simulator, SparkEnv};

/// Outcome of a replicated evaluation of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EvalSummary {
    /// Mean runtime over successful replicas (penalty if all failed).
    pub mean_runtime_s: f64,
    /// Fraction of replicas that crashed.
    pub crash_frac: f64,
    /// Mean dollar cost over successful replicas.
    pub mean_cost_usd: f64,
}

/// Evaluates `config` on `cluster` for `job`, replicated over `seeds`,
/// averaging successful runs. A configuration that crashes every
/// replica gets the failure penalty.
pub fn eval_config(
    cluster: &ClusterSpec,
    job: &JobSpec,
    config: &Configuration,
    interference: InterferenceModel,
    seeds: &[u64],
) -> EvalSummary {
    let sim = Simulator::with_interference(interference);
    let mut runtimes = Vec::new();
    let mut costs = Vec::new();
    let mut crashes = 0usize;
    for &seed in seeds {
        match SparkEnv::resolve(cluster, config) {
            Err(_) => crashes += 1,
            Ok(env) => {
                let mut rng = StdRng::seed_from_u64(seed);
                match sim.run(&env, job, &mut rng) {
                    Ok(r) => {
                        runtimes.push(r.runtime_s);
                        costs.push(r.cost_usd);
                    }
                    Err(_) => crashes += 1,
                }
            }
        }
    }
    EvalSummary {
        mean_runtime_s: if runtimes.is_empty() {
            FAILURE_PENALTY_S
        } else {
            models::stats::mean(&runtimes)
        },
        crash_frac: crashes as f64 / seeds.len().max(1) as f64,
        mean_cost_usd: if costs.is_empty() {
            0.0
        } else {
            models::stats::mean(&costs)
        },
    }
}

/// A deterministic pool of `n` random configurations.
pub fn random_pool(space: &ParamSpace, n: usize, seed: u64) -> Vec<Configuration> {
    let mut rng = StdRng::seed_from_u64(seed);
    UniformSampler.sample_n(space, n, &mut rng)
}

/// Replication seeds for an experiment (derived from a base).
pub fn seeds(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| base.wrapping_mul(1000) + i).collect()
}

/// Prints a markdown table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(4)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Writes a JSON result file under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create results/ directory");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{DataScale, Wordcount, Workload};

    #[test]
    fn eval_config_replicates_and_averages() {
        let cluster = ClusterSpec::table1_testbed();
        let job = Wordcount::new().job(DataScale::Tiny);
        let cfg = seamless_core::SeamlessTuner::house_default();
        let s = eval_config(
            &cluster,
            &job,
            &cfg,
            InterferenceModel::none(),
            &seeds(1, 3),
        );
        assert!(s.mean_runtime_s > 0.0 && s.mean_runtime_s < 1000.0);
        assert_eq!(s.crash_frac, 0.0);
        assert!(s.mean_cost_usd > 0.0);
    }

    #[test]
    fn crashing_config_is_penalized() {
        let cluster = ClusterSpec::new(simcluster::catalog::lookup("m5", "large").unwrap(), 2);
        let job = Wordcount::new().job(DataScale::Tiny);
        let cfg = confspace::spark::spark_space()
            .default_configuration()
            .with(confspace::spark::names::EXECUTOR_MEMORY_MB, 32768i64);
        let s = eval_config(
            &cluster,
            &job,
            &cfg,
            InterferenceModel::none(),
            &seeds(2, 2),
        );
        assert_eq!(s.crash_frac, 1.0);
        assert_eq!(s.mean_runtime_s, FAILURE_PENALTY_S);
    }

    #[test]
    fn random_pool_is_deterministic() {
        let space = confspace::spark::spark_space();
        assert_eq!(random_pool(&space, 5, 9), random_pool(&space, 5, 9));
    }

    #[test]
    fn seeds_are_distinct() {
        let s = seeds(7, 5);
        let unique: std::collections::HashSet<u64> = s.iter().copied().collect();
        assert_eq!(unique.len(), 5);
    }
}

/// Evaluates every configuration in `pool` (same job, same replicas) in
/// parallel using scoped threads — the experiment harness's hot loop.
/// Built on [`models::par`], the same fork-join layer the surrogate
/// models use, so worker count follows `SEAMLESS_THREADS`.
pub fn eval_pool(
    cluster: &ClusterSpec,
    job: &JobSpec,
    pool: &[Configuration],
    interference: InterferenceModel,
    seeds: &[u64],
) -> Vec<EvalSummary> {
    models::par::par_map(pool, |cfg| {
        eval_config(cluster, job, cfg, interference, seeds)
    })
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use workloads::{DataScale, Wordcount, Workload};

    #[test]
    fn parallel_matches_sequential() {
        let cluster = ClusterSpec::table1_testbed();
        let job = Wordcount::new().job(DataScale::Tiny);
        let space = confspace::spark::spark_space();
        let pool = random_pool(&space, 12, 3);
        let s = seeds(1, 2);
        let par = eval_pool(&cluster, &job, &pool, InterferenceModel::none(), &s);
        let seq: Vec<EvalSummary> = pool
            .iter()
            .map(|c| eval_config(&cluster, &job, c, InterferenceModel::none(), &s))
            .collect();
        assert_eq!(par, seq);
    }
}
