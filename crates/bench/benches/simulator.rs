//! Criterion micro-benchmarks for the simulator substrate: how many
//! simulated executions per second the experiment harness can sustain,
//! per workload and scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use seamless_core::SeamlessTuner;
use simcluster::{ClusterSpec, Simulator, SparkEnv};
use workloads::{all_workloads, DataScale, Workload};

fn bench_workload_runs(c: &mut Criterion) {
    let cluster = ClusterSpec::table1_testbed();
    let cfg = SeamlessTuner::house_default();
    let env = SparkEnv::resolve(&cluster, &cfg).expect("house default fits");
    let sim = Simulator::dedicated();

    let mut group = c.benchmark_group("simulate_run");
    for w in all_workloads() {
        let job = w.job(DataScale::Small);
        group.bench_with_input(BenchmarkId::new("small", w.name()), &job, |b, job| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sim.run(&env, job, &mut rng).expect("no crash"));
        });
    }
    // One large-scale case: the Table I DS3 regime. A 128 GB input
    // needs a DS3-sized configuration — the house default genuinely
    // driver-OOMs (thousands of tasks on a 1 GB driver) and OOM-loops
    // its skewed join tasks at 64-way parallelism.
    let big_cfg = cfg
        .with(confspace::spark::names::DRIVER_MEMORY_MB, 4096i64)
        .with(confspace::spark::names::EXECUTOR_INSTANCES, 28i64)
        .with(confspace::spark::names::EXECUTOR_MEMORY_MB, 8192i64)
        .with(confspace::spark::names::DEFAULT_PARALLELISM, 512i64);
    let big_env = SparkEnv::resolve(&cluster, &big_cfg).expect("fits");
    let job = workloads::Pagerank::new().job(DataScale::Ds3);
    group.bench_with_input(BenchmarkId::new("ds3", "pagerank"), &job, |b, job| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| sim.run(&big_env, job, &mut rng).expect("no crash"));
    });
    group.finish();
}

fn bench_env_resolve(c: &mut Criterion) {
    let cluster = ClusterSpec::table1_testbed();
    let cfg = SeamlessTuner::house_default();
    c.bench_function("sparkenv_resolve", |b| {
        b.iter(|| SparkEnv::resolve(&cluster, &cfg).expect("fits"));
    });
}

criterion_group! {
    name = benches;
    // Short windows: the suite is run as part of the deliverable
    // pipeline, and microsecond-scale effects are visible well before
    // Criterion's defaults.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_workload_runs, bench_env_resolve
}
criterion_main!(benches);
