//! Micro-benchmarks for the observability layer's hot paths.
//!
//! The contract that makes always-on instrumentation acceptable: with
//! no sink installed, `obs::span` / `obs::instant` must cost under
//! 50 ns per call (a single relaxed atomic load plus an inert guard).
//! The enabled paths are benchmarked alongside for scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn disabled_paths(c: &mut Criterion) {
    // Make sure no sink leaks in from another bench.
    obs::uninstall_all();
    assert!(!obs::is_enabled());

    let mut g = c.benchmark_group("obs_disabled");
    g.bench_function("span", |b| {
        b.iter(|| {
            let guard = obs::span(black_box("bench.noop"));
            black_box(guard.is_recording())
        })
    });
    g.bench_function("span_with_fields", |b| {
        b.iter(|| {
            let guard = obs::span(black_box("bench.noop")).with("idx", 7u64);
            black_box(guard.is_recording())
        })
    });
    g.bench_function("instant", |b| {
        b.iter(|| obs::instant(black_box("bench.marker"), Vec::new()))
    });
    g.finish();
}

fn metrics_paths(c: &mut Criterion) {
    let reg = obs::registry();
    let counter = reg.counter("bench.counter");
    let hist = reg.histogram("bench.hist");

    let mut g = c.benchmark_group("obs_metrics");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("histogram_record", |b| {
        b.iter(|| hist.record_ns(black_box(12_345)))
    });
    g.finish();
}

fn enabled_span(c: &mut Criterion) {
    let sink = obs::MemorySink::new(1 << 16);
    obs::install(sink);
    let mut g = c.benchmark_group("obs_enabled");
    g.bench_function("span_memory_sink", |b| {
        b.iter(|| {
            let guard = obs::span(black_box("bench.live"));
            black_box(guard.is_recording())
        })
    });
    g.finish();
    obs::uninstall_all();
}

criterion_group!(benches, disabled_paths, metrics_paths, enabled_span);
criterion_main!(benches);
