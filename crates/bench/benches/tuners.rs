//! Criterion micro-benchmarks for tuner proposal latency: how long each
//! strategy takes to propose the next configuration given a 50-entry
//! history over the 26-parameter Spark space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use confspace::spark::spark_space;
use confspace::{Sampler, UniformSampler};
use seamless_core::tuner::TunerKind;
use seamless_core::Observation;

fn history(n: usize) -> Vec<Observation> {
    let space = spark_space();
    let mut rng = StdRng::seed_from_u64(5);
    UniformSampler
        .sample_n(&space, n, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, config)| Observation {
            config,
            runtime_s: 50.0 + (i % 17) as f64 * 10.0,
            cost_usd: 0.1,
            metrics: None,
            failure: None,
        })
        .collect()
}

fn bench_propose(c: &mut Criterion) {
    let space = spark_space();
    let hist = history(50);
    let mut group = c.benchmark_group("propose_h50");
    group.sample_size(10);
    for kind in TunerKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            let mut tuner = k.build();
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| tuner.propose(&space, &hist, &mut rng));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: the suite is run as part of the deliverable
    // pipeline, and microsecond-scale effects are visible well before
    // Criterion's defaults.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_propose
}
criterion_main!(benches);
