//! Criterion micro-benchmarks for the surrogate models: GP fit/predict
//! scaling, forest induction, tree prediction, k-medoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use models::{
    ForestParams, GpFitCache, GpRegressor, Kernel, RandomForest, RegressionTree, TreeParams,
};

const MATERN: Kernel = Kernel::Matern52 {
    length_scale: 0.4,
    variance: 1.0,
};

fn synthetic(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|v| {
            v.iter()
                .enumerate()
                .map(|(i, x)| (x - 0.1 * i as f64).powi(2))
                .sum()
        })
        .collect();
    (x, y)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    for n in [25usize, 50, 100] {
        let (x, y) = synthetic(n, 26, 7);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                GpRegressor::fit(
                    &x,
                    &y,
                    Kernel::Matern52 {
                        length_scale: 0.4,
                        variance: 1.0,
                    },
                    1e-3,
                )
                .expect("psd")
            });
        });
    }
    let (x, y) = synthetic(100, 26, 8);
    let gp = GpRegressor::fit(
        &x,
        &y,
        Kernel::Matern52 {
            length_scale: 0.4,
            variance: 1.0,
        },
        1e-3,
    )
    .expect("psd");
    group.bench_function("predict_n100", |b| {
        b.iter(|| gp.predict(&x[3]));
    });
    let qs: Vec<Vec<f64>> = x.iter().take(64).cloned().collect();
    group.bench_function("predict_batch_64_n100", |b| {
        b.iter(|| gp.predict_batch(&qs));
    });
    group.finish();
}

/// The `fit_auto` hyperparameter grid: sequential baseline, parallel,
/// and warm-cache incremental — the tuning-loop hot path this crate's
/// perf work targets.
fn bench_fit_auto(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_auto");
    for n in [32usize, 120] {
        let (x, y) = synthetic(n, 26, 13);
        group.bench_with_input(BenchmarkId::new("threads1", n), &n, |b, _| {
            b.iter(|| GpRegressor::fit_auto_threads(&x, &y, MATERN, 1));
        });
        let threads = models::par::num_threads();
        group.bench_with_input(
            BenchmarkId::new(format!("threads{threads}"), n),
            &n,
            |b, _| {
                b.iter(|| GpRegressor::fit_auto_threads(&x, &y, MATERN, threads));
            },
        );
        group.bench_with_input(BenchmarkId::new("cached_incremental", n), &n, |b, _| {
            // Warm the cache with the n-1 prefix, then measure the
            // one-row incremental update a BO iteration performs.
            b.iter(|| {
                let mut cache = GpFitCache::new();
                cache.fit_auto(&x[..n - 1], &y[..n - 1], MATERN);
                cache.fit_auto(&x, &y, MATERN)
            });
        });
        group.bench_with_input(BenchmarkId::new("cached_hot", n), &n, |b, _| {
            // Steady state: all rows already cached, the fit is pure
            // re-selection (O(n²) solves, no factorization).
            let mut cache = GpFitCache::new();
            cache.fit_auto(&x, &y, MATERN);
            b.iter(|| cache.fit_auto(&x, &y, MATERN));
        });
    }
    group.finish();
}

fn bench_trees(c: &mut Criterion) {
    let (x, y) = synthetic(200, 26, 9);
    let mut group = c.benchmark_group("trees");
    group.bench_function("cart_fit_n200", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng));
    });
    group.bench_function("forest_fit_n200", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| RandomForest::fit(&x, &y, ForestParams::default(), &mut rng));
    });
    group.bench_function("forest_fit_n200_threads1", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| RandomForest::fit_threads(&x, &y, ForestParams::default(), &mut rng, 1));
    });
    let mut rng = StdRng::seed_from_u64(3);
    let forest = RandomForest::fit(&x, &y, ForestParams::default(), &mut rng);
    group.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict(&x[0]));
    });
    group.finish();
}

fn bench_kmedoids(c: &mut Criterion) {
    let (x, _) = synthetic(60, 8, 11);
    c.bench_function("kmedoids_n60_k4", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| models::k_medoids(&x, 4, 10, &mut rng));
    });
}

criterion_group! {
    name = benches;
    // Short windows: the suite is run as part of the deliverable
    // pipeline, and microsecond-scale effects are visible well before
    // Criterion's defaults.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_gp, bench_fit_auto, bench_trees, bench_kmedoids
}
criterion_main!(benches);
