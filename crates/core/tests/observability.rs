//! End-to-end observability: a default [`SeamlessTuner::tune`] run with
//! a memory sink attached must produce a well-formed span tree (stage
//! spans enclosing proposal spans), populate the latency histograms,
//! and export a valid Chrome trace document.
//!
//! Sinks and the metrics registry are process-global, so every test
//! here serializes on one mutex and tears its sinks down before
//! releasing it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use obs::{Event, EventKind};
use seamless_core::{HistoryStore, SeamlessTuner, ServiceConfig, SimEnvironment};
use workloads::{DataScale, Wordcount, Workload};

fn global_obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs one small default-config tune with a memory sink installed and
/// returns the captured events.
fn traced_tune() -> Vec<Event> {
    let sink = obs::MemorySink::new(100_000);
    obs::install(sink.clone());
    obs::registry().clear();

    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(21),
        ServiceConfig {
            stage1_budget: 3,
            // Must exceed BayesOpt's 8-sample warm-up so stage 2
            // actually fits the surrogate (and records its histogram).
            stage2_budget: 12,
            ..ServiceConfig::default()
        },
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("obs-test", "wc", &job, 1);
    assert!(out.best_runtime_s.is_finite());

    obs::uninstall_all();
    sink.snapshot()
}

/// Walks `parent_id` links from `id` to the root, returning the chain
/// of enclosing span names (innermost first).
fn ancestor_names(events: &[Event], mut id: u64) -> Vec<String> {
    let parents: HashMap<u64, (u64, String)> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .map(|e| (e.span_id, (e.parent_id, e.name.clone())))
        .collect();
    let mut chain = Vec::new();
    while id != 0 {
        let Some((parent, name)) = parents.get(&id) else {
            break;
        };
        chain.push(name.clone());
        id = *parent;
    }
    chain
}

#[test]
fn stage_spans_contain_proposal_spans() {
    let _guard = global_obs_lock().lock().unwrap_or_else(|e| e.into_inner());
    let events = traced_tune();
    assert!(!events.is_empty(), "the tune run must emit events");

    let proposal_starts: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart && e.name == "proposal")
        .collect();
    // stage1_budget=3 + stage2_budget-1=3 proposals.
    assert!(
        proposal_starts.len() >= 6,
        "expected >=6 proposal spans, got {}",
        proposal_starts.len()
    );

    let mut inside_stage1 = 0;
    let mut inside_stage2 = 0;
    for p in &proposal_starts {
        let chain = ancestor_names(&events, p.span_id);
        assert_eq!(chain.first().map(String::as_str), Some("proposal"));
        assert!(
            chain.iter().any(|n| n == "tuning_session"),
            "proposal not inside a tuning_session: {chain:?}"
        );
        assert!(
            chain.last().map(String::as_str) == Some("tune"),
            "span tree must be rooted at the tune span: {chain:?}"
        );
        if chain.iter().any(|n| n == "stage1") {
            inside_stage1 += 1;
        }
        if chain.iter().any(|n| n == "stage2") {
            inside_stage2 += 1;
        }
    }
    assert!(inside_stage1 >= 3, "stage1 proposals: {inside_stage1}");
    assert!(inside_stage2 >= 3, "stage2 proposals: {inside_stage2}");

    // Every SpanStart has a matching SpanEnd carrying a duration.
    let starts = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .count();
    let ends: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd)
        .collect();
    assert_eq!(starts, ends.len(), "unbalanced span events");
    assert!(ends
        .iter()
        .all(|e| e.field("dur_ns").and_then(|f| f.as_u64()).is_some()));
}

#[test]
fn latency_histograms_are_populated() {
    let _guard = global_obs_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _ = traced_tune();
    let snap = obs::registry().snapshot();

    for name in ["bo.surrogate_fit_s", "bo.acquisition_s", "sim.step_s"] {
        let h = snap
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(h.1.count > 0, "{name} recorded no samples");
        assert!(h.1.sum_ns > 0, "{name} recorded zero total time");
        assert!(h.1.p50_ns > 0.0, "{name} p50 is zero");
    }
}

#[test]
fn chrome_trace_export_is_valid() {
    let _guard = global_obs_lock().lock().unwrap_or_else(|e| e.into_inner());
    let events = traced_tune();
    let doc = obs::chrome_trace(&events);

    let parsed = obs::json::parse(&doc).expect("chrome trace must be valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    let mut phases = std::collections::BTreeSet::new();
    for te in trace_events {
        let ph = te.get("ph").and_then(|v| v.as_str()).expect("ph");
        phases.insert(ph.to_string());
        assert!(te.get("ts").and_then(|v| v.as_f64()).is_some(), "ts");
        assert!(te.get("name").and_then(|v| v.as_str()).is_some(), "name");
        assert!(te.get("pid").and_then(|v| v.as_u64()).is_some(), "pid");
    }
    assert!(phases.contains("B") && phases.contains("E"), "{phases:?}");

    // B/E balance per (tid, name): a Perfetto-loadable nesting.
    let mut depth: HashMap<(u64, String), i64> = HashMap::new();
    for te in trace_events {
        let ph = te.get("ph").and_then(|v| v.as_str()).unwrap();
        let tid = te.get("tid").and_then(|v| v.as_u64()).unwrap_or(0);
        let name = te.get("name").and_then(|v| v.as_str()).unwrap().to_string();
        match ph {
            "B" => *depth.entry((tid, name)).or_default() += 1,
            "E" => *depth.entry((tid, name)).or_default() -= 1,
            _ => {}
        }
    }
    assert!(
        depth.values().all(|d| *d == 0),
        "unbalanced B/E pairs: {depth:?}"
    );
}
