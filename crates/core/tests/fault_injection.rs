//! Chaos suite: deterministic fault injection driven end-to-end through
//! the resilient executor, the tuning session, and the history store.
//!
//! Every scenario here is reproducible from its seeds alone — the fault
//! stream is a pure function of `(injector seed, global trial index,
//! attempt)` — so a failing run can be replayed exactly. `scripts/ci.sh`
//! re-runs this suite under different `SEAMLESS_THREADS` settings: the
//! outcomes must not change.

use std::sync::Arc;

use confspace::Configuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::objective::{DiscObjective, Objective, SimEnvironment};
use seamless_core::tuner::{TunerKind, TuningOutcome, TuningSession};
use seamless_core::{
    FaultInjector, FaultPlan, HistoryStore, RecordOutcome, RetryPolicy, SeamlessTuner,
    ServiceConfig, TrialExecutor,
};
use simcluster::ClusterSpec;
use workloads::{DataScale, Wordcount, Workload};

fn disc_objective(seed: u64) -> DiscObjective {
    DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(seed),
    )
}

fn chaos_session(chaos_seed: u64) -> TuningOutcome {
    let mut session = TuningSession::new(TunerKind::BayesOpt, 19);
    session.with_resilience(
        RetryPolicy::default(),
        FaultInjector::new(chaos_seed, FaultPlan::chaos()),
    );
    let mut obj = disc_objective(4);
    session.run_batched(&mut obj, 20, 4)
}

/// The headline scenario: the default chaos mix (10% errors, 2% hangs,
/// 5% stragglers, 3% poisoned metrics) leaves the session convergent,
/// and the whole run — proposals, observations, degradation report — is
/// deterministic per chaos seed.
#[test]
fn chaos_session_converges_and_is_deterministic_per_seed() {
    let a = chaos_session(1234);
    let b = chaos_session(1234);

    assert!(a.best.is_some(), "chaos must not prevent convergence");
    let best = a.best.as_ref().unwrap();
    assert!(!best.is_censored(), "the incumbent must be a real run");
    assert!(best.runtime_s.is_finite() && best.runtime_s > 0.0);

    let d = a
        .degradation
        .expect("resilient sessions report degradation");
    assert_eq!(
        d.completed + d.failed + d.timed_out,
        a.history.len(),
        "every trial is accounted for"
    );
    assert!(d.completed > 0);

    // Bitwise reproducibility of the full trace.
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.runtime_s.to_bits(), y.runtime_s.to_bits());
        assert_eq!(x.failure, y.failure);
    }
    assert_eq!(a.degradation, b.degradation);

    // A different chaos seed perturbs a different set of trials.
    let c = chaos_session(4321);
    let same_faults = a.degradation == c.degradation
        && a.history
            .iter()
            .zip(&c.history)
            .all(|(x, y)| x.failure == y.failure);
    assert!(!same_faults, "the chaos seed must drive the fault stream");
}

/// The zero-fault injector is a bitwise no-op: a resilient session with
/// the default policy and `FaultInjector::none` replays the plain
/// batched session exactly — resilience must cost nothing when nothing
/// fails. (Batch 1 non-resilient takes the sequential `run()` path by
/// contract, so the comparison is made where both sides run on the
/// executor; the executor's own batch-1 no-op equivalence is covered in
/// its unit tests.)
#[test]
fn zero_fault_injector_is_bitwise_identical_to_no_injector() {
    for batch in [2usize, 4] {
        let mut plain_session = TuningSession::new(TunerKind::BayesOpt, 77);
        let mut plain_obj = disc_objective(9);
        let plain = plain_session.run_batched(&mut plain_obj, 12, batch);

        let mut noop_session = TuningSession::new(TunerKind::BayesOpt, 77);
        noop_session.with_resilience(RetryPolicy::default(), FaultInjector::none());
        let mut noop_obj = disc_objective(9);
        let noop = noop_session.run_batched(&mut noop_obj, 12, batch);

        assert_eq!(plain.history.len(), noop.history.len(), "batch {batch}");
        for (i, (x, y)) in plain.history.iter().zip(&noop.history).enumerate() {
            assert_eq!(x.config, y.config, "batch {batch}: config {i}");
            assert_eq!(
                x.runtime_s.to_bits(),
                y.runtime_s.to_bits(),
                "batch {batch}: runtime {i}"
            );
            assert_eq!(
                x.cost_usd.to_bits(),
                y.cost_usd.to_bits(),
                "batch {batch}: cost {i}"
            );
            assert_eq!(x.metrics, y.metrics, "batch {batch}: metrics {i}");
        }
        let d = noop.degradation.expect("still reports (clean) degradation");
        assert!(!d.degraded(), "no injector, no degradation");
        assert_eq!(d.retries, 0);
    }
}

/// A 10%-and-up failure rate with retries disabled floods the session
/// with censored observations; it must still converge to a real
/// incumbent and report the damage honestly.
#[test]
fn failures_without_retries_still_converge_with_degradation_report() {
    let mut session = TuningSession::new(TunerKind::BayesOpt, 5);
    session.with_resilience(
        RetryPolicy {
            max_attempts: 1, // no retries: every injected error is terminal
            ..RetryPolicy::default()
        },
        FaultInjector::new(99, FaultPlan::errors(0.25)),
    );
    let mut obj = disc_objective(13);
    let out = session.run_batched(&mut obj, 24, 4);

    let d = out.degradation.expect("degradation report");
    assert!(d.failed > 0, "the fault stream must have landed: {d:?}");
    assert!(d.degraded());
    assert!(out.is_degraded());
    let censored = out.history.iter().filter(|o| o.is_censored()).count();
    assert_eq!(censored, d.failed + d.timed_out);

    let best = out.best.expect("survivors still yield an incumbent");
    assert!(!best.is_censored());
    assert!(best.runtime_s.is_finite() && best.runtime_s > 0.0);
}

/// A permanent straggler (a trial that hangs on every attempt) is
/// reaped by the per-trial deadline, its configuration is quarantined,
/// and the session keeps going.
#[test]
fn permanent_straggler_is_quarantined_and_session_survives() {
    let plan = FaultPlan {
        permanent_straggler: Some(3),
        ..FaultPlan::none()
    };
    let mut session = TuningSession::new(TunerKind::Random, 7);
    session.with_resilience(
        RetryPolicy {
            quarantine_after: 1,
            ..RetryPolicy::default()
        },
        FaultInjector::new(2, plan),
    );
    let mut obj = disc_objective(21);
    let out = session.run_batched(&mut obj, 12, 4);

    let d = out.degradation.expect("degradation report");
    assert_eq!(d.timed_out, 1, "exactly trial #3 hangs: {d:?}");
    assert_eq!(d.quarantined, 1, "one strike quarantines the config");
    assert!(out.best.is_some());
    assert_eq!(
        out.history.iter().filter(|o| o.is_censored()).count(),
        1,
        "only the straggler is censored"
    );
}

/// A round whose failures blow the failure budget ends the session
/// early with a *partial* outcome instead of burning the rest of the
/// budget against a broken substrate.
#[test]
fn exhausted_failure_budget_returns_partial_outcome() {
    let mut session = TuningSession::new(TunerKind::Random, 3);
    session.with_resilience(
        RetryPolicy {
            max_attempts: 1,
            round_failure_budget: 1, // >1 failures per round aborts
            ..RetryPolicy::default()
        },
        FaultInjector::new(8, FaultPlan::errors(1.0)), // everything fails
    );
    let mut obj = disc_objective(17);
    let out = session.run_batched(&mut obj, 40, 8);

    let d = out.degradation.expect("degradation report");
    assert!(d.budget_exhausted, "session must stop early: {d:?}");
    assert!(
        out.history.len() < 40,
        "partial outcome: only {} of 40 trials ran",
        out.history.len()
    );
    assert!(out.best.is_none(), "nothing survived a 100% error rate");
    assert!(out.is_degraded());
}

/// Poisoned telemetry (NaN / negative durations) is rejected at two
/// layers: the executor censors the trial, and the history store
/// refuses any record that slips through — so the provider's history
/// never contains a non-finite or negative runtime.
#[test]
fn poisoned_metrics_never_reach_the_history_store() {
    let store = Arc::new(HistoryStore::new());
    let svc = SeamlessTuner::new(
        store.clone(),
        SimEnvironment::dedicated(23),
        ServiceConfig {
            stage1_budget: 3,
            stage2_budget: 6,
            chaos: Some(FaultInjector::new(31, FaultPlan::poison(0.3))),
            ..ServiceConfig::default()
        },
    );
    let out = svc.tune(
        "chaos-tenant",
        "wc",
        &Wordcount::new().job(DataScale::Tiny),
        1,
    );
    assert!(out.best_runtime_s.is_finite() && out.best_runtime_s > 0.0);
    assert!(!store.is_empty());
    for r in store.snapshot() {
        assert!(
            r.runtime_s.is_finite() && r.runtime_s >= 0.0,
            "poisoned runtime {} reached the store",
            r.runtime_s
        );
        assert!(r.cost_usd.is_finite() && r.cost_usd >= 0.0);
    }
}

/// The shard-write failure path: a record carrying poisoned durations is
/// rejected by `try_insert` (counted on the obs registry), and a JSONL
/// shard containing such a line loads lossily — dropping exactly the
/// poisoned record — while the strict loader refuses the whole shard.
#[test]
fn history_shard_rejects_poisoned_writes() {
    use seamless_core::{ExecutionRecord, WorkloadSignature};
    let store = HistoryStore::new();
    let record = |runtime_s: f64| ExecutionRecord {
        client: "c".into(),
        workload: "w".into(),
        signature: WorkloadSignature::from_metrics(&Default::default()),
        config: Configuration::new().with("p", 1i64),
        runtime_s,
        cost_usd: 0.1,
        seq: 0,
        outcome: RecordOutcome::Ok,
    };
    let rejects_before = obs::registry().counter("history.rejects").get();
    assert!(store.try_insert(record(10.0)).is_ok());
    assert!(store.try_insert(record(f64::NAN)).is_err());
    assert!(store.try_insert(record(-5.0)).is_err());
    assert_eq!(store.len(), 1, "rejected writes must not land");
    assert!(
        obs::registry().counter("history.rejects").get() >= rejects_before + 2,
        "rejections are observable"
    );

    // The surviving shard round-trips; a poisoned line (rebuilt through
    // the value model with a -inf runtime) does not.
    let mut dump = store.to_jsonl().expect("serializes");
    let clean_lines = dump.lines().count();
    let v: serde::Value = serde_json::from_str(dump.lines().next().unwrap()).expect("parses");
    let serde::Value::Object(pairs) = v else {
        panic!("record serializes as an object");
    };
    let bad: Vec<(String, serde::Value)> = pairs
        .into_iter()
        .map(|(k, val)| {
            if k == "runtime_s" {
                (k, serde::Value::F64(f64::NEG_INFINITY))
            } else {
                (k, val)
            }
        })
        .collect();
    dump.push_str(&serde_json::to_string(&serde::Value::Object(bad)).expect("serializes"));
    dump.push('\n');
    let (lossy, skipped) = HistoryStore::from_jsonl_lossy(&dump);
    assert_eq!(lossy.len(), clean_lines);
    assert_eq!(skipped, 1);
    assert!(HistoryStore::from_jsonl(&dump).is_err());
}

/// Fault decisions key off the *global* trial index, so executor
/// outcomes under chaos are invariant to how a round is partitioned
/// into batches (for distinct configurations — quarantine updates are
/// round-granular by design).
#[test]
fn chaos_outcomes_are_invariant_to_batch_partitioning() {
    use confspace::{Sampler, UniformSampler};
    let obj = disc_objective(29);
    let mut rng = StdRng::seed_from_u64(61);
    let configs: Vec<Configuration> = (0..12)
        .map(|_| UniformSampler.sample(obj.space(), &mut rng))
        .collect();
    let injector = FaultInjector::new(314, FaultPlan::chaos());
    let policy = RetryPolicy::default();

    let mut whole = TrialExecutor::new(42).with_resilience(policy, injector);
    let all = whole.run_trials(&obj, &configs);

    let mut split = TrialExecutor::new(42).with_resilience(policy, injector);
    let mut parts = Vec::new();
    for chunk in configs.chunks(4) {
        parts.extend(split.run_trials(&obj, chunk));
    }

    assert_eq!(all, parts, "batch partitioning changed chaos outcomes");
}
