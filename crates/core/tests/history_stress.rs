//! Concurrency stress tests for the sharded [`HistoryStore`]: many
//! tenants inserting, querying, and cursor-reading at once must never
//! lose a record, duplicate a sequence number, or deadlock — the store
//! is the one piece of shared state behind `tune_many`.

use std::sync::Arc;
use std::thread;

use confspace::Configuration;
use seamless_core::{
    ExecutionRecord, HistoryCursor, HistoryStore, RecordOutcome, WorkloadSignature,
};
use simcluster::{ExecMetrics, StageMetrics};

const WRITERS: usize = 8;
const PER_WRITER: usize = 50;

fn sig(cpu: f64) -> WorkloadSignature {
    WorkloadSignature::from_metrics(&ExecMetrics {
        runtime_s: 100.0,
        stages: vec![StageMetrics {
            name: "s".into(),
            cpu_s: cpu,
            io_s: 100.0 - cpu,
            ..Default::default()
        }],
        input_mb: 1000.0,
        shuffle_mb: 100.0,
        ..Default::default()
    })
}

fn record(client: &str, i: usize) -> ExecutionRecord {
    ExecutionRecord {
        client: client.to_owned(),
        workload: "job".to_owned(),
        signature: sig((i % 100) as f64),
        config: Configuration::new().with("p", i as i64),
        runtime_s: 10.0 + i as f64,
        cost_usd: 0.25,
        seq: 0,
        outcome: RecordOutcome::Ok,
    }
}

/// Writers, similarity readers, and a cursor consumer all hammer one
/// store; afterwards every record must be present exactly once with a
/// unique sequence number, and the cursor must have seen each exactly
/// once.
#[test]
fn concurrent_insert_query_and_cursor_reads() {
    let store = Arc::new(HistoryStore::new());
    let total = WRITERS * PER_WRITER;

    let cursor_store = Arc::clone(&store);
    let cursor_thread = thread::spawn(move || {
        let mut cursor = HistoryCursor::new();
        let mut seen: Vec<u64> = Vec::new();
        while seen.len() < total {
            for r in cursor_store.records_since(&mut cursor) {
                seen.push(r.seq);
            }
            thread::yield_now();
        }
        seen
    });

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        handles.push(thread::spawn(move || {
            let client = format!("tenant-{w}");
            for i in 0..PER_WRITER {
                store.insert(record(&client, i));
                // Interleave reads with writes: queries must not block
                // or observe torn state.
                if i % 7 == 0 {
                    let near = store.most_similar(&sig(50.0), 3, Some(&client));
                    for r in &near {
                        assert_ne!(r.client, client, "exclusion filter violated");
                    }
                }
                if i % 11 == 0 {
                    let mine = store.for_workload(&client, "job");
                    assert!(mine.len() <= PER_WRITER);
                    assert!(mine.windows(2).all(|p| p[0].seq < p[1].seq));
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("writer panicked");
    }

    assert_eq!(store.len(), total);

    // Every sequence number 0..total exactly once, snapshot ordered.
    let snapshot = store.snapshot();
    assert_eq!(snapshot.len(), total);
    let seqs: Vec<u64> = snapshot.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (0..total as u64).collect::<Vec<_>>());

    // The concurrent cursor saw each record exactly once.
    let mut cursor_seqs = cursor_thread.join().expect("cursor panicked");
    cursor_seqs.sort_unstable();
    assert_eq!(cursor_seqs, (0..total as u64).collect::<Vec<_>>());
}

/// A cursor opened after the stress run drains everything in one call
/// and then stays empty.
#[test]
fn cursor_after_concurrent_inserts_drains_once() {
    let store = Arc::new(HistoryStore::new());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    store.insert(record(&format!("c{w}"), i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer panicked");
    }

    let mut cursor = HistoryCursor::new();
    let drained = store.records_since(&mut cursor);
    assert_eq!(drained.len(), WRITERS * PER_WRITER);
    assert!(drained.windows(2).all(|p| p[0].seq < p[1].seq));
    assert!(store.records_since(&mut cursor).is_empty());
}

/// The JSONL round-trip must survive a store populated concurrently:
/// sharding is an in-memory layout, not a persistence format.
#[test]
fn jsonl_roundtrip_after_concurrent_population() {
    let store = Arc::new(HistoryStore::new());
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    store.insert(record(&format!("c{w}"), i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer panicked");
    }

    let dump = store.to_jsonl().expect("serializes");
    assert_eq!(dump.lines().count(), WRITERS * PER_WRITER);
    let restored = HistoryStore::from_jsonl(&dump).expect("parses");
    assert_eq!(restored.len(), store.len());
    // Same records in the same global order.
    let a = store.snapshot();
    let b = restored.snapshot();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.seq, y.seq);
        assert_eq!(x.client, y.client);
        assert_eq!(x.runtime_s.to_bits(), y.runtime_s.to_bits());
    }
}
