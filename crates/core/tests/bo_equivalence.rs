//! End-to-end determinism of the optimized BO hot path: the incremental
//! fit cache and the parallel acquisition scoring are pure performance
//! features, so a cached tuner must emit *exactly* the proposal
//! sequence an uncached one does for the same seed.

use confspace::{Configuration, ParamDef, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::tuner::{BayesOpt, Tuner};
use seamless_core::Observation;

fn synth_space() -> ParamSpace {
    ParamSpace::new()
        .with(ParamDef::int("a", 0, 100, 50, ""))
        .with(ParamDef::int("b", 0, 100, 50, ""))
}

fn synth_eval(cfg: &Configuration) -> f64 {
    let a = cfg.int("a") as f64;
    let b = cfg.int("b") as f64;
    10.0 + ((a - 70.0) / 10.0).powi(2) + ((b - 30.0) / 10.0).powi(2)
}

fn proposal_sequence(tuner: &mut BayesOpt, budget: usize, seed: u64) -> Vec<Configuration> {
    let space = synth_space();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = Vec::new();
    let mut proposals = Vec::new();
    for _ in 0..budget {
        let cfg = tuner.propose(&space, &history, &mut rng);
        let runtime_s = synth_eval(&cfg);
        proposals.push(cfg.clone());
        history.push(Observation {
            config: cfg,
            runtime_s,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        });
    }
    proposals
}

#[test]
fn cached_bo_proposes_exactly_what_uncached_bo_does() {
    for seed in [1u64, 9, 42] {
        let mut cached = BayesOpt::new();
        assert!(cached.use_fit_cache, "cache is on by default");
        let mut uncached = BayesOpt::new();
        uncached.use_fit_cache = false;

        let a = proposal_sequence(&mut cached, 28, seed);
        let b = proposal_sequence(&mut uncached, 28, seed);
        assert_eq!(a, b, "proposal sequences diverge for seed {seed}");
    }
}

#[test]
fn reset_clears_the_fit_cache() {
    // After a reset the tuner must behave exactly like a fresh one —
    // no stale factors leaking across sessions.
    let mut reused = BayesOpt::new();
    let _ = proposal_sequence(&mut reused, 15, 5);
    reused.reset();
    let again = proposal_sequence(&mut reused, 15, 5);

    let mut fresh = BayesOpt::new();
    let first = proposal_sequence(&mut fresh, 15, 5);
    assert_eq!(again, first, "reset tuner diverges from a fresh tuner");
}
