//! Live-telemetry integration: scraping the OpenMetrics endpoint
//! while `tune_many` runs, and flight-recorder dumps from chaos runs.
//!
//! Sinks and the metrics registry are process-global, so every test
//! here serializes on one mutex and tears its telemetry down before
//! releasing it (the same discipline as `observability.rs`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use obs::EventKind;
use seamless_core::service::TenantRequest;
use seamless_core::{
    DiscObjective, FaultInjector, FaultPlan, HistoryStore, RetryPolicy, SeamlessTuner,
    ServiceConfig, SimEnvironment, TunerKind, TuningSession,
};
use simcluster::ClusterSpec;
use workloads::{DataScale, Pagerank, Wordcount, Workload};

fn global_obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "seamless_telemetry_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn scrape_during_tune_many_shows_per_tenant_slo() {
    let _guard = global_obs_lock().lock().unwrap_or_else(|e| e.into_inner());
    obs::registry().clear();

    let mut server = obs::MetricsServer::start("127.0.0.1:0").expect("bind scrape endpoint");
    let addr = server.local_addr();

    // Scrape continuously while the multi-tenant batch tunes, from a
    // second thread — the endpoint must never block or wedge the
    // tuner, and every response must be well-formed.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut responses = 0u64;
            while !stop.load(Ordering::Acquire) {
                let response = scrape(addr);
                assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
                assert!(response.ends_with("# EOF\n"), "truncated: {response}");
                responses += 1;
            }
            responses
        })
    };

    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(31),
        ServiceConfig {
            stage1_budget: 3,
            stage2_budget: 5,
            transfer_k: 0,
            ..ServiceConfig::default()
        },
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let requests: Vec<TenantRequest> = ["alice", "bob", "carol"]
        .iter()
        .enumerate()
        .map(|(i, client)| TenantRequest {
            client: (*client).to_string(),
            workload: format!("wc-{client}"),
            job: job.clone(),
            seed: 100 + i as u64,
        })
        .collect();
    let outcomes = svc.tune_many(&requests);
    assert_eq!(outcomes.len(), 3);

    stop.store(true, Ordering::Release);
    let mid_run_scrapes = scraper.join().expect("scraper thread");
    assert!(mid_run_scrapes >= 1, "at least one scrape raced the tune");

    // The final scrape must expose the per-tenant SLO series the
    // tracker published during the batch.
    let response = scrape(addr);
    let body = response.split("\r\n\r\n").nth(1).expect("http body");
    for tenant in ["alice", "bob", "carol"] {
        assert!(
            body.contains(&format!("slo_within_10pct_ratio{{tenant=\"{tenant}\"}}")),
            "missing SLO gauge for {tenant}:\n{body}"
        );
        assert!(
            body.contains(&format!(
                "slo_tuning_cost_cents_total{{tenant=\"{tenant}\"}}"
            )),
            "missing cost counter for {tenant}:\n{body}"
        );
        assert!(
            body.contains(&format!("slo_retune_amortization{{tenant=\"{tenant}\"}}")),
            "missing amortization gauge for {tenant}:\n{body}"
        );
    }
    assert!(body.contains("# TYPE slo_within_10pct_ratio gauge"));
    assert!(body.contains("service_tunings_total 3"), "{body}");

    // Tracker-side stats agree with what the endpoint serves.
    let stats = svc.slo().stats("alice").expect("alice was tuned");
    assert_eq!(stats.tunes, 1);
    assert!(stats.cost_cents > 0.0);

    server.shutdown();
    obs::registry().clear();
}

/// One chaos-heavy resilient session with the flight recorder armed:
/// enough injected errors to blow a tiny round-failure budget, which
/// must leave a `budget_exhausted` dump behind.
fn chaos_session_with_recorder(seed: u64, dump_dir: &PathBuf) -> Vec<PathBuf> {
    let recorder = obs::flightrec::install(8192, dump_dir);
    obs::registry().clear();

    let mut objective = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Pagerank::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(7),
    );
    let mut session = TuningSession::new(TunerKind::Random, 11);
    session.with_resilience(
        RetryPolicy {
            max_attempts: 1,
            round_failure_budget: 1,
            ..RetryPolicy::default()
        },
        FaultInjector::new(seed, FaultPlan::errors(0.9)),
    );
    let outcome = session.run_batched(&mut objective, 12, 4);
    let report = outcome.degradation.expect("resilient session reports");
    assert!(
        report.budget_exhausted,
        "90% errors against a budget of 1 must exhaust it"
    );
    assert!(recorder.dumps() >= 1, "exhaustion must trigger a dump");

    obs::flightrec::uninstall();
    obs::uninstall_all();

    let mut dumps: Vec<PathBuf> = std::fs::read_dir(dump_dir)
        .expect("dump dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    dumps.sort();
    dumps
}

fn span_name_multiset(dump: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(dump).expect("readable dump");
    let events = obs::parse_chrome_trace(&text).expect("dump parses as Chrome trace");
    assert!(!events.is_empty(), "dump must not be empty");
    let mut names: Vec<String> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .map(|e| e.name.clone())
        .collect();
    names.sort();
    names
}

#[test]
fn chaos_flight_dump_parses_and_is_deterministic_per_seed() {
    let _guard = global_obs_lock().lock().unwrap_or_else(|e| e.into_inner());

    let dir_a = temp_dir("chaos_a");
    let dumps_a = chaos_session_with_recorder(77, &dir_a);
    assert!(
        dumps_a
            .iter()
            .any(|p| p.to_string_lossy().contains("budget_exhausted")),
        "expected a budget_exhausted dump, got {dumps_a:?}"
    );
    let names_a = span_name_multiset(&dumps_a[0]);
    assert!(
        names_a.iter().any(|n| n.starts_with("proposal")),
        "chaos trace still contains tuning spans: {names_a:?}"
    );

    // Same chaos seed → the same trial stream fails the same way → the
    // same span-name multiset in the dump (order-insensitive: thread
    // interleaving may differ, the work must not).
    let dir_b = temp_dir("chaos_b");
    let dumps_b = chaos_session_with_recorder(77, &dir_b);
    let names_b = span_name_multiset(&dumps_b[0]);
    assert_eq!(names_a, names_b, "flight dumps must be seed-deterministic");

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
