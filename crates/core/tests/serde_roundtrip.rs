//! Serialization round-trips for the service-level outcome types: a
//! provider persists tuning outcomes (dashboards, audit, replay), so
//! `TuningOutcome` and `ServiceOutcome` must survive JSON.

use std::sync::Arc;

use seamless_core::{
    DiscObjective, HistoryStore, SeamlessTuner, ServiceConfig, ServiceOutcome, SimEnvironment,
    TunerKind, TuningOutcome, TuningSession,
};
use simcluster::ClusterSpec;
use workloads::{DataScale, Wordcount, Workload};

fn small_outcome() -> TuningOutcome {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(3),
    );
    TuningSession::new(TunerKind::Random, 5).run(&mut obj, 3)
}

#[test]
fn tuning_outcome_round_trips_through_json() {
    let out = small_outcome();
    let json = serde_json::to_string(&out).expect("serializes");
    let back: TuningOutcome = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.history.len(), out.history.len());
    assert_eq!(
        back.best.as_ref().map(|o| o.runtime_s),
        out.best.as_ref().map(|o| o.runtime_s)
    );
    assert_eq!(
        back.best_config().map(|c| format!("{c:?}")),
        out.best_config().map(|c| format!("{c:?}"))
    );
}

#[test]
fn service_outcome_round_trips_through_json() {
    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(11),
        ServiceConfig {
            stage1_budget: 2,
            stage2_budget: 3,
            ..ServiceConfig::default()
        },
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("roundtrip", "wc", &job, 1);

    let json = serde_json::to_string(&out).expect("serializes");
    let back: ServiceOutcome = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.best_runtime_s, out.best_runtime_s);
    assert_eq!(back.used_transfer, out.used_transfer);
    assert_eq!(back.stage1.history.len(), out.stage1.history.len());
    assert_eq!(back.stage2.history.len(), out.stage2.history.len());
    assert_eq!(back.cluster, out.cluster);
    assert_eq!(
        format!("{:?}", back.disc_config),
        format!("{:?}", out.disc_config)
    );
    // The restored outcome still computes derived quantities.
    assert!((back.tuning_cost_usd() - out.tuning_cost_usd()).abs() < 1e-12);
}
