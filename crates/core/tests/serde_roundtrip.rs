//! Serialization round-trips for the service-level outcome types: a
//! provider persists tuning outcomes (dashboards, audit, replay), so
//! `TuningOutcome` and `ServiceOutcome` must survive JSON.

use std::sync::Arc;

use seamless_core::{
    DiscObjective, FaultInjector, FaultPlan, HistoryStore, RetryPolicy, SeamlessTuner,
    ServiceConfig, ServiceOutcome, SimEnvironment, TunerKind, TuningOutcome, TuningSession,
};
use simcluster::ClusterSpec;
use workloads::{DataScale, Wordcount, Workload};

fn small_outcome() -> TuningOutcome {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(3),
    );
    TuningSession::new(TunerKind::Random, 5).run(&mut obj, 3)
}

#[test]
fn tuning_outcome_round_trips_through_json() {
    let out = small_outcome();
    let json = serde_json::to_string(&out).expect("serializes");
    let back: TuningOutcome = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.history.len(), out.history.len());
    assert_eq!(
        back.best.as_ref().map(|o| o.runtime_s),
        out.best.as_ref().map(|o| o.runtime_s)
    );
    assert_eq!(
        back.best_config().map(|c| format!("{c:?}")),
        out.best_config().map(|c| format!("{c:?}"))
    );
}

#[test]
fn service_outcome_round_trips_through_json() {
    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(11),
        ServiceConfig {
            stage1_budget: 2,
            stage2_budget: 3,
            ..ServiceConfig::default()
        },
    );
    let job = Wordcount::new().job(DataScale::Tiny);
    let out = svc.tune("roundtrip", "wc", &job, 1);

    let json = serde_json::to_string(&out).expect("serializes");
    let back: ServiceOutcome = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.best_runtime_s, out.best_runtime_s);
    assert_eq!(back.used_transfer, out.used_transfer);
    assert_eq!(back.stage1.history.len(), out.stage1.history.len());
    assert_eq!(back.stage2.history.len(), out.stage2.history.len());
    assert_eq!(back.cluster, out.cluster);
    assert_eq!(
        format!("{:?}", back.disc_config),
        format!("{:?}", out.disc_config)
    );
    // The restored outcome still computes derived quantities.
    assert!((back.tuning_cost_usd() - out.tuning_cost_usd()).abs() < 1e-12);
}

#[test]
fn service_config_with_resilience_round_trips_through_json() {
    let config = ServiceConfig {
        retry: Some(RetryPolicy {
            max_attempts: 5,
            trial_deadline_s: 120.0,
            ..RetryPolicy::default()
        }),
        chaos: Some(FaultInjector::new(42, FaultPlan::chaos())),
        ..ServiceConfig::default()
    };
    let json = serde_json::to_string(&config).expect("serializes");
    let back: ServiceConfig = serde_json::from_str(&json).expect("parses");
    assert_eq!(back, config);
    assert!(back.is_resilient());
    assert_eq!(back.effective_retry().max_attempts, 5);
}

#[test]
fn legacy_service_config_without_resilience_fields_still_parses() {
    // A config serialized before the resilience fields existed: strip
    // `retry` and `chaos` from a current dump and reload — the missing
    // fields must come back as `None` (non-resilient), not an error.
    let json = serde_json::to_string(&ServiceConfig::default()).expect("serializes");
    let v: serde::Value = serde_json::from_str(&json).expect("parses as value");
    let serde::Value::Object(pairs) = v else {
        panic!("config serializes as an object");
    };
    let legacy: Vec<(String, serde::Value)> = pairs
        .into_iter()
        .filter(|(k, _)| k != "retry" && k != "chaos")
        .collect();
    let legacy_json = serde_json::to_string(&serde::Value::Object(legacy)).expect("serializes");
    let back: ServiceConfig = serde_json::from_str(&legacy_json).expect("legacy config parses");
    assert_eq!(back, ServiceConfig::default());
    assert!(!back.is_resilient());
}

#[test]
fn degraded_tuning_outcome_round_trips_through_json() {
    let mut obj = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(3),
    );
    let mut session = TuningSession::new(TunerKind::Random, 5);
    session.with_resilience(
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        FaultInjector::new(7, FaultPlan::errors(0.4)),
    );
    let out = session.run_batched(&mut obj, 8, 4);
    assert!(out.degradation.is_some());

    let json = serde_json::to_string(&out).expect("serializes");
    let back: TuningOutcome = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.degradation, out.degradation);
    assert_eq!(back.is_degraded(), out.is_degraded());
    assert_eq!(back.history.len(), out.history.len());
    for (a, b) in out.history.iter().zip(&back.history) {
        assert_eq!(a.is_censored(), b.is_censored());
    }
}
