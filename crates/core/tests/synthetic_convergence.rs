//! Convergence tests for every strategy on closed-form objectives —
//! cheap, simulator-free checks that each algorithm actually optimizes.

use confspace::{Configuration, ParamDef, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::tuner::{best_so_far, TunerKind};
use seamless_core::Observation;

/// A 4-D continuous space.
fn space() -> ParamSpace {
    let mut s = ParamSpace::new();
    for d in 0..4 {
        s.add(ParamDef::float(&format!("x{d}"), 0.0, 1.0, 0.5, ""));
    }
    s
}

/// Shifted sphere: smooth, unimodal.
fn sphere(c: &Configuration) -> f64 {
    (0..4)
        .map(|d| {
            let x = c.float(&format!("x{d}"));
            let target = 0.2 + 0.15 * d as f64;
            (x - target).powi(2)
        })
        .sum::<f64>()
        * 100.0
        + 1.0
}

/// Step surface: piecewise-constant, tests tree/forest strategies.
fn steps(c: &Configuration) -> f64 {
    let mut v = 10.0;
    if c.float("x0") < 0.5 {
        v -= 4.0;
    }
    if c.float("x1") > 0.3 {
        v -= 3.0;
    }
    if c.float("x2") < 0.7 {
        v -= 2.0;
    }
    v
}

fn run(kind: TunerKind, f: fn(&Configuration) -> f64, budget: usize, seed: u64) -> Vec<f64> {
    let s = space();
    let mut tuner = kind.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history: Vec<Observation> = Vec::new();
    for _ in 0..budget {
        let cfg = tuner.propose(&s, &history, &mut rng);
        assert!(s.validate(&cfg).is_ok(), "{kind} proposed invalid config");
        history.push(Observation {
            runtime_s: f(&cfg),
            config: cfg,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        });
    }
    best_so_far(&history)
}

#[test]
fn every_strategy_improves_on_the_sphere() {
    for kind in TunerKind::all() {
        let mut improved = false;
        for seed in 0..3u64 {
            let curve = run(kind, sphere, 40, seed);
            // Final best must improve on the first evaluation.
            if curve.last().unwrap() < &(curve[0] * 0.8) {
                improved = true;
                break;
            }
        }
        assert!(
            improved,
            "{kind} never improved ≥20% on a smooth bowl in 3 tries"
        );
    }
}

#[test]
fn model_strategies_land_near_the_sphere_optimum() {
    for kind in [
        TunerKind::BayesOpt,
        TunerKind::AdditiveBayesOpt,
        TunerKind::Genetic,
    ] {
        let mut total = 0.0;
        for seed in 0..3u64 {
            total += run(kind, sphere, 50, seed).last().unwrap();
        }
        let mean = total / 3.0;
        // The sphere's evaluation range spans ~1 (optimum) to ~180
        // (worst corner); landing under 3.5 means the strategy closed
        // >98% of that gap.
        assert!(mean < 3.5, "{kind}: mean final best {mean} (optimum 1.0)");
    }
}

#[test]
fn tree_strategies_solve_the_step_surface() {
    for kind in [
        TunerKind::RegressionTree,
        TunerKind::RandomForest,
        TunerKind::Genetic,
    ] {
        let mut total = 0.0;
        for seed in 0..3u64 {
            total += run(kind, steps, 40, seed).last().unwrap();
        }
        let mean = total / 3.0;
        assert!(mean <= 1.5, "{kind}: mean final best {mean} (optimum 1.0)");
    }
}

#[test]
fn bestconfig_contracts_to_the_optimum_region() {
    let curve = run(TunerKind::BestConfig, sphere, 60, 7);
    assert!(
        curve.last().unwrap() < &3.0,
        "bound-and-search should home in: {curve:?}"
    );
}

#[test]
fn curves_are_monotone_for_all_strategies() {
    for kind in TunerKind::all() {
        let curve = run(kind, sphere, 20, 11);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0], "{kind}: best-so-far regressed");
        }
    }
}
