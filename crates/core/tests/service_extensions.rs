//! Crate-level tests for the service's optional features: clustered
//! donor selection (§II-B/AROMA) and goal-aware tuning (§IV-D).

use std::sync::Arc;

use seamless_core::goal::{GoalObjective, TuningGoal};
use seamless_core::service::ServiceConfig;
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{CloudObjective, HistoryStore, Objective, SeamlessTuner, SimEnvironment};
use workloads::{DataScale, KMeans, Pagerank, Wordcount, Workload};

#[test]
fn clustered_donor_service_tunes_after_history_builds_up() {
    let store = Arc::new(HistoryStore::new());
    let svc = SeamlessTuner::new(
        Arc::clone(&store),
        SimEnvironment::dedicated(41),
        ServiceConfig {
            stage1_budget: 3,
            stage2_budget: 6,
            clustered_donors: true,
            ..ServiceConfig::default()
        },
    );
    // Populate the history with three distinct workload families.
    for (i, w) in [
        Box::new(Wordcount::new()) as Box<dyn Workload>,
        Box::new(Pagerank::new()),
        Box::new(KMeans::new()),
    ]
    .into_iter()
    .enumerate()
    {
        let job = w.job(DataScale::Tiny);
        let out = svc.tune(&format!("seed-{i}"), w.name(), &job, 900 + i as u64);
        assert!(out.best_runtime_s.is_finite());
    }
    assert!(store.len() >= 12, "history should have built up");

    // A new tenant running a pagerank variant gets clustered donors.
    let job = Pagerank::with_iterations(4).job(DataScale::Tiny);
    let out = svc.tune("newbie", "pr-variant", &job, 990);
    assert!(out.used_transfer, "clustered donors should be available");
    assert!(out.best_runtime_s.is_finite() && out.best_runtime_s > 0.0);
}

#[test]
fn goal_objective_preserves_true_cost_for_reporting() {
    let job = Wordcount::new().job(DataScale::Tiny);
    let inner = CloudObjective::new(
        job,
        SeamlessTuner::house_default(),
        &SimEnvironment::dedicated(43),
    );
    let mut obj = GoalObjective::new(inner, TuningGoal::MinCost);
    let cfg = obj.space().default_configuration();
    let obs = obj.evaluate(&cfg);
    // The score lives in runtime_s; the true runtime stays in metrics.
    let metrics = obs.metrics.expect("successful run");
    assert!(metrics.runtime_s > 0.0);
    assert!((obs.runtime_s - obs.cost_usd * 1000.0).abs() < 1e-9);
}

#[test]
fn deadline_goal_finds_a_cluster_meeting_the_deadline() {
    let job = Wordcount::new().job(DataScale::Small);
    let deadline = 30.0;
    let inner = CloudObjective::new(
        job,
        SeamlessTuner::house_default(),
        &SimEnvironment::dedicated(44),
    );
    let mut obj = GoalObjective::new(inner, TuningGoal::Deadline { seconds: deadline });
    let mut session = TuningSession::new(TunerKind::BayesOpt, 45);
    let outcome = session.run(&mut obj, 18);
    let best = outcome.best.expect("a feasible cluster exists");
    let true_runtime = best.metrics.expect("successful run").runtime_s;
    assert!(
        true_runtime <= deadline * 1.25,
        "chosen cluster runs in {true_runtime:.1}s against a {deadline:.0}s deadline"
    );
}
