//! The batch-execution equivalence contract: batch size 1 must
//! reproduce the strictly sequential propose→evaluate loop *bitwise*,
//! for every strategy — batching is a performance feature, never a
//! behavioural one. Larger batches must stay valid and deterministic,
//! and the multi-tenant `tune_many` must match sequential `tune` calls
//! whenever tenants cannot observe each other (transfer disabled).

use std::sync::Arc;

use confspace::{Configuration, ParamDef, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seamless_core::objective::{BatchObjective, DiscObjective, Objective, SimEnvironment};
use seamless_core::service::TenantRequest;
use seamless_core::tuner::{TunerKind, TuningSession};
use seamless_core::{
    HistoryStore, Observation, SeamlessTuner, ServiceConfig, TrialExecutor, TrialOutcome,
};
use simcluster::ClusterSpec;
use workloads::{DataScale, Wordcount, Workload};

fn synth_space() -> ParamSpace {
    ParamSpace::new()
        .with(ParamDef::int("a", 0, 100, 50, ""))
        .with(ParamDef::int("b", 0, 100, 50, ""))
}

fn synth_eval(cfg: &Configuration) -> f64 {
    let a = cfg.int("a") as f64;
    let b = cfg.int("b") as f64;
    10.0 + ((a - 70.0) / 10.0).powi(2) + ((b - 30.0) / 10.0).powi(2)
}

fn push(history: &mut Vec<Observation>, cfg: Configuration) {
    history.push(Observation {
        runtime_s: synth_eval(&cfg),
        config: cfg,
        cost_usd: 0.0,
        metrics: None,
        failure: None,
    });
}

#[test]
fn propose_batch_q1_matches_propose_for_every_tuner() {
    let space = synth_space();
    for kind in TunerKind::all() {
        let mut seq_tuner = kind.build();
        let mut batch_tuner = kind.build();
        let mut seq_rng = StdRng::seed_from_u64(17);
        let mut batch_rng = StdRng::seed_from_u64(17);
        let mut seq_hist = Vec::new();
        let mut batch_hist = Vec::new();
        for i in 0..20 {
            let a = seq_tuner.propose(&space, &seq_hist, &mut seq_rng);
            let batch = batch_tuner.propose_batch(&space, &batch_hist, 1, &mut batch_rng);
            assert_eq!(batch.len(), 1, "{}: q=1 batch length", kind.label());
            assert_eq!(
                a,
                batch[0],
                "{}: proposal {i} diverges at q=1",
                kind.label()
            );
            push(&mut seq_hist, a);
            push(&mut batch_hist, batch[0].clone());
        }
    }
}

#[test]
fn propose_batch_q4_is_valid_and_deterministic() {
    let space = synth_space();
    for kind in TunerKind::all() {
        let run = || {
            let mut tuner = kind.build();
            let mut rng = StdRng::seed_from_u64(23);
            let mut history = Vec::new();
            let mut all = Vec::new();
            for _ in 0..4 {
                let batch = tuner.propose_batch(&space, &history, 4, &mut rng);
                assert_eq!(batch.len(), 4, "{}: q=4 batch length", kind.label());
                for cfg in &batch {
                    assert!(
                        space.validate(cfg).is_ok(),
                        "{}: invalid batch proposal {cfg}",
                        kind.label()
                    );
                }
                for cfg in batch {
                    all.push(cfg.clone());
                    push(&mut history, cfg);
                }
            }
            all
        };
        assert_eq!(run(), run(), "{}: q=4 not deterministic", kind.label());
    }
}

fn disc_objective(seed: u64) -> DiscObjective {
    DiscObjective::new(
        ClusterSpec::table1_testbed(),
        Wordcount::new().job(DataScale::Tiny),
        &SimEnvironment::dedicated(seed),
    )
}

#[test]
fn run_batched_at_batch_1_is_bitwise_identical_to_run() {
    for kind in TunerKind::all() {
        let mut seq_session = TuningSession::new(kind, 31);
        let mut seq_obj = disc_objective(7);
        let seq = seq_session.run(&mut seq_obj, 6);

        let mut batch_session = TuningSession::new(kind, 31);
        let mut batch_obj = disc_objective(7);
        let bat = batch_session.run_batched(&mut batch_obj, 6, 1);

        assert_eq!(
            seq.history.len(),
            bat.history.len(),
            "{}: history length",
            kind.label()
        );
        for (i, (a, b)) in seq.history.iter().zip(&bat.history).enumerate() {
            assert_eq!(a.config, b.config, "{}: config {i}", kind.label());
            assert_eq!(
                a.runtime_s.to_bits(),
                b.runtime_s.to_bits(),
                "{}: runtime {i} not bitwise equal",
                kind.label()
            );
            assert_eq!(
                a.cost_usd.to_bits(),
                b.cost_usd.to_bits(),
                "{}: cost {i} not bitwise equal",
                kind.label()
            );
        }
    }
}

#[test]
fn run_batched_larger_batches_are_deterministic_and_fill_the_budget() {
    for batch in [2usize, 4, 8] {
        let run = || {
            let mut session = TuningSession::new(TunerKind::BayesOpt, 43);
            let mut obj = disc_objective(11);
            session.run_batched(&mut obj, 12, batch)
        };
        let a = run();
        let b = run();
        assert_eq!(a.history.len(), 12, "batch {batch}: budget not honoured");
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.config, y.config, "batch {batch}: configs diverge");
            assert_eq!(
                x.runtime_s.to_bits(),
                y.runtime_s.to_bits(),
                "batch {batch}: runtimes diverge"
            );
        }
        assert!(a.best.is_some(), "batch {batch}: no best found");
    }
}

/// A synthetic objective that *panics* on part of its space — the
/// hostile version of a faulty execution substrate.
struct FaultyObjective {
    space: ParamSpace,
}

impl Objective for FaultyObjective {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn evaluate(&mut self, config: &Configuration) -> Observation {
        self.evaluate_trial(config, 0)
    }
}

impl BatchObjective for FaultyObjective {
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation {
        let a = config.int("a");
        assert!(a <= 90, "substrate crash on a > 90");
        Observation {
            runtime_s: synth_eval(config) + (trial_seed % 7) as f64 * 1e-3,
            config: config.clone(),
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        }
    }
}

/// The partition-invariance contract must survive a faulty objective:
/// panicking trials become `Failed` outcomes (never a torn round), and
/// splitting the same configs across differently sized batches yields
/// identical outcomes — including which trials failed.
#[test]
fn faulty_objective_outcomes_are_invariant_to_batch_partitioning() {
    let obj = FaultyObjective {
        space: synth_space(),
    };
    // A fixed mix of healthy and crashing configurations.
    let configs: Vec<Configuration> = (0..12)
        .map(|i| {
            Configuration::new()
                .with("a", (i * 9) as i64) // i = 11 → a = 99 crashes
                .with("b", 30i64)
        })
        .collect();

    let run_split = |chunk: usize| -> Vec<TrialOutcome> {
        let mut ex = TrialExecutor::new(7);
        configs
            .chunks(chunk)
            .flat_map(|c| ex.run_trials(&obj, c))
            .collect()
    };
    let whole = run_split(12);
    assert_eq!(whole, run_split(4));
    assert_eq!(whole, run_split(1));

    let failed: Vec<usize> = whole
        .iter()
        .enumerate()
        .filter(|(_, o)| !o.is_ok())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(failed, vec![11], "exactly the a>90 trial crashes");
    assert!(matches!(
        &whole[11],
        TrialOutcome::Failed { .. } | TrialOutcome::TimedOut { .. }
    ));
    // The healthy trials' observations are untouched by the crash.
    for (i, o) in whole.iter().enumerate() {
        if i != 11 {
            let observation = o.observation().expect("healthy trial");
            assert!(observation.runtime_s.is_finite());
            assert!(observation.failure.is_none());
        }
    }
}

#[test]
fn tune_many_matches_sequential_tunes_when_tenants_are_isolated() {
    // With transfer disabled the store is write-only during tuning, so
    // concurrent tenants cannot influence each other: tune_many must
    // produce exactly the outcomes of sequential tune calls.
    let config = ServiceConfig {
        stage1_budget: 3,
        stage2_budget: 4,
        transfer_k: 0,
        ..ServiceConfig::default()
    };
    let requests: Vec<TenantRequest> = (0..4)
        .map(|i| TenantRequest {
            client: format!("tenant-{i}"),
            workload: "wc".to_owned(),
            job: Wordcount::new().job(DataScale::Tiny),
            seed: 100 + i as u64,
        })
        .collect();

    let seq_svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(3),
        config,
    );
    let seq: Vec<_> = requests
        .iter()
        .map(|r| seq_svc.tune(&r.client, &r.workload, &r.job, r.seed))
        .collect();

    let par_svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(3),
        config,
    );
    let par = par_svc.tune_many(&requests);

    assert_eq!(seq.len(), par.len());
    for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
        assert_eq!(s.cloud_config, p.cloud_config, "tenant {i}: cloud config");
        assert_eq!(s.disc_config, p.disc_config, "tenant {i}: disc config");
        assert_eq!(
            s.best_runtime_s.to_bits(),
            p.best_runtime_s.to_bits(),
            "tenant {i}: best runtime not bitwise equal"
        );
    }
    // Both services witnessed the same number of executions.
    assert_eq!(seq_svc.store().len(), par_svc.store().len());
}

#[test]
fn batched_service_tuning_still_finds_a_working_config() {
    let svc = SeamlessTuner::new(
        Arc::new(HistoryStore::new()),
        SimEnvironment::dedicated(19),
        ServiceConfig {
            stage1_budget: 4,
            stage2_budget: 8,
            batch: 4,
            ..ServiceConfig::default()
        },
    );
    let out = svc.tune("batched", "wc", &Wordcount::new().job(DataScale::Tiny), 2);
    assert!(out.best_runtime_s.is_finite() && out.best_runtime_s > 0.0);
    assert_eq!(out.stage1.history.len(), 4);
    assert_eq!(out.stage2.history.len(), 8);
}
