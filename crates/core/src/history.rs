//! The provider-side multi-tenant execution-history store.
//!
//! §IV-C: "The cloud is a centralized place that is able to keep a
//! record of the different workloads' execution history under different
//! cloud and DISC system configurations, across users. This data can
//! only be leveraged by the cloud provider." This module is that
//! record: a concurrent, append-only store of execution records with
//! signature-based similarity queries.
//!
//! Concurrency layout: records are sharded by tenant hash across
//! [`SHARD_COUNT`] independently locked vectors, so concurrent tenants
//! insert without contending on one global lock. A global atomic hands
//! out sequence numbers. Readers that only need *new* records use a
//! [`HistoryCursor`] ([`HistoryStore::records_since`]) instead of the
//! full-clone [`HistoryStore::snapshot`], which remains as the
//! seq-ordered cold path for persistence and tests.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use confspace::Configuration;

use crate::characterize::WorkloadSignature;

/// Number of tenant-hash shards in the store.
pub const SHARD_COUNT: usize = 16;

/// How the execution behind a record ended. Non-`Ok` records exist for
/// bookkeeping (degradation audits, quarantine forensics) but are
/// excluded from similarity queries and transfer — a censored penalty
/// runtime must never masquerade as a measured one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub enum RecordOutcome {
    /// The run completed and its runtime is a measurement.
    #[default]
    Ok,
    /// The trial was aborted by the execution harness after retries.
    Failed,
    /// The trial exceeded its deadline and was killed.
    TimedOut,
}

// Manual impl (the offline serde shim has no `#[serde(default)]`):
// records persisted before outcomes existed carry no `outcome` key,
// which the derive surfaces as `Null` — treat that as `Ok`.
impl serde::Deserialize for RecordOutcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Null => Ok(RecordOutcome::Ok),
            serde::Value::Str(s) => match s.as_str() {
                "Ok" => Ok(RecordOutcome::Ok),
                "Failed" => Ok(RecordOutcome::Failed),
                "TimedOut" => Ok(RecordOutcome::TimedOut),
                other => Err(serde::DeError::new(format!(
                    "unknown variant `{other}` for RecordOutcome"
                ))),
            },
            other => Err(serde::DeError::new(format!(
                "expected RecordOutcome variant, found {}",
                other.kind()
            ))),
        }
    }
}

/// One execution record as the provider sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Opaque tenant identifier.
    pub client: String,
    /// Opaque workload label (the provider does not know the "name" of
    /// a tenant's job; this stands in for a stable job identity such as
    /// a jar hash — used only for bookkeeping, never for similarity).
    pub workload: String,
    /// Characterization signature of the run.
    pub signature: WorkloadSignature,
    /// The configuration used (cloud and/or DISC parameters).
    pub config: Configuration,
    /// Observed runtime (s).
    pub runtime_s: f64,
    /// Dollar cost of the run.
    pub cost_usd: f64,
    /// Monotonic record sequence number (assigned by the store).
    pub seq: u64,
    /// How the execution ended (pre-outcome records load as `Ok`).
    pub outcome: RecordOutcome,
}

impl ExecutionRecord {
    /// Rejects poisoned numeric fields (NaN, infinite or negative
    /// runtime/cost) so corrupt telemetry never enters the store.
    pub fn validate(&self) -> Result<(), String> {
        if !self.runtime_s.is_finite() || self.runtime_s < 0.0 {
            return Err(format!(
                "rejecting record: poisoned runtime {}",
                self.runtime_s
            ));
        }
        if !self.cost_usd.is_finite() || self.cost_usd < 0.0 {
            return Err(format!("rejecting record: poisoned cost {}", self.cost_usd));
        }
        Ok(())
    }
}

/// An incremental read position over a [`HistoryStore`].
///
/// Tracks one position per shard; [`HistoryStore::records_since`]
/// returns every record appended since the cursor last advanced,
/// exactly once, without cloning the rest of the store.
#[derive(Debug, Clone, Default)]
pub struct HistoryCursor {
    positions: [usize; SHARD_COUNT],
}

impl HistoryCursor {
    /// A cursor positioned at the beginning of the store (the first
    /// [`HistoryStore::records_since`] call sees everything).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A concurrent multi-tenant history store.
#[derive(Debug)]
pub struct HistoryStore {
    shards: [RwLock<Vec<ExecutionRecord>>; SHARD_COUNT],
    next_seq: AtomicU64,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore {
            shards: std::array::from_fn(|_| RwLock::new(Vec::new())),
            next_seq: AtomicU64::new(0),
        }
    }
}

/// FNV-1a over the tenant id — stable across runs so a tenant's records
/// always land in the same shard.
fn shard_of(client: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h as usize) % SHARD_COUNT
}

impl HistoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, assigning its sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the record fails [`ExecutionRecord::validate`] —
    /// callers ingesting untrusted telemetry must use
    /// [`HistoryStore::try_insert`] instead.
    pub fn insert(&self, record: ExecutionRecord) -> u64 {
        self.try_insert(record)
            .expect("caller must validate records before insert")
    }

    /// Appends a record after validating it, assigning its sequence
    /// number. Poisoned records (NaN/negative runtime or cost) are
    /// rejected with a reason and counted under `history.rejects`.
    ///
    /// # Errors
    ///
    /// Returns the validation failure without mutating the store.
    pub fn try_insert(&self, mut record: ExecutionRecord) -> Result<u64, String> {
        let reg = obs::registry();
        if let Err(why) = record.validate() {
            reg.counter("history.rejects").inc();
            return Err(why);
        }
        reg.counter("history.inserts").inc();
        Ok(reg.histogram("history.insert_s").time(|| {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            record.seq = seq;
            self.shards[shard_of(&record.client)].write().push(record);
            reg.gauge("history.records").set((seq + 1) as f64);
            seq
        }))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.next_seq.load(Ordering::Relaxed) as usize
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All records, cloned and ordered by sequence number. This is the
    /// cold path (persistence, offline analysis); concurrent readers on
    /// the tuning hot path should use [`HistoryStore::records_since`].
    pub fn snapshot(&self) -> Vec<ExecutionRecord> {
        let mut all: Vec<ExecutionRecord> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.read().iter().cloned());
        }
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Clones every record appended since `cursor` last advanced and
    /// moves the cursor past them. Each record is returned exactly once
    /// across successive calls; results are ordered by sequence number.
    pub fn records_since(&self, cursor: &mut HistoryCursor) -> Vec<ExecutionRecord> {
        let mut fresh = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let records = shard.read();
            if cursor.positions[i] < records.len() {
                fresh.extend(records[cursor.positions[i]..].iter().cloned());
                cursor.positions[i] = records.len();
            }
        }
        fresh.sort_by_key(|r| r.seq);
        fresh
    }

    /// The `k` records most similar to `query` (by signature distance),
    /// optionally excluding one tenant (so a client's own runs don't
    /// masquerade as transfer).
    ///
    /// Two-pass: score every record under short per-shard read locks,
    /// then clone only the winning `k` (ties broken by sequence number,
    /// matching the old insertion-order stable sort).
    pub fn most_similar(
        &self,
        query: &WorkloadSignature,
        k: usize,
        exclude_client: Option<&str>,
    ) -> Vec<ExecutionRecord> {
        let reg = obs::registry();
        reg.counter("history.queries").inc();
        reg.histogram("history.query_s").time(|| {
            // Pass 1: score (distance, seq, shard, position) without
            // cloning any record.
            let mut scored: Vec<(f64, u64, usize, usize)> = Vec::new();
            for (si, shard) in self.shards.iter().enumerate() {
                let records = shard.read();
                for (pi, r) in records.iter().enumerate() {
                    if exclude_client.is_some_and(|c| r.client == c) {
                        continue;
                    }
                    // Censored runs never transfer: their penalty
                    // runtime is an artifact, not a measurement.
                    if r.outcome != RecordOutcome::Ok {
                        continue;
                    }
                    scored.push((query.distance(&r.signature), r.seq, si, pi));
                }
            }
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            scored.truncate(k);
            // Pass 2: clone the winners. Shards are append-only, so the
            // (shard, position) coordinates remain valid.
            scored
                .into_iter()
                .map(|(_, _, si, pi)| self.shards[si].read()[pi].clone())
                .collect()
        })
    }

    /// The best (fastest) recorded configuration among the `k` most
    /// similar records — the provider's "best configuration found for a
    /// similar workload" (§V-C).
    pub fn best_similar_config(
        &self,
        query: &WorkloadSignature,
        k: usize,
        exclude_client: Option<&str>,
    ) -> Option<ExecutionRecord> {
        self.most_similar(query, k, exclude_client)
            .into_iter()
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
    }

    /// Best known runtime among similar records — the reference point
    /// for "within X% of the runtime of similar workloads ever run in
    /// the cloud" (§IV-D).
    pub fn best_similar_runtime(&self, query: &WorkloadSignature, k: usize) -> Option<f64> {
        self.most_similar(query, k, None)
            .into_iter()
            .map(|r| r.runtime_s)
            .min_by(f64::total_cmp)
    }

    /// All records for one tenant's workload label, in sequence order.
    /// Touches only the tenant's shard.
    pub fn for_workload(&self, client: &str, workload: &str) -> Vec<ExecutionRecord> {
        let mut out: Vec<ExecutionRecord> = self.shards[shard_of(client)]
            .read()
            .iter()
            .filter(|r| r.client == client && r.workload == workload)
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::{ExecMetrics, StageMetrics};

    fn sig(cpu: f64, io: f64) -> WorkloadSignature {
        let m = ExecMetrics {
            runtime_s: 100.0,
            stages: vec![StageMetrics {
                name: "s".into(),
                cpu_s: cpu,
                io_s: io,
                ..Default::default()
            }],
            input_mb: 1000.0,
            shuffle_mb: 100.0,
            ..Default::default()
        };
        WorkloadSignature::from_metrics(&m)
    }

    fn record(client: &str, cpu: f64, runtime: f64) -> ExecutionRecord {
        ExecutionRecord {
            client: client.to_owned(),
            workload: "job".to_owned(),
            signature: sig(cpu, 100.0 - cpu),
            config: Configuration::new().with("p", 1i64),
            runtime_s: runtime,
            cost_usd: 1.0,
            seq: 0,
            outcome: RecordOutcome::Ok,
        }
    }

    #[test]
    fn insert_assigns_sequence_numbers() {
        let store = HistoryStore::new();
        assert_eq!(store.insert(record("a", 50.0, 10.0)), 0);
        assert_eq!(store.insert(record("a", 50.0, 11.0)), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn most_similar_ranks_by_signature_distance() {
        let store = HistoryStore::new();
        store.insert(record("a", 90.0, 10.0)); // cpu-heavy
        store.insert(record("b", 10.0, 10.0)); // io-heavy
        let near_cpu = store.most_similar(&sig(85.0, 15.0), 1, None);
        assert_eq!(near_cpu.len(), 1);
        assert_eq!(near_cpu[0].client, "a");
    }

    #[test]
    fn most_similar_breaks_distance_ties_by_seq() {
        let store = HistoryStore::new();
        // Identical signatures from clients in different shards: the
        // earlier insertion must win, as with the old stable sort.
        store.insert(record("first", 50.0, 1.0));
        store.insert(record("second", 50.0, 2.0));
        let top = store.most_similar(&sig(50.0, 50.0), 1, None);
        assert_eq!(top[0].client, "first");
    }

    #[test]
    fn exclusion_filters_a_tenant() {
        let store = HistoryStore::new();
        store.insert(record("a", 90.0, 10.0));
        store.insert(record("b", 89.0, 20.0));
        let r = store.most_similar(&sig(90.0, 10.0), 5, Some("a"));
        assert!(r.iter().all(|x| x.client == "b"));
    }

    #[test]
    fn best_similar_config_minimizes_runtime() {
        let store = HistoryStore::new();
        store.insert(record("a", 90.0, 30.0));
        store.insert(record("b", 88.0, 12.0));
        store.insert(record("c", 87.0, 25.0));
        let best = store
            .best_similar_config(&sig(89.0, 11.0), 3, None)
            .unwrap();
        assert_eq!(best.runtime_s, 12.0);
        assert_eq!(store.best_similar_runtime(&sig(89.0, 11.0), 3), Some(12.0));
    }

    #[test]
    fn for_workload_scopes_by_client_and_label() {
        let store = HistoryStore::new();
        store.insert(record("a", 50.0, 10.0));
        let mut other = record("a", 50.0, 10.0);
        other.workload = "other".to_owned();
        store.insert(other);
        store.insert(record("b", 50.0, 10.0));
        assert_eq!(store.for_workload("a", "job").len(), 1);
    }

    #[test]
    fn snapshot_is_seq_ordered_across_shards() {
        let store = HistoryStore::new();
        for i in 0..20 {
            store.insert(record(&format!("client-{i}"), 50.0, i as f64));
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 20);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn cursor_sees_each_record_exactly_once() {
        let store = HistoryStore::new();
        let mut cursor = HistoryCursor::new();
        assert!(store.records_since(&mut cursor).is_empty());
        for i in 0..6 {
            store.insert(record(&format!("c{i}"), 40.0, i as f64));
        }
        let first = store.records_since(&mut cursor);
        assert_eq!(first.len(), 6);
        assert!(first.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(store.records_since(&mut cursor).is_empty());
        store.insert(record("late", 60.0, 9.0));
        let second = store.records_since(&mut cursor);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].client, "late");
    }

    #[test]
    fn try_insert_rejects_poisoned_durations() {
        let store = HistoryStore::new();
        let mut nan = record("a", 50.0, 10.0);
        nan.runtime_s = f64::NAN;
        assert!(store.try_insert(nan).is_err());
        let mut neg = record("a", 50.0, 10.0);
        neg.runtime_s = -3.0;
        assert!(store.try_insert(neg).is_err());
        let mut bad_cost = record("a", 50.0, 10.0);
        bad_cost.cost_usd = f64::NEG_INFINITY;
        assert!(store.try_insert(bad_cost).is_err());
        assert!(store.is_empty(), "rejected records must not enter");
        assert!(store.try_insert(record("a", 50.0, 10.0)).is_ok());
        assert_eq!(store.len(), 1);
    }

    #[test]
    #[should_panic(expected = "caller must validate")]
    fn insert_panics_on_poisoned_record() {
        let store = HistoryStore::new();
        let mut bad = record("a", 50.0, 10.0);
        bad.runtime_s = f64::NAN;
        store.insert(bad);
    }

    #[test]
    fn similarity_skips_censored_records() {
        let store = HistoryStore::new();
        let mut aborted = record("a", 90.0, 86_400.0);
        aborted.outcome = RecordOutcome::Failed;
        store.insert(aborted);
        let mut reaped = record("b", 90.0, 86_400.0);
        reaped.outcome = RecordOutcome::TimedOut;
        store.insert(reaped);
        store.insert(record("c", 10.0, 20.0)); // far but healthy
        let top = store.most_similar(&sig(90.0, 10.0), 3, None);
        assert_eq!(top.len(), 1, "censored records must not transfer");
        assert_eq!(top[0].client, "c");
        assert_eq!(store.best_similar_runtime(&sig(90.0, 10.0), 3), Some(20.0));
    }

    #[test]
    fn store_is_shareable_across_threads() {
        use std::sync::Arc;
        let store = Arc::new(HistoryStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    s.insert(record(&format!("t{t}"), 50.0, i as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 100);
        let snap = store.snapshot();
        let mut seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 100, "sequence numbers must be unique");
    }
}

/// JSON-lines persistence: the provider's execution history must
/// outlive any single process (§IV-C: "a centralized place that is
/// able to keep a record … across users").
impl HistoryStore {
    /// Serializes every record as one JSON object per line, in
    /// sequence order.
    ///
    /// # Errors
    ///
    /// Returns any serialization error (I/O is the caller's: write the
    /// returned string wherever the deployment keeps state).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for r in self.snapshot() {
            out.push_str(&serde_json::to_string(&r)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Rebuilds a store from [`HistoryStore::to_jsonl`] output.
    /// Sequence numbers are reassigned in line order.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line's parse error.
    pub fn from_jsonl(data: &str) -> Result<Self, serde_json::Error> {
        let store = HistoryStore::new();
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let record: ExecutionRecord = serde_json::from_str(line)?;
            store
                .try_insert(record)
                .map_err(|why| serde::DeError::new(why).into())
                .map_err(|e: serde_json::Error| e)?;
        }
        Ok(store)
    }

    /// Like [`HistoryStore::from_jsonl`], but skips malformed lines
    /// instead of failing the whole load — one poisoned record must not
    /// take the multi-tenant store down. Returns the store and the
    /// number of lines skipped.
    pub fn from_jsonl_lossy(data: &str) -> (Self, usize) {
        let store = HistoryStore::new();
        let mut skipped = 0usize;
        for line in data.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<ExecutionRecord>(line) {
                // Validation failures (poisoned runtime/cost) count as
                // skipped too — a NaN smuggled into a stored line must
                // not re-enter the live store.
                Ok(record) => match store.try_insert(record) {
                    Ok(_) => {}
                    Err(_) => skipped += 1,
                },
                Err(_) => skipped += 1,
            }
        }
        if skipped > 0 {
            obs::registry()
                .counter("history.load_skipped")
                .add(skipped as u64);
        }
        (store, skipped)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::characterize::WorkloadSignature;
    use simcluster::ExecMetrics;

    fn record(i: usize) -> ExecutionRecord {
        ExecutionRecord {
            client: format!("c{i}"),
            workload: "job".to_owned(),
            signature: WorkloadSignature::from_metrics(&ExecMetrics {
                runtime_s: 10.0 + i as f64,
                input_mb: 100.0,
                ..Default::default()
            }),
            config: Configuration::new().with("p", i as i64),
            runtime_s: 10.0 + i as f64,
            cost_usd: 0.5,
            seq: 0,
            outcome: RecordOutcome::Ok,
        }
    }

    #[test]
    fn jsonl_roundtrip_preserves_records() {
        let store = HistoryStore::new();
        for i in 0..5 {
            store.insert(record(i));
        }
        let dump = store.to_jsonl().expect("serializes");
        assert_eq!(dump.lines().count(), 5);
        let restored = HistoryStore::from_jsonl(&dump).expect("parses");
        assert_eq!(restored.len(), 5);
        assert_eq!(restored.snapshot()[3].client, "c3");
        assert_eq!(restored.snapshot()[3].seq, 3);
    }

    #[test]
    fn blank_lines_are_ignored_and_garbage_rejected() {
        let store = HistoryStore::from_jsonl("\n\n").expect("empty ok");
        assert!(store.is_empty());
        assert!(HistoryStore::from_jsonl("not json\n").is_err());
    }

    #[test]
    fn lossy_load_skips_poisoned_lines() {
        let store = HistoryStore::new();
        for i in 0..3 {
            store.insert(record(i));
        }
        let mut dump = store.to_jsonl().expect("serializes");
        dump.push_str("{\"this is\": \"not a record\"}\n");
        dump.push_str("not even json\n");
        let (restored, skipped) = HistoryStore::from_jsonl_lossy(&dump);
        assert_eq!(restored.len(), 3);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn lossy_load_skips_poisoned_runtimes() {
        let store = HistoryStore::new();
        store.insert(record(0));
        let mut dump = store.to_jsonl().expect("serializes");
        // A line that parses but carries a poisoned runtime must be
        // dropped at ingestion, not stored.
        let line = dump.lines().next().expect("one line");
        let v: serde::Value = serde_json::from_str(line).expect("parses as value");
        let serde::Value::Object(pairs) = v else {
            panic!("record must serialize as an object");
        };
        let poisoned: Vec<(String, serde::Value)> = pairs
            .into_iter()
            .map(|(k, val)| {
                if k == "runtime_s" {
                    (k, serde::Value::F64(-10.0))
                } else {
                    (k, val)
                }
            })
            .collect();
        dump.push_str(&serde_json::to_string(&serde::Value::Object(poisoned)).expect("serializes"));
        dump.push('\n');
        let (restored, skipped) = HistoryStore::from_jsonl_lossy(&dump);
        assert_eq!(restored.len(), 1);
        assert_eq!(skipped, 1);
        // The strict loader refuses the whole file instead.
        assert!(HistoryStore::from_jsonl(&dump).is_err());
    }

    #[test]
    fn records_without_outcome_field_load_as_ok() {
        let store = HistoryStore::new();
        store.insert(record(0));
        let dump = store.to_jsonl().expect("serializes");
        // Strip the outcome key to simulate a pre-outcome JSONL file.
        let line = dump.lines().next().expect("one line");
        let v: serde::Value = serde_json::from_str(line).expect("parses as value");
        let serde::Value::Object(pairs) = v else {
            panic!("record must serialize as an object");
        };
        let stripped: Vec<(String, serde::Value)> =
            pairs.into_iter().filter(|(k, _)| k != "outcome").collect();
        let legacy = serde_json::to_string(&serde::Value::Object(stripped)).expect("serializes");
        assert!(!legacy.contains("outcome"));
        let restored = HistoryStore::from_jsonl(&legacy).expect("legacy line loads");
        assert_eq!(restored.snapshot()[0].outcome, RecordOutcome::Ok);
    }

    #[test]
    fn outcome_tags_roundtrip() {
        let store = HistoryStore::new();
        let mut r = record(0);
        r.outcome = RecordOutcome::TimedOut;
        store.insert(r);
        let dump = store.to_jsonl().expect("serializes");
        let restored = HistoryStore::from_jsonl(&dump).expect("parses");
        assert_eq!(restored.snapshot()[0].outcome, RecordOutcome::TimedOut);
    }

    #[test]
    fn restored_store_answers_similarity_queries() {
        let store = HistoryStore::new();
        for i in 0..4 {
            store.insert(record(i));
        }
        let dump = store.to_jsonl().expect("serializes");
        let restored = HistoryStore::from_jsonl(&dump).expect("parses");
        let q = record(0).signature;
        assert_eq!(restored.most_similar(&q, 2, None).len(), 2);
    }
}
