//! The seamless tuning service: Fig. 1's two-stage pipeline plus
//! managed execution with automatic re-tuning.
//!
//! [`SeamlessTuner`] is what the paper argues the *cloud provider*
//! should operate (§IV): given a submitted job it (1) characterizes the
//! workload with one probe run, (2) tunes the cloud layer (instance
//! family/size/count), (3) tunes the DISC layer on the chosen cluster —
//! warm-started from similar tenants' history (§V-B) — and records
//! every execution in the provider-side history store. [`ManagedWorkload`]
//! then runs the tuned workload on behalf of the tenant, watching for
//! drift and re-tuning automatically (§V-D).

use std::sync::Arc;

use confspace::spark::names as sp;
use confspace::Configuration;
use serde::{Deserialize, Serialize};

use simcluster::{ClusterSpec, JobSpec};

use crate::characterize::WorkloadSignature;
use crate::executor::RetryPolicy;
use crate::faults::FaultInjector;
use crate::history::{ExecutionRecord, HistoryStore, RecordOutcome};
use crate::objective::{CloudObjective, DiscObjective, Objective, Observation, SimEnvironment};
use crate::retune::{RetuneMonitor, RetunePolicy, RetuneReason};
use crate::slo::{AmortizationLedger, SloReport, SloTracker};
use crate::transfer::{donated_observations, TransferTuner};
use crate::tuner::{TunerKind, TuningOutcome, TuningSession};

/// Service-level tuning settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Strategy used in both stages.
    pub tuner: TunerKind,
    /// Evaluation budget for stage 1 (cloud configuration).
    pub stage1_budget: usize,
    /// Evaluation budget for stage 2 (DISC configuration).
    pub stage2_budget: usize,
    /// Donated observations pulled from similar tenants (0 disables
    /// transfer). Keep small: a handful of high-quality donations adds
    /// a strong incumbent probe without suppressing the strategy's own
    /// exploration — large donations are where negative transfer
    /// (§V-B) creeps in.
    pub transfer_k: usize,
    /// Use AROMA-style k-medoids clusters of the history for donor
    /// selection instead of flat nearest-neighbour search (§II-B);
    /// falls back to flat search while the history is small.
    pub clustered_donors: bool,
    /// Re-tuning trigger for managed execution.
    pub retune_policy: RetunePolicy,
    /// Budget for each automatic re-tuning session.
    pub retune_budget: usize,
    /// Trials proposed and evaluated per round in each tuning stage.
    /// 1 (the default) reproduces the strictly sequential
    /// propose→evaluate loop bitwise; larger values amortize one
    /// surrogate fit across the whole round and let the
    /// [`crate::executor::TrialExecutor`] evaluate the round
    /// concurrently.
    pub batch: usize,
    /// Retry/backoff policy for resilient trial execution. `Some`
    /// routes every tuning session through the resilient executor path
    /// (retries, per-trial deadlines, quarantine); `None` keeps the
    /// plain fast path unless `chaos` is set, in which case
    /// [`RetryPolicy::default`] applies.
    pub retry: Option<RetryPolicy>,
    /// Deterministic fault injection for chaos testing. `Some` forces
    /// resilient execution and perturbs trials with the injector's
    /// seeded fault stream (reseeded per stage and per tenant).
    pub chaos: Option<FaultInjector>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            tuner: TunerKind::BayesOpt,
            stage1_budget: 10,
            stage2_budget: 20,
            transfer_k: 3,
            clustered_donors: false,
            retune_policy: RetunePolicy::PageHinkley,
            retune_budget: 10,
            batch: 1,
            retry: None,
            chaos: None,
        }
    }
}

impl ServiceConfig {
    /// Whether tuning sessions run through the resilient executor path.
    pub fn is_resilient(&self) -> bool {
        self.retry.is_some() || self.chaos.is_some()
    }

    /// The effective retry policy (defaults apply when only chaos is
    /// configured).
    pub fn effective_retry(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// The stage injector: the configured chaos injector reseeded with
    /// `salt`, or the no-op injector.
    fn injector(&self, salt: u64) -> FaultInjector {
        self.chaos
            .map(|inj| inj.reseed(salt))
            .unwrap_or_else(FaultInjector::none)
    }
}

/// The outcome of one end-to-end service tuning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceOutcome {
    /// Chosen cloud configuration (stage 1).
    pub cloud_config: Configuration,
    /// The provisioned cluster it denotes.
    pub cluster: ClusterSpec,
    /// Chosen DISC configuration (stage 2).
    pub disc_config: Configuration,
    /// Best observed runtime under the final configuration (s).
    pub best_runtime_s: f64,
    /// Stage-1 tuning trace.
    pub stage1: TuningOutcome,
    /// Stage-2 tuning trace.
    pub stage2: TuningOutcome,
    /// Whether cross-tenant transfer seeded stage 2.
    pub used_transfer: bool,
    /// The workload's signature from the probe run.
    pub signature: WorkloadSignature,
    /// Effectiveness of this tune (§IV-D/§V-C): tuned runtime against
    /// the optimum proxy, the best similar tenant's runtime, and the
    /// probe's house-default runtime.
    pub slo: SloReport,
}

impl ServiceOutcome {
    /// Total dollars spent tuning (both stages).
    pub fn tuning_cost_usd(&self) -> f64 {
        self.stage1.total_cost_usd() + self.stage2.total_cost_usd()
    }

    /// Builds the §IV-C amortization ledger against a baseline run cost.
    pub fn ledger(&self, baseline_run_cost_usd: f64) -> AmortizationLedger {
        let tuned_run_cost = self
            .stage2
            .best
            .as_ref()
            .map_or(baseline_run_cost_usd, |o| o.cost_usd);
        AmortizationLedger {
            tuning_cost_usd: self.tuning_cost_usd(),
            baseline_run_cost_usd,
            tuned_run_cost_usd: tuned_run_cost,
        }
    }
}

/// One tenant's request for [`SeamlessTuner::tune_many`].
#[derive(Debug, Clone)]
pub struct TenantRequest {
    /// Opaque tenant identifier.
    pub client: String,
    /// The tenant's workload label.
    pub workload: String,
    /// The job to tune.
    pub job: JobSpec,
    /// Per-tenant tuning seed.
    pub seed: u64,
}

/// The provider-operated tuning service.
pub struct SeamlessTuner {
    store: Arc<HistoryStore>,
    env: SimEnvironment,
    config: ServiceConfig,
    cluster_index: crate::transfer::ClusterIndex,
    slo: SloTracker,
}

impl SeamlessTuner {
    /// Creates the service around a shared history store.
    pub fn new(store: Arc<HistoryStore>, env: SimEnvironment, config: ServiceConfig) -> Self {
        SeamlessTuner {
            store,
            env,
            config,
            // 3 clusters once a dozen records exist — the same gate the
            // per-tune snapshot clustering used.
            cluster_index: crate::transfer::ClusterIndex::new(3, 12),
            slo: SloTracker::default(),
        }
    }

    /// The service's continuous per-tenant SLO/cost accounting.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// The provider's conservative "house default" DISC configuration —
    /// what the probe run and stage 1 execute with. Unlike Spark's
    /// shipped defaults (which crash memory-hungry workloads), a
    /// provider would deploy a layout sized to the cluster.
    pub fn house_default() -> Configuration {
        confspace::spark::spark_space()
            .default_configuration()
            .with(sp::EXECUTOR_INSTANCES, 8i64)
            .with(sp::EXECUTOR_CORES, 2i64)
            .with(sp::EXECUTOR_MEMORY_MB, 6144i64)
            .with(sp::DEFAULT_PARALLELISM, 64i64)
            .with(sp::SHUFFLE_PARTITIONS, 64i64)
    }

    /// Shared access to the history store.
    pub fn store(&self) -> &Arc<HistoryStore> {
        &self.store
    }

    /// End-to-end tuning of `job` for tenant `client` (Fig. 1).
    pub fn tune(&self, client: &str, workload: &str, job: &JobSpec, seed: u64) -> ServiceOutcome {
        let _tune = obs::span("tune")
            .with("client", client)
            .with("workload", workload);
        obs::registry().counter("service.tunings").inc();

        // --- Probe: one run on the house defaults to characterize. ---
        let probe_span = obs::span("probe");
        let probe_cluster = ClusterSpec::table1_testbed();
        let mut probe_obj = DiscObjective::new(
            probe_cluster,
            job.clone(),
            &SimEnvironment {
                seed: self.env.seed ^ seed ^ 0x9e37,
                ..self.env.clone()
            },
        );
        let probe = probe_obj.evaluate(&Self::house_default());
        let signature = probe
            .metrics
            .as_ref()
            .map(WorkloadSignature::from_metrics)
            .unwrap_or_else(|| WorkloadSignature::from_metrics(&Default::default()));
        drop(probe_span);

        // --- Stage 1: cloud configuration. ---
        let stage1_span = obs::span("stage1").with("budget", self.config.stage1_budget);
        let mut cloud_obj = CloudObjective::new(
            job.clone(),
            Self::house_default(),
            &SimEnvironment {
                seed: self.env.seed ^ seed ^ 0x51,
                ..self.env.clone()
            },
        );
        let mut stage1 = TuningSession::new(self.config.tuner, self.env.seed ^ seed ^ 0xA1);
        if self.config.is_resilient() {
            stage1.with_resilience(
                self.config.effective_retry(),
                self.config.injector(seed ^ 0xFA51),
            );
        }
        let s1 = stage1.run_batched(&mut cloud_obj, self.config.stage1_budget, self.config.batch);
        let cloud_config = s1
            .best_config()
            .cloned()
            .unwrap_or_else(|| confspace::cloud::cloud_space().default_configuration());
        let cluster = ClusterSpec::from_config(&cloud_config)
            .unwrap_or_else(|_| ClusterSpec::table1_testbed());
        drop(stage1_span);

        // --- Stage 2: DISC configuration on the chosen cluster, ---
        // --- warm-started from similar tenants.                 ---
        let transfer_span = obs::span("transfer").with("k", self.config.transfer_k);
        let disc_space = confspace::spark::spark_space();
        let raw_donations: Vec<Observation> = if self.config.transfer_k == 0 {
            Vec::new()
        } else if self.config.clustered_donors && self.store.len() >= 12 {
            // AROMA-style: donate from the signature's k-medoids
            // cluster, maintained incrementally across tunes (cursor
            // reads + periodic rebuild) instead of re-clustering a full
            // store snapshot per tenant.
            crate::transfer::records_to_observations(self.cluster_index.donors_for(
                &self.store,
                &signature,
                self.config.transfer_k * 2,
                self.env.seed ^ seed ^ 0xC1,
            ))
        } else {
            donated_observations(
                &self.store,
                &signature,
                self.config.transfer_k * 2,
                Some(client),
                probe.runtime_s,
            )
        };
        let donated: Vec<Observation> = raw_donations
            .into_iter()
            // The provider's history mixes cloud-layer and DISC-layer
            // records; only DISC configurations transfer into stage 2.
            .filter(|o| disc_space.validate(&o.config).is_ok())
            .take(self.config.transfer_k)
            .collect();
        let used_transfer = !donated.is_empty();
        drop(
            transfer_span
                .with("donated", donated.len())
                .with("used", used_transfer),
        );
        if used_transfer {
            obs::registry().counter("service.transfers").inc();
        }
        let stage2_span = obs::span("stage2")
            .with("budget", self.config.stage2_budget)
            .with("transfer", used_transfer);
        let mut disc_obj = DiscObjective::new(
            cluster.clone(),
            job.clone(),
            &SimEnvironment {
                seed: self.env.seed ^ seed ^ 0x52,
                ..self.env.clone()
            },
        );
        let mut stage2 = if used_transfer {
            TuningSession::with_tuner(
                Box::new(TransferTuner::new(self.config.tuner.build(), donated)),
                self.env.seed ^ seed ^ 0xB2,
            )
        } else {
            TuningSession::new(self.config.tuner, seed ^ 0xB2)
        };
        if self.config.is_resilient() {
            stage2.with_resilience(
                self.config.effective_retry(),
                self.config.injector(seed ^ 0xFA52),
            );
        }
        let mut s2 = stage2.run_batched(
            &mut disc_obj,
            self.config.stage2_budget.saturating_sub(1),
            self.config.batch,
        );
        // The provider's house default is always a candidate: the
        // service never deploys a configuration worse than its own
        // baseline (one evaluation charged to the stage-2 budget).
        let incumbent = {
            let _incumbent = obs::span("incumbent");
            disc_obj.evaluate(&Self::house_default())
        };
        s2.history.push(incumbent);
        s2.best = crate::tuner::best_observation(&s2.history).cloned();
        let disc_config = s2
            .best_config()
            .cloned()
            .unwrap_or_else(Self::house_default);
        drop(stage2_span);

        if s1.is_degraded() || s2.is_degraded() {
            obs::registry().counter("service.degraded_sessions").inc();
            // Post-mortem for the on-call: whatever the flight
            // recorder still holds from this degraded session.
            obs::flightrec::trigger_dump("degraded_session");
        }

        // The §IV-D reference point must predate this tune's records:
        // "the best runtime of similar workloads ever seen" means
        // *other* tenants and earlier sessions, not the history we are
        // about to insert.
        let best_similar = self.store.best_similar_runtime(&signature, 5);

        // --- Record everything the provider witnessed. ---
        self.record(client, workload, &probe, &signature);
        for o in s1.history.iter().chain(s2.history.iter()) {
            self.record(client, workload, o, &signature);
        }

        let best_runtime_s = s2.best_runtime_s();
        let slo = SloReport {
            tuned_runtime_s: best_runtime_s,
            optimal_runtime_s: Some(match best_similar {
                Some(b) => b.min(best_runtime_s),
                None => best_runtime_s,
            }),
            best_similar_runtime_s: best_similar,
            default_runtime_s: Some(probe.runtime_s),
        };
        let outcome = ServiceOutcome {
            cloud_config,
            cluster,
            disc_config,
            best_runtime_s,
            stage1: s1,
            stage2: s2,
            used_transfer,
            signature,
            slo,
        };

        // Continuous accounting: fold this tune into the tenant's
        // rolling SLO window and refresh the scrape-visible series.
        // Read-only with respect to tuning decisions, so session
        // results are bitwise-unchanged by its presence.
        self.slo
            .observe(client, &slo, &outcome.ledger(probe.cost_usd));
        self.slo.publish(obs::registry());

        outcome
    }

    /// Tunes many tenants concurrently over the shared (sharded)
    /// history store — the provider-side multi-tenant service of §IV.
    /// Outcomes are returned in request order. Each tenant's session is
    /// driven entirely by its own seed, so results match running the
    /// same requests sequentially whenever tenants do not read each
    /// other's history mid-flight (`transfer_k == 0`, or disjoint
    /// signatures).
    pub fn tune_many(&self, requests: &[TenantRequest]) -> Vec<ServiceOutcome> {
        let _span = obs::span("tune_many").with("tenants", requests.len());
        let reg = obs::registry();
        reg.gauge("service.tenants_inflight")
            .set(requests.len() as f64);
        let outcomes = models::par::par_map(requests, |r| {
            reg.histogram(&format!("service.tenant.{}.tune_s", r.client))
                .time(|| self.tune(&r.client, &r.workload, &r.job, r.seed))
        });
        reg.gauge("service.tenants_inflight").set(0.0);
        outcomes
    }

    fn record(
        &self,
        client: &str,
        workload: &str,
        obs: &Observation,
        fallback: &WorkloadSignature,
    ) {
        let outcome = match &obs.failure {
            Some(simcluster::FailureKind::TrialTimeout) => RecordOutcome::TimedOut,
            Some(simcluster::FailureKind::TrialAborted { .. }) => RecordOutcome::Failed,
            _ => RecordOutcome::Ok,
        };
        let signature = match &obs.metrics {
            Some(metrics) => WorkloadSignature::from_metrics(metrics),
            // Censored runs still enter the history — tagged so
            // similarity search and transfer skip them — under the
            // tenant's probe signature (the run itself produced none).
            None if outcome != RecordOutcome::Ok => fallback.clone(),
            None => return, // crashed runs carry no characterization signal
        };
        // Poisoned observations are rejected at the store boundary
        // (counted by `history.rejects`) instead of contaminating
        // transfer; nothing to do here beyond not inserting.
        let _ = self.store.try_insert(ExecutionRecord {
            client: client.to_owned(),
            workload: workload.to_owned(),
            signature,
            config: obs.config.clone(),
            runtime_s: obs.runtime_s,
            cost_usd: obs.cost_usd,
            seq: 0,
            outcome,
        });
    }
}

/// A workload under managed execution: the provider runs it with the
/// tuned configuration, watches for drift, and re-tunes automatically.
pub struct ManagedWorkload {
    objective: DiscObjective,
    config: Configuration,
    monitor: RetuneMonitor,
    service: ServiceConfig,
    seed: u64,
    /// Completed automatic re-tunings (reason, at-run-index).
    pub retunings: Vec<(RetuneReason, usize)>,
    runs: usize,
}

impl ManagedWorkload {
    /// Starts managed execution of `job` on `cluster` with `config`.
    pub fn new(
        cluster: ClusterSpec,
        job: JobSpec,
        config: Configuration,
        service: ServiceConfig,
        env: &SimEnvironment,
        seed: u64,
    ) -> Self {
        ManagedWorkload {
            objective: DiscObjective::new(cluster, job, env),
            config,
            monitor: RetuneMonitor::new(service.retune_policy),
            service,
            seed,
            retunings: Vec::new(),
            runs: 0,
        }
    }

    /// Updates the job (e.g. the tenant's input grew).
    pub fn set_job(&mut self, job: JobSpec) {
        self.objective.set_job(job);
    }

    /// The currently-deployed configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Executes one production run; re-tunes first when the monitor
    /// fired on the *previous* run. Returns the production observation
    /// and the number of tuning executions spent before it (0 normally).
    pub fn run_once(&mut self) -> (Observation, usize) {
        self.runs += 1;
        let _run = obs::span("managed_run").with("run", self.runs);
        let observed = self.objective.evaluate(&self.config);
        let mut tuning_spent = 0;
        if let Some(reason) = self.monitor.observe(&observed) {
            self.retunings.push((reason, self.runs));
            let _retune = obs::span("retune")
                .with("reason", format!("{reason:?}"))
                .with("run", self.runs);
            obs::registry().counter("service.retunes").inc();
            let mut session =
                TuningSession::new(self.service.tuner, self.seed ^ (self.runs as u64) << 8);
            let outcome = if self.service.is_resilient() {
                session.with_resilience(
                    self.service.effective_retry(),
                    self.service.injector(self.seed ^ 0x4E7),
                );
                session.run_batched(&mut self.objective, self.service.retune_budget, 1)
            } else {
                session.run(&mut self.objective, self.service.retune_budget)
            };
            tuning_spent = outcome.history.len();
            if let Some(best) = outcome.best_config() {
                // Only adopt the re-tuned configuration if it beats the
                // incumbent's latest observation.
                if outcome.best_runtime_s() < observed.runtime_s {
                    self.config = best.clone();
                }
            }
            self.monitor.reset();
        }
        (observed, tuning_spent)
    }

    /// Total production runs so far.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{DataScale, Pagerank, Wordcount, Workload};

    fn service() -> SeamlessTuner {
        SeamlessTuner::new(
            Arc::new(HistoryStore::new()),
            SimEnvironment::dedicated(11),
            ServiceConfig {
                stage1_budget: 4,
                stage2_budget: 6,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn end_to_end_tuning_produces_a_working_config() {
        let svc = service();
        let job = Wordcount::new().job(DataScale::Tiny);
        let out = svc.tune("alice", "wc", &job, 1);
        assert!(out.best_runtime_s.is_finite());
        assert!(out.best_runtime_s > 0.0);
        assert_eq!(out.stage1.history.len(), 4);
        assert_eq!(out.stage2.history.len(), 6);
        assert!(!svc.store().is_empty(), "provider recorded the executions");
    }

    #[test]
    fn second_tenant_benefits_from_transfer() {
        let svc = service();
        let job = Wordcount::new().job(DataScale::Tiny);
        let first = svc.tune("alice", "wc", &job, 1);
        assert!(!first.used_transfer, "empty store: no donors");
        let second = svc.tune("bob", "wc2", &job, 2);
        assert!(second.used_transfer, "alice's runs should donate");
    }

    #[test]
    fn tuned_beats_house_default_on_pagerank() {
        let svc = SeamlessTuner::new(
            Arc::new(HistoryStore::new()),
            SimEnvironment::dedicated(13),
            ServiceConfig {
                stage1_budget: 6,
                stage2_budget: 15,
                ..ServiceConfig::default()
            },
        );
        let job = Pagerank::new().job(DataScale::Tiny);
        let out = svc.tune("carol", "pr", &job, 3);
        // Compare to the house default on the *same* cluster.
        let mut base_obj =
            DiscObjective::new(out.cluster.clone(), job, &SimEnvironment::dedicated(99));
        let base = base_obj.evaluate(&SeamlessTuner::house_default());
        assert!(
            out.best_runtime_s <= base.runtime_s * 1.1,
            "tuned {} vs default {}",
            out.best_runtime_s,
            base.runtime_s
        );
    }

    #[test]
    fn managed_workload_retunes_on_input_growth() {
        let cfg = ServiceConfig {
            retune_budget: 5,
            ..ServiceConfig::default()
        };
        let mut managed = ManagedWorkload::new(
            ClusterSpec::table1_testbed(),
            Pagerank::new().job(DataScale::Tiny),
            SeamlessTuner::house_default(),
            cfg,
            &SimEnvironment::dedicated(17),
            5,
        );
        for _ in 0..6 {
            let (obs, spent) = managed.run_once();
            assert!(obs.is_ok());
            assert_eq!(spent, 0, "no drift yet");
        }
        // The tenant's data grows 16x: the monitor must notice.
        managed.set_job(Pagerank::new().job(DataScale::Ds1));
        let mut retuned = false;
        for _ in 0..8 {
            let (_, spent) = managed.run_once();
            if spent > 0 {
                retuned = true;
                break;
            }
        }
        assert!(
            retuned,
            "managed execution should re-tune after input growth"
        );
        assert!(!managed.retunings.is_empty());
    }

    #[test]
    fn ledger_reflects_tuning_spend() {
        let svc = service();
        let job = Wordcount::new().job(DataScale::Tiny);
        let out = svc.tune("dave", "wc", &job, 7);
        let ledger = out.ledger(1.0);
        assert!(ledger.tuning_cost_usd > 0.0);
        assert_eq!(ledger.baseline_run_cost_usd, 1.0);
    }
}
