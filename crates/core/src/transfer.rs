//! Transfer learning across workloads (§V-B): warm-start a tuner with
//! observations donated from similar workloads in the provider's
//! history, guarded against *negative transfer* (Ge et al. \[17\]).
//!
//! The donated observations are rescaled to the target's runtime
//! magnitude (the correlation between configuration and performance is
//! what transfers, not absolute runtimes) and are revalidated once real
//! observations accumulate: if the donated ranking disagrees with the
//! observed ranking, the donation is dropped.

use confspace::{Configuration, ParamSpace};
use rand::RngCore;

use crate::history::{ExecutionRecord, HistoryStore};
use crate::objective::Observation;
use crate::tuner::Tuner;
use crate::WorkloadSignature;

/// Builds warm-start observations for a target workload: among the
/// `3k` most similar records of other tenants, donate the `k`
/// *fastest* (similarity routes to the right neighbourhood; quality
/// decides what is worth imitating), rescaled so their median runtime
/// matches `target_scale_s`.
pub fn donated_observations(
    store: &HistoryStore,
    query: &WorkloadSignature,
    k: usize,
    exclude_client: Option<&str>,
    target_scale_s: f64,
) -> Vec<Observation> {
    let _span = obs::span("donor_search").with("k", k);
    let mut records = store.most_similar(query, 3 * k, exclude_client);
    records.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));
    records.truncate(k);
    obs::registry()
        .counter("transfer.donations")
        .add(records.len() as u64);
    if records.is_empty() {
        return Vec::new();
    }
    let mut runtimes: Vec<f64> = records.iter().map(|r| r.runtime_s).collect();
    runtimes.sort_by(f64::total_cmp);
    let median = runtimes[runtimes.len() / 2].max(1e-9);
    let scale = target_scale_s / median;
    records
        .into_iter()
        .map(|r| Observation {
            config: r.config,
            runtime_s: r.runtime_s * scale,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        })
        .collect()
}

/// Converts donated records directly (no rescaling) — used when the
/// donor and target are known to share a size regime.
pub fn records_to_observations(records: Vec<ExecutionRecord>) -> Vec<Observation> {
    records
        .into_iter()
        .map(|r| Observation {
            config: r.config,
            runtime_s: r.runtime_s,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        })
        .collect()
}

/// A tuner wrapper injecting donated observations into the history its
/// inner strategy sees — with a rank-agreement guard that drops the
/// donation if it turns out to mislead (negative transfer).
pub struct TransferTuner {
    inner: Box<dyn Tuner>,
    donated: Vec<Observation>,
    /// Real observations required before validating the donation.
    validate_after: usize,
    validated: bool,
}

impl TransferTuner {
    /// Wraps `inner`, donating `donated` observations.
    pub fn new(inner: Box<dyn Tuner>, donated: Vec<Observation>) -> Self {
        TransferTuner {
            inner,
            donated,
            validate_after: 5,
            validated: false,
        }
    }

    /// Whether the donation is still active.
    pub fn donation_active(&self) -> bool {
        !self.donated.is_empty()
    }

    /// Kendall-style rank agreement between donated predictions and
    /// real observations over configs present in both… donated configs
    /// are rarely re-evaluated exactly, so the guard instead checks that
    /// the donated *best* region is not observed to be bad: if the real
    /// runs nearest (in config space) to the donated best are slower
    /// than the real median, the donation is judged misleading.
    fn donation_misleads(&self, space: &ParamSpace, real: &[Observation]) -> bool {
        let Some(donated_best) = self
            .donated
            .iter()
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
        else {
            return false;
        };
        let ok: Vec<&Observation> = real.iter().filter(|o| o.is_ok()).collect();
        if ok.len() < 3 {
            return false;
        }
        let q = space.encode(&donated_best.config);
        let mut by_dist: Vec<&&Observation> = ok.iter().collect();
        by_dist.sort_by(|a, b| {
            models::stats::dist(&space.encode(&a.config), &q)
                .total_cmp(&models::stats::dist(&space.encode(&b.config), &q))
        });
        let near_mean = models::stats::mean(
            &by_dist
                .iter()
                .take(3)
                .map(|o| o.runtime_s)
                .collect::<Vec<_>>(),
        );
        let Some(observed_best) = ok.iter().map(|o| o.runtime_s).min_by(f64::total_cmp) else {
            return false;
        };
        // The donation claimed its best region; if the real runs nearest
        // to that region are far slower than the best we've actually
        // seen, the donated surface points the wrong way.
        near_mean > observed_best * 2.0
    }
}

impl Tuner for TransferTuner {
    fn name(&self) -> &str {
        "transfer"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        if !self.validated && history.len() >= self.validate_after {
            if self.donation_misleads(space, history) {
                self.donated.clear();
            }
            self.validated = true;
        }

        // Probe the donated incumbent first: the single cheapest way to
        // cash in a similar workload's tuning knowledge.
        if let Some(donated_best) = self
            .donated
            .iter()
            .filter(|o| o.is_ok())
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
        {
            if !history.iter().any(|o| o.config == donated_best.config) {
                return donated_best.config.clone();
            }
        }

        // Align the donated runtimes to the target's observed scale so
        // the inner surrogate is not fitting two offset populations.
        let real_ok: Vec<f64> = history
            .iter()
            .filter(|o| o.is_ok())
            .map(|o| o.runtime_s)
            .collect();
        let donated_ok: Vec<f64> = self
            .donated
            .iter()
            .filter(|o| o.is_ok())
            .map(|o| o.runtime_s)
            .collect();
        let scale = if real_ok.len() >= 2 && !donated_ok.is_empty() {
            models::stats::median(&real_ok) / models::stats::median(&donated_ok).max(1e-9)
        } else {
            1.0
        };
        let augmented: Vec<Observation> = self
            .donated
            .iter()
            .map(|o| {
                let mut d = o.clone();
                if d.is_ok() {
                    d.runtime_s *= scale;
                }
                d
            })
            .chain(history.iter().cloned())
            .collect();
        self.inner.propose(space, &augmented, rng)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.validated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::BayesOpt;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new().with(confspace::ParamDef::int("a", 0, 100, 50, ""))
    }

    fn obs(space: &ParamSpace, a: i64, runtime: f64) -> Observation {
        Observation {
            config: space.default_configuration().with("a", a),
            runtime_s: runtime,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        }
    }

    #[test]
    fn good_donation_steers_early_proposals() {
        let s = space();
        // Donor says: small `a` is fast.
        let donated: Vec<Observation> = (0..8)
            .map(|i| obs(&s, i * 12, 10.0 + (i * 12) as f64))
            .collect();
        let mut t = TransferTuner::new(Box::new(BayesOpt::new()), donated);
        let mut rng = StdRng::seed_from_u64(1);
        // With 8 donated points the BO warm-up is already satisfied, so
        // the first proposal is model-guided.
        let c = t.propose(&s, &[], &mut rng);
        assert!(c.int("a") <= 40, "should exploit the donated trend: {c}");
    }

    #[test]
    fn misleading_donation_is_dropped() {
        let s = space();
        // Donor claims a=0 is best…
        let donated = vec![obs(&s, 0, 1.0), obs(&s, 100, 100.0)];
        let mut t = TransferTuner::new(Box::new(crate::tuner::RandomSearch), donated);
        let mut rng = StdRng::seed_from_u64(2);
        // …but real observations near a=0 are slow, far ones fast.
        let real = vec![
            obs(&s, 2, 500.0),
            obs(&s, 5, 480.0),
            obs(&s, 10, 470.0),
            obs(&s, 90, 10.0),
            obs(&s, 95, 12.0),
        ];
        assert!(t.donation_active());
        let _ = t.propose(&s, &real, &mut rng);
        assert!(!t.donation_active(), "negative transfer should be dropped");
    }

    #[test]
    fn consistent_donation_is_kept() {
        let s = space();
        let donated = vec![obs(&s, 0, 1.0), obs(&s, 100, 100.0)];
        let mut t = TransferTuner::new(Box::new(crate::tuner::RandomSearch), donated);
        let mut rng = StdRng::seed_from_u64(3);
        let real = vec![
            obs(&s, 2, 11.0),
            obs(&s, 5, 12.0),
            obs(&s, 10, 15.0),
            obs(&s, 90, 80.0),
            obs(&s, 95, 90.0),
        ];
        let _ = t.propose(&s, &real, &mut rng);
        assert!(t.donation_active());
    }

    #[test]
    fn donated_observations_rescale_to_target() {
        use crate::history::{ExecutionRecord, HistoryStore};
        use simcluster::ExecMetrics;
        let store = HistoryStore::new();
        let sig = WorkloadSignature::from_metrics(&ExecMetrics::default());
        for runtime in [100.0, 200.0, 300.0] {
            store.insert(ExecutionRecord {
                client: "donor".into(),
                workload: "w".into(),
                signature: sig.clone(),
                config: Configuration::new().with("a", 1i64),
                runtime_s: runtime,
                cost_usd: 0.0,
                seq: 0,
                outcome: crate::history::RecordOutcome::Ok,
            });
        }
        let donated = donated_observations(&store, &sig, 3, None, 20.0);
        assert_eq!(donated.len(), 3);
        // Median (200) maps to 20.
        let mut rts: Vec<f64> = donated.iter().map(|o| o.runtime_s).collect();
        rts.sort_by(f64::total_cmp);
        assert!((rts[1] - 20.0).abs() < 1e-9);
    }
}

/// AROMA-style clustered history (§II-B, §V-B): k-medoids over the
/// store's workload signatures, with per-cluster donor lookup. Building
/// per-cluster models (instead of one global pool) keeps donations from
/// workloads with a different bottleneck profile out of the warm start.
#[derive(Debug, Clone)]
pub struct ClusteredHistory {
    medoids: Vec<WorkloadSignature>,
    members: Vec<Vec<ExecutionRecord>>,
}

impl ClusteredHistory {
    /// Clusters the store's records into `k` signature groups.
    ///
    /// # Panics
    ///
    /// Panics when the store holds fewer records than `k`.
    pub fn build(store: &HistoryStore, k: usize, rng: &mut dyn rand::RngCore) -> Self {
        Self::build_from_records(store.snapshot(), k, rng)
    }

    /// Clusters an explicit record set into `k` signature groups (the
    /// store-free path used by [`ClusterIndex`] when rebuilding from
    /// cursor-accumulated records).
    ///
    /// # Panics
    ///
    /// Panics when fewer records than `k` are given.
    pub fn build_from_records(
        records: Vec<ExecutionRecord>,
        k: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Self {
        assert!(
            records.len() >= k,
            "need at least k={k} records, got {}",
            records.len()
        );
        let points: Vec<Vec<f64>> = records
            .iter()
            .map(|r| r.signature.features().to_vec())
            .collect();
        let clustering = models::k_medoids(&points, k, 20, rng);
        let medoids: Vec<WorkloadSignature> = clustering
            .medoids
            .iter()
            .map(|&i| records[i].signature.clone())
            .collect();
        let mut members: Vec<Vec<ExecutionRecord>> = vec![Vec::new(); k];
        for (i, r) in records.into_iter().enumerate() {
            members[clustering.assignment[i]].push(r);
        }
        ClusteredHistory { medoids, members }
    }

    /// Assigns new records to their nearest existing medoid without
    /// re-clustering (medoids drift is handled by the caller's periodic
    /// full rebuild).
    pub fn absorb(&mut self, fresh: impl IntoIterator<Item = ExecutionRecord>) {
        for r in fresh {
            let c = self.assign(&r.signature);
            self.members[c].push(r);
        }
    }

    /// Total records across all clusters.
    pub fn len_records(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Consumes the clustering, returning every member record.
    pub fn into_records(self) -> Vec<ExecutionRecord> {
        self.members.into_iter().flatten().collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Index of the cluster nearest to `sig`.
    pub fn assign(&self, sig: &WorkloadSignature) -> usize {
        self.medoids
            .iter()
            .enumerate()
            .min_by(|a, b| sig.distance(a.1).total_cmp(&sig.distance(b.1)))
            .map_or(0, |(i, _)| i)
    }

    /// The fastest `limit` records from `sig`'s cluster — the donor set
    /// for a warm start.
    pub fn donors_for(&self, sig: &WorkloadSignature, limit: usize) -> Vec<ExecutionRecord> {
        let c = self.assign(sig);
        let mut records = self.members[c].clone();
        records.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));
        records.truncate(limit);
        records
    }

    /// The records of cluster `c`.
    pub fn cluster_members(&self, c: usize) -> &[ExecutionRecord] {
        &self.members[c]
    }
}

/// A shared, incrementally maintained [`ClusteredHistory`] over a
/// [`HistoryStore`].
///
/// The old clustered-donor path re-clustered the *entire* store snapshot
/// on every tune — O(store) per tenant, the definition of a hot-path
/// clone. `ClusterIndex` instead reads only records appended since its
/// last query (via [`HistoryStore::records_since`]), absorbs them into
/// the existing clusters, and re-clusters from scratch only when the
/// history has doubled since the last build — amortized O(1) snapshots
/// per insert.
#[derive(Debug)]
pub struct ClusterIndex {
    k: usize,
    /// Records required before the first clustering is attempted.
    min_records: usize,
    state: parking_lot::Mutex<ClusterIndexState>,
}

#[derive(Debug, Default)]
struct ClusterIndexState {
    clusters: Option<ClusteredHistory>,
    cursor: crate::history::HistoryCursor,
    /// Records not yet clustered (pre-build accumulation only).
    pending: Vec<ExecutionRecord>,
    /// Store size at the last full rebuild.
    built_at: usize,
}

impl ClusterIndex {
    /// Creates an index that clusters into `k` groups once `min_records`
    /// records have accumulated.
    pub fn new(k: usize, min_records: usize) -> Self {
        ClusterIndex {
            k: k.max(1),
            min_records: min_records.max(k),
            state: parking_lot::Mutex::new(ClusterIndexState::default()),
        }
    }

    /// Donor records for `sig`, fastest first, absorbing any records
    /// appended to `store` since the last call. Falls back to flat
    /// nearest-neighbour search while the history is too small to
    /// cluster. `seed` drives the (deterministic) k-medoids restarts
    /// when a rebuild is due.
    pub fn donors_for(
        &self,
        store: &HistoryStore,
        sig: &WorkloadSignature,
        limit: usize,
        seed: u64,
    ) -> Vec<ExecutionRecord> {
        use rand::SeedableRng;
        let reg = obs::registry();
        let st = &mut *self.state.lock();
        // Censored runs (aborted/timed-out trials) never enter the
        // clustering: their penalty runtimes would distort medoids and
        // they carry no transferable signal — mirrors the filter in
        // [`HistoryStore::most_similar`].
        st.pending.extend(
            store
                .records_since(&mut st.cursor)
                .into_iter()
                .filter(|r| r.outcome == crate::history::RecordOutcome::Ok),
        );

        let total = st
            .clusters
            .as_ref()
            .map_or(0, ClusteredHistory::len_records)
            + st.pending.len();
        let rebuild_due = match &st.clusters {
            None => total >= self.min_records,
            // Absorbed growth has doubled the clustered set: medoids
            // are stale, re-cluster from scratch.
            Some(_) => total >= 2 * st.built_at.max(1),
        };
        if rebuild_due && total >= self.k {
            let mut all: Vec<ExecutionRecord> = match st.clusters.take() {
                Some(c) => c.into_records(),
                None => Vec::new(),
            };
            all.append(&mut st.pending);
            all.sort_by_key(|r| r.seq);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            st.built_at = all.len();
            st.clusters = Some(ClusteredHistory::build_from_records(all, self.k, &mut rng));
            reg.counter("transfer.cluster_rebuilds").inc();
        } else if let Some(clusters) = st.clusters.as_mut() {
            if !st.pending.is_empty() {
                reg.counter("transfer.cluster_absorbed")
                    .add(st.pending.len() as u64);
                clusters.absorb(std::mem::take(&mut st.pending));
            }
        }

        match &st.clusters {
            Some(clusters) => clusters.donors_for(sig, limit),
            // Too little history to cluster: flat similarity search.
            None => store.most_similar(sig, limit, None),
        }
    }

    /// Whether a clustering has been built yet.
    pub fn is_built(&self) -> bool {
        self.state.lock().clusters.is_some()
    }
}

#[cfg(test)]
mod clustered_tests {
    use super::*;
    use simcluster::{ExecMetrics, StageMetrics};

    fn sig(cpu: f64, net: f64) -> WorkloadSignature {
        WorkloadSignature::from_metrics(&ExecMetrics {
            runtime_s: 50.0,
            stages: vec![StageMetrics {
                name: "s".into(),
                cpu_s: cpu,
                net_s: net,
                io_s: 100.0 - cpu - net,
                ..Default::default()
            }],
            input_mb: 1000.0,
            ..Default::default()
        })
    }

    fn record(cpu: f64, net: f64, runtime: f64) -> ExecutionRecord {
        ExecutionRecord {
            client: "c".into(),
            workload: "w".into(),
            signature: sig(cpu, net),
            config: Configuration::new().with("p", runtime as i64),
            runtime_s: runtime,
            cost_usd: 0.0,
            seq: 0,
            outcome: crate::history::RecordOutcome::Ok,
        }
    }

    fn two_regime_store() -> HistoryStore {
        let store = HistoryStore::new();
        for i in 0..8 {
            store.insert(record(90.0, 5.0, 20.0 + i as f64)); // cpu-bound
            store.insert(record(10.0, 80.0, 50.0 + i as f64)); // net-bound
        }
        store
    }

    #[test]
    fn clusters_separate_bottleneck_regimes() {
        let store = two_regime_store();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let ch = ClusteredHistory::build(&store, 2, &mut rng);
        assert_eq!(ch.k(), 2);
        let cpu_cluster = ch.assign(&sig(85.0, 8.0));
        let net_cluster = ch.assign(&sig(15.0, 75.0));
        assert_ne!(cpu_cluster, net_cluster);
        // Every member of the cpu cluster is cpu-bound (runtime < 40).
        assert!(ch
            .cluster_members(cpu_cluster)
            .iter()
            .all(|r| r.runtime_s < 40.0));
    }

    #[test]
    fn donors_come_from_the_right_cluster_fastest_first() {
        let store = two_regime_store();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        use rand::SeedableRng;
        let ch = ClusteredHistory::build(&store, 2, &mut rng);
        let donors = ch.donors_for(&sig(88.0, 6.0), 3);
        assert_eq!(donors.len(), 3);
        assert!(donors.windows(2).all(|w| w[0].runtime_s <= w[1].runtime_s));
        assert!(donors.iter().all(|r| r.runtime_s < 40.0));
    }

    #[test]
    #[should_panic(expected = "need at least k")]
    fn too_few_records_panics() {
        let store = HistoryStore::new();
        store.insert(record(50.0, 20.0, 10.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::SeedableRng;
        let _ = ClusteredHistory::build(&store, 4, &mut rng);
    }
}
