//! High-level tuning goals (§IV-D): "the tuning service could let users
//! make trade-off decisions which impact things like cost: do I need
//! the results quickly no matter the cost, or am I willing to wait a
//! long time for the results?"
//!
//! [`GoalObjective`] wraps any [`Objective`] and rewrites the scalar the
//! tuner minimizes, while keeping the true runtime/cost in the
//! observation for reporting.

use confspace::{Configuration, ParamSpace};
use serde::{Deserialize, Serialize};

use crate::objective::{BatchObjective, Objective, Observation, FAILURE_PENALTY_S};

/// What the end-user asked the service to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TuningGoal {
    /// Results as fast as possible, cost be damned.
    MinRuntime,
    /// Cheapest execution, however long it takes.
    MinCost,
    /// Cheapest execution that finishes within the deadline; runs over
    /// the deadline are penalized in proportion to the overshoot.
    Deadline {
        /// The runtime budget in seconds.
        seconds: f64,
    },
    /// A weighted blend: `alpha · normalized runtime + (1−alpha) ·
    /// normalized cost`, with `alpha` in `[0, 1]`.
    Weighted {
        /// Weight on runtime (1 = pure runtime, 0 = pure cost).
        alpha: f64,
    },
}

impl TuningGoal {
    /// Scores an observation (lower is better). Scores are expressed in
    /// "equivalent seconds" so the tuners' log-transform stays
    /// meaningful.
    pub fn score(self, obs: &Observation) -> f64 {
        if !obs.is_ok() {
            return FAILURE_PENALTY_S;
        }
        match self {
            TuningGoal::MinRuntime => obs.runtime_s,
            // 1 dollar == 1000 equivalent seconds keeps costs in the
            // same numeric regime as runtimes for the surrogates.
            TuningGoal::MinCost => obs.cost_usd * 1000.0,
            TuningGoal::Deadline { seconds } => {
                let overshoot = (obs.runtime_s - seconds).max(0.0);
                obs.cost_usd * 1000.0 + overshoot * 50.0
            }
            TuningGoal::Weighted { alpha } => {
                let a = alpha.clamp(0.0, 1.0);
                a * obs.runtime_s + (1.0 - a) * obs.cost_usd * 1000.0
            }
        }
    }

    /// Display label.
    pub fn label(self) -> String {
        match self {
            TuningGoal::MinRuntime => "min-runtime".to_owned(),
            TuningGoal::MinCost => "min-cost".to_owned(),
            TuningGoal::Deadline { seconds } => format!("deadline<{seconds:.0}s"),
            TuningGoal::Weighted { alpha } => format!("weighted(a={alpha:.2})"),
        }
    }
}

/// An objective wrapper that makes tuners optimize a [`TuningGoal`].
///
/// The wrapped observation's `runtime_s` carries the goal score (what
/// the tuner minimizes); the *true* runtime remains available in
/// `metrics.runtime_s` and the true dollar cost in `cost_usd`.
pub struct GoalObjective<O> {
    inner: O,
    goal: TuningGoal,
}

impl<O: Objective> GoalObjective<O> {
    /// Wraps `inner` with `goal`.
    pub fn new(inner: O, goal: TuningGoal) -> Self {
        GoalObjective { inner, goal }
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The active goal.
    pub fn goal(&self) -> TuningGoal {
        self.goal
    }
}

impl<O: Objective> Objective for GoalObjective<O> {
    fn space(&self) -> &ParamSpace {
        self.inner.space()
    }

    fn evaluate(&mut self, config: &Configuration) -> Observation {
        let mut obs = self.inner.evaluate(config);
        obs.runtime_s = self.goal.score(&obs);
        obs
    }

    fn describe(&self) -> String {
        format!("{} [{}]", self.inner.describe(), self.goal.label())
    }
}

impl<O: BatchObjective> BatchObjective for GoalObjective<O> {
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation {
        let mut obs = self.inner.evaluate_trial(config, trial_seed);
        obs.runtime_s = self.goal.score(&obs);
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{CloudObjective, SimEnvironment};
    use crate::tuner::{TunerKind, TuningSession};
    use crate::SeamlessTuner;
    use simcluster::ClusterSpec;
    use workloads::{DataScale, Terasort, Workload};

    fn obs(runtime: f64, cost: f64) -> Observation {
        Observation {
            config: Configuration::new(),
            runtime_s: runtime,
            cost_usd: cost,
            metrics: None,
            failure: None,
        }
    }

    #[test]
    fn scores_reflect_the_goal() {
        let fast_pricey = obs(10.0, 1.0);
        let slow_cheap = obs(100.0, 0.1);
        assert!(
            TuningGoal::MinRuntime.score(&fast_pricey) < TuningGoal::MinRuntime.score(&slow_cheap)
        );
        assert!(TuningGoal::MinCost.score(&slow_cheap) < TuningGoal::MinCost.score(&fast_pricey));
    }

    #[test]
    fn deadline_penalizes_overshoot() {
        let within = obs(50.0, 0.5);
        let over = obs(120.0, 0.2);
        let goal = TuningGoal::Deadline { seconds: 60.0 };
        assert!(goal.score(&within) < goal.score(&over));
    }

    #[test]
    fn weighted_interpolates() {
        let a = obs(10.0, 1.0);
        let runtime_like = TuningGoal::Weighted { alpha: 1.0 }.score(&a);
        let cost_like = TuningGoal::Weighted { alpha: 0.0 }.score(&a);
        assert!((runtime_like - 10.0).abs() < 1e-9);
        assert!((cost_like - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn failures_are_always_worst() {
        let failed = Observation {
            failure: Some(simcluster::FailureKind::DriverOom),
            ..obs(1.0, 0.0)
        };
        for goal in [
            TuningGoal::MinRuntime,
            TuningGoal::MinCost,
            TuningGoal::Deadline { seconds: 60.0 },
        ] {
            assert_eq!(goal.score(&failed), FAILURE_PENALTY_S);
        }
    }

    #[test]
    fn cost_goal_prefers_smaller_clusters_than_runtime_goal() {
        let job = Terasort::new().job(DataScale::Tiny);
        let disc = SeamlessTuner::house_default();
        let tune = |goal: TuningGoal| -> ClusterSpec {
            let inner =
                CloudObjective::new(job.clone(), disc.clone(), &SimEnvironment::dedicated(9));
            let mut obj = GoalObjective::new(inner, goal);
            let mut session = TuningSession::new(TunerKind::BayesOpt, 21);
            let outcome = session.run(&mut obj, 18);
            ClusterSpec::from_config(outcome.best_config().expect("found a config"))
                .expect("valid cloud config")
        };
        let fast = tune(TuningGoal::MinRuntime);
        let cheap = tune(TuningGoal::MinCost);
        assert!(
            cheap.price_per_hour() <= fast.price_per_hour(),
            "cheap {} (${}/h) vs fast {} (${}/h)",
            cheap,
            cheap.price_per_hour(),
            fast,
            fast.price_per_hour()
        );
    }
}
