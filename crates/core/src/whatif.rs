//! A Starfish-style What-If engine (Herodotou et al. \[19\], §II-B).
//!
//! Starfish profiles one execution of a job and answers questions like
//! *"given the profile of job A on cluster c1, what will its runtime be
//! on cluster c2 with configuration x?"* — a white-box alternative to
//! the search/model-based tuners. §II-B records its documented
//! weakness: "it showed less accuracy when tried with heterogeneous
//! applications and cloud workloads" — i.e. the first-order rescaling
//! breaks when the target configuration changes behaviour the profile
//! never saw (different serializer, compression, memory pressure).
//! Experiment E16 measures exactly that.

use serde::{Deserialize, Serialize};

use simcluster::{ExecMetrics, SparkEnv};

use crate::objective::Observation;

/// Per-stage resource profile extracted from one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StageProfile {
    name: String,
    tasks: u32,
    cpu_s: f64,
    io_s: f64,
    net_s: f64,
    gc_s: f64,
    ser_s: f64,
}

/// A job profile: what one execution revealed about the job's resource
/// demands, normalized by the environment it ran under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    stages: Vec<StageProfile>,
    /// Task slots of the profiled environment.
    src_slots: f64,
    /// Effective per-slot CPU speed of the profiled environment.
    src_cpu: f64,
    /// Per-node disk bandwidth of the profiled environment (MB/s).
    src_disk: f64,
    /// Per-node network bandwidth of the profiled environment (MB/s).
    src_net: f64,
    /// Fixed overhead observed (job + stage scheduling), seconds.
    overhead_s: f64,
}

impl JobProfile {
    /// Builds a profile from one observed execution.
    ///
    /// # Panics
    ///
    /// Panics when the metrics contain no stages.
    pub fn from_run(env: &SparkEnv, metrics: &ExecMetrics) -> Self {
        assert!(
            !metrics.stages.is_empty(),
            "cannot profile an execution with no stages"
        );
        let stages: Vec<StageProfile> = metrics
            .stages
            .iter()
            .map(|s| StageProfile {
                name: s.name.clone(),
                tasks: s.tasks,
                cpu_s: s.cpu_s,
                io_s: s.io_s,
                net_s: s.net_s,
                gc_s: s.gc_s,
                ser_s: s.ser_s,
            })
            .collect();
        let busy: f64 = metrics
            .stages
            .iter()
            .map(|s| s.cpu_s + s.io_s + s.net_s + s.gc_s + s.ser_s)
            .sum();
        let ideal: f64 = busy / f64::from(env.total_slots().max(1));
        JobProfile {
            stages,
            src_slots: f64::from(env.total_slots().max(1)),
            src_cpu: env.cluster.instance.cpu_speed / env.cpu_contention(),
            src_disk: env.cluster.instance.disk_mbps,
            src_net: env.cluster.instance.net_mbps,
            overhead_s: (metrics.runtime_s - ideal).max(0.0),
        }
    }

    /// What-if prediction: runtime of the same job under `target`,
    /// obtained by rescaling each stage's resource components by the
    /// environment ratios and re-dividing by the new slot count.
    ///
    /// First-order by design: behavioural changes the profile never
    /// observed (serializer, codec, memory-pressure regime) are *not*
    /// modelled — which is the §II-B accuracy limitation E16 measures.
    pub fn predict(&self, target: &SparkEnv) -> f64 {
        self.predict_scaled(target, 1.0)
    }

    /// What-if prediction with an input-size ratio (Starfish's
    /// "input data y" questions): component volumes scale linearly.
    pub fn predict_scaled(&self, target: &SparkEnv, input_ratio: f64) -> f64 {
        let (cpu, io, net) = self.busy_totals();
        self.predict_from_totals(target, input_ratio, cpu, io, net)
    }

    /// Batched what-if: predicts the job's runtime under every target
    /// environment, summing the profile's per-stage resource components
    /// once instead of per query — the experiment harness asks dozens
    /// of what-if questions per profile.
    pub fn predict_many(&self, targets: &[SparkEnv]) -> Vec<f64> {
        let (cpu, io, net) = self.busy_totals();
        targets
            .iter()
            .map(|t| self.predict_from_totals(t, 1.0, cpu, io, net))
            .collect()
    }

    /// Total profiled busy seconds per resource class:
    /// `(cpu-like, disk, network)`.
    fn busy_totals(&self) -> (f64, f64, f64) {
        let mut cpu = 0.0;
        let mut io = 0.0;
        let mut net = 0.0;
        for s in &self.stages {
            cpu += s.cpu_s + s.gc_s + s.ser_s;
            io += s.io_s;
            net += s.net_s;
        }
        (cpu, io, net)
    }

    fn predict_from_totals(
        &self,
        target: &SparkEnv,
        input_ratio: f64,
        cpu: f64,
        io: f64,
        net: f64,
    ) -> f64 {
        let tgt_slots = f64::from(target.total_slots().max(1));
        let tgt_cpu = target.cluster.instance.cpu_speed / target.cpu_contention();
        let cpu_ratio = self.src_cpu / tgt_cpu.max(1e-9);
        let disk_ratio = self.src_disk / target.cluster.instance.disk_mbps.max(1e-9);
        let net_ratio = self.src_net / target.cluster.instance.net_mbps.max(1e-9);
        let busy = cpu * cpu_ratio + io * disk_ratio + net * net_ratio;
        busy * input_ratio / tgt_slots + self.overhead_s
    }

    /// Number of profiled stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Builds a profile directly from an [`Observation`], when it succeeded.
pub fn profile_observation(env: &SparkEnv, obs: &Observation) -> Option<JobProfile> {
    obs.metrics.as_ref().map(|m| JobProfile::from_run(env, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::spark::names as sp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simcluster::{ClusterSpec, Simulator};
    use workloads::{DataScale, Wordcount, Workload};

    fn env_with(cfg: &confspace::Configuration, nodes: u32) -> SparkEnv {
        let cluster = ClusterSpec::new(simcluster::catalog::h1_4xlarge(), nodes);
        SparkEnv::resolve(&cluster, cfg).expect("fits")
    }

    fn run(env: &SparkEnv, scale: DataScale, seed: u64) -> ExecMetrics {
        let job = Wordcount::new().job(scale);
        let mut rng = StdRng::seed_from_u64(seed);
        Simulator::dedicated()
            .run(env, &job, &mut rng)
            .expect("ok")
            .metrics
    }

    fn base_cfg() -> confspace::Configuration {
        crate::SeamlessTuner::house_default()
    }

    #[test]
    fn profile_predicts_its_own_environment() {
        let env = env_with(&base_cfg(), 4);
        let m = run(&env, DataScale::Small, 1);
        let profile = JobProfile::from_run(&env, &m);
        let pred = profile.predict(&env);
        assert!(
            (pred - m.runtime_s).abs() / m.runtime_s < 0.35,
            "self-prediction {pred:.1} vs actual {:.1}",
            m.runtime_s
        );
    }

    #[test]
    fn predicts_scale_out_direction() {
        // Profile on 4 nodes, ask about 8: more executors fit, so the
        // what-if with doubled executor count must predict less time.
        let cfg_small = base_cfg().with(sp::EXECUTOR_INSTANCES, 8i64);
        let cfg_big = base_cfg().with(sp::EXECUTOR_INSTANCES, 16i64);
        let env4 = env_with(&cfg_small, 4);
        let env8 = env_with(&cfg_big, 8);
        let m = run(&env4, DataScale::Small, 2);
        let profile = JobProfile::from_run(&env4, &m);
        assert!(profile.predict(&env8) < profile.predict(&env4));
    }

    #[test]
    fn predicts_input_growth_linearly() {
        let env = env_with(&base_cfg(), 4);
        let m = run(&env, DataScale::Small, 3);
        let profile = JobProfile::from_run(&env, &m);
        let p1 = profile.predict_scaled(&env, 1.0);
        let p4 = profile.predict_scaled(&env, 4.0);
        // Busy time quadruples; the fixed overhead does not.
        assert!(p4 > 2.5 * p1 && p4 < 4.5 * p1, "{p1} -> {p4}");
    }

    #[test]
    fn heterogeneous_config_changes_are_where_it_breaks() {
        // The documented Starfish weakness: profile under java
        // serialization, ask about a kryo+zstd config — the what-if
        // engine cannot see the behavioural change, so its error is
        // larger than for a same-behaviour scale change.
        let java_cfg = base_cfg().with(sp::SERIALIZER, "java");
        let kryo_cfg = base_cfg()
            .with(sp::SERIALIZER, "kryo")
            .with(sp::IO_COMPRESSION_CODEC, "zstd");
        let env_java = env_with(&java_cfg, 4);
        let env_kryo = env_with(&kryo_cfg, 4);

        let m = run(&env_java, DataScale::Small, 4);
        let profile = JobProfile::from_run(&env_java, &m);

        // Actuals.
        let job = workloads::Terasort::new().job(DataScale::Small);
        let mut rng = StdRng::seed_from_u64(5);
        let sim = Simulator::dedicated();
        let actual_kryo = sim.run(&env_kryo, &job, &mut rng).expect("ok").runtime_s;

        // The engine predicts the kryo env as if behaviour were java's.
        let pred_kryo = profile.predict(&env_kryo);
        // No assertion of *accuracy* here — just that the prediction
        // ignores the serializer (identical inputs give identical
        // predictions), the structural blindness E16 quantifies.
        let pred_java = profile.predict(&env_java);
        assert_eq!(pred_kryo, pred_java, "what-if is blind to the serializer");
        assert!(actual_kryo > 0.0);
    }
}
