//! The seamless tuning service — the paper's primary contribution made
//! concrete.
//!
//! This crate layers the tuning stack of *"Towards Seamless
//! Configuration Tuning of Big Data Analytics"* (ICDCS'19):
//!
//! * [`objective`] — the black-box interface tuners optimize
//!   (configuration → observed runtime/cost), implemented against the
//!   `simcluster` substrate for the DISC layer, the cloud layer, and
//!   the joint space;
//! * [`tuner`] — ten strategies spanning the paper's survey (§II):
//!   random / LHS search, MROnline hill climbing, CherryPick Bayesian
//!   optimization (plus an additive-kernel variant, §V-A), DAC's
//!   surrogate-assisted genetic search, BestConfig's
//!   divide-and-diverge + bound-and-search, Wang's regression trees,
//!   PARIS's random forests and Ernest's analytic scaling model;
//! * [`executor`] + [`faults`] — concurrent trial execution with
//!   deterministic seeding, plus the resilience layer: seeded fault
//!   injection, retry/backoff policies, deadlines and quarantine;
//! * [`characterize`] — workload signatures from execution metrics
//!   (§V-B: "accurate characterization of analytic workloads");
//! * [`history`] — the provider-side multi-tenant execution-history
//!   store (§IV-C: "the cloud is a centralized place … able to keep a
//!   record of the different workloads' execution history");
//! * [`transfer`] — warm-starting tuners from similar workloads with a
//!   negative-transfer guard (§V-B);
//! * [`retune`] — drift detection triggering re-tuning (§V-D);
//! * [`slo`] — tuning-effectiveness metrics (§IV-D, §V-C) and the
//!   cost-amortization ledger (§IV-C);
//! * [`service`] — [`service::SeamlessTuner`], the two-stage Fig. 1
//!   pipeline (cloud configuration, then DISC configuration) with
//!   history-driven transfer and managed re-tuning.

pub mod characterize;
pub mod executor;
pub mod faults;
pub mod goal;
pub mod history;
pub mod objective;
pub mod retune;
pub mod sensitivity;
pub mod service;
pub mod slo;
pub mod transfer;
pub mod tuner;
pub mod whatif;

pub use characterize::WorkloadSignature;
pub use executor::{DegradationReport, RetryPolicy, TrialError, TrialExecutor, TrialOutcome};
pub use faults::{FaultInjector, FaultKind, FaultPlan};
pub use goal::{GoalObjective, TuningGoal};
pub use history::{ExecutionRecord, HistoryCursor, HistoryStore, RecordOutcome};
pub use objective::{
    BatchObjective, CloudObjective, DiscObjective, JointObjective, Objective, Observation,
    SimEnvironment, FAILURE_PENALTY_S,
};
pub use retune::{RetuneMonitor, RetunePolicy};
pub use sensitivity::{additive_effects, permutation_importance, SensitivityReport};
pub use service::{ManagedWorkload, SeamlessTuner, ServiceConfig, ServiceOutcome, TenantRequest};
pub use slo::{AmortizationLedger, SloReport, SloTracker, TenantSloStats};
pub use transfer::{ClusterIndex, ClusteredHistory, TransferTuner};
pub use tuner::{Tuner, TunerKind, TuningOutcome, TuningSession};
pub use whatif::JobProfile;
