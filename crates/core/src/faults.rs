//! Deterministic fault injection for trial execution.
//!
//! A tuning service that only ever sees healthy trials is a tuning
//! service that has never been deployed: real Spark runs OOM, get
//! preempted, straggle behind a slow node, or report garbage metrics.
//! This module provides the *test-first* half of the resilience story —
//! a [`FaultInjector`] that perturbs trial execution with a seeded,
//! reproducible fault stream, so every retry/timeout/quarantine path in
//! [`crate::executor`] can be driven deterministically in tests, chaos
//! suites, and benchmarks.
//!
//! Determinism contract: the fault (if any) affecting a trial attempt is
//! a pure function of `(injector seed, global trial index, attempt)`.
//! Like the per-trial seeds of [`crate::executor::trial_seed`], the
//! decision is keyed by the *global* trial index — never by batch size,
//! batch boundary, or worker thread — so a chaos run is invariant to
//! batch partitioning and `SEAMLESS_THREADS`, and re-running the same
//! seed replays the exact same faults.

use serde::{Deserialize, Serialize};

/// One injected fault, as decided for a single trial attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The trial crashes before producing an observation (container
    /// kill, preemption, lost driver).
    Error,
    /// The trial completes but its wall-clock latency is multiplied by
    /// the factor (slow node, noisy neighbour).
    Straggler(f64),
    /// The trial never completes: infinite latency, caught only by the
    /// executor's per-trial deadline.
    Hang,
    /// The trial reports a NaN runtime — poisoned telemetry.
    PoisonNan,
    /// The trial reports a negative duration — clock-skewed telemetry.
    PoisonNegative,
}

/// Fault rates for an injector. All rates are probabilities in `[0, 1]`
/// applied per attempt, in the order `error → hang → straggler →
/// poison` over one uniform draw (so the rates partition the unit
/// interval and never compound).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability of a hard trial error.
    pub error_rate: f64,
    /// Probability of a hang (infinite latency).
    pub hang_rate: f64,
    /// Probability of a straggler.
    pub straggler_rate: f64,
    /// Latency multiplier for stragglers.
    pub straggler_factor: f64,
    /// Probability of poisoned metrics (NaN or negative durations,
    /// alternating by a second deterministic draw).
    pub poison_rate: f64,
    /// A global trial index that hangs on *every* attempt — a permanent
    /// straggler that no retry can save, exercising the deadline +
    /// quarantine path.
    pub permanent_straggler: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan {
            error_rate: 0.0,
            hang_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 1.0,
            poison_rate: 0.0,
            permanent_straggler: None,
        }
    }

    /// Hard trial errors only, at the given rate.
    pub fn errors(rate: f64) -> Self {
        FaultPlan {
            error_rate: rate,
            ..Self::none()
        }
    }

    /// Poisoned metrics only, at the given rate.
    pub fn poison(rate: f64) -> Self {
        FaultPlan {
            poison_rate: rate,
            ..Self::none()
        }
    }

    /// The default chaos mix used by `stune --chaos`: 10% errors, 2%
    /// hangs, 5% 8× stragglers, 3% poisoned metrics.
    pub fn chaos() -> Self {
        FaultPlan {
            error_rate: 0.10,
            hang_rate: 0.02,
            straggler_rate: 0.05,
            straggler_factor: 8.0,
            poison_rate: 0.03,
            permanent_straggler: None,
        }
    }

    /// Whether this plan can never fire.
    pub fn is_none(&self) -> bool {
        self.error_rate <= 0.0
            && self.hang_rate <= 0.0
            && (self.straggler_rate <= 0.0 || self.straggler_factor == 1.0)
            && self.poison_rate <= 0.0
            && self.permanent_straggler.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// SplitMix64 finalizer — the same mixing used by
/// [`crate::executor::trial_seed`], applied to the injector's stream.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from 53 mixed bits — shared with the
/// executor's deterministic backoff jitter.
pub(crate) fn unit_draw(z: u64) -> f64 {
    (mix(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic, seeded fault source for trial execution.
///
/// Stateless by design: every decision derives from the seed and the
/// `(trial_index, attempt)` coordinates, so the injector can be shared
/// across worker threads and replayed across processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
}

impl FaultInjector {
    /// Creates an injector with the given seed and plan.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        FaultInjector { seed, plan }
    }

    /// The no-op injector: [`FaultInjector::fault_for`] always returns
    /// `None`, and execution through it is bitwise identical to
    /// execution without any injector.
    pub fn none() -> Self {
        FaultInjector::new(0, FaultPlan::none())
    }

    /// Whether this injector can never fire.
    pub fn is_noop(&self) -> bool {
        self.plan.is_none()
    }

    /// The injector's plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Derives an injector whose seed is XOR-mixed with `salt` — used to
    /// give each tuning stage (and each tenant) its own fault stream
    /// while keeping the whole run reproducible from one chaos seed.
    /// A no-op injector stays bitwise identical under reseeding.
    pub fn reseed(self, salt: u64) -> Self {
        if self.is_noop() {
            return self;
        }
        FaultInjector::new(self.seed ^ salt, self.plan)
    }

    /// The fault (if any) affecting `attempt` of the trial at the given
    /// *global* index. Pure: same `(seed, trial_index, attempt)`, same
    /// answer, on any thread, in any batch partition.
    pub fn fault_for(&self, trial_index: u64, attempt: u32) -> Option<FaultKind> {
        if self.plan.permanent_straggler == Some(trial_index) {
            return Some(FaultKind::Hang);
        }
        if self.is_noop() {
            return None;
        }
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(trial_index.wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add(u64::from(attempt));
        let u = unit_draw(stream);
        let p = &self.plan;
        let mut edge = p.error_rate;
        if u < edge {
            return Some(FaultKind::Error);
        }
        edge += p.hang_rate;
        if u < edge {
            return Some(FaultKind::Hang);
        }
        edge += p.straggler_rate;
        if u < edge {
            return Some(FaultKind::Straggler(p.straggler_factor.max(1.0)));
        }
        edge += p.poison_rate;
        if u < edge {
            // A second independent draw picks the poison flavour.
            return Some(if unit_draw(stream ^ 0x5EED_F00D) < 0.5 {
                FaultKind::PoisonNan
            } else {
                FaultKind::PoisonNegative
            });
        }
        None
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_injector_never_fires() {
        let inj = FaultInjector::none();
        assert!(inj.is_noop());
        for idx in 0..500 {
            for attempt in 0..3 {
                assert_eq!(inj.fault_for(idx, attempt), None);
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_index_keyed() {
        let a = FaultInjector::new(42, FaultPlan::chaos());
        let b = FaultInjector::new(42, FaultPlan::chaos());
        for idx in 0..200 {
            assert_eq!(a.fault_for(idx, 0), b.fault_for(idx, 0));
            assert_eq!(a.fault_for(idx, 1), b.fault_for(idx, 1));
        }
        // A different seed produces a different fault stream.
        let c = FaultInjector::new(43, FaultPlan::chaos());
        let differs = (0..200).any(|i| a.fault_for(i, 0) != c.fault_for(i, 0));
        assert!(differs, "seed must drive the fault stream");
    }

    #[test]
    fn rates_are_approximately_respected() {
        let inj = FaultInjector::new(7, FaultPlan::errors(0.2));
        let fired = (0..5000).filter(|&i| inj.fault_for(i, 0).is_some()).count();
        let rate = fired as f64 / 5000.0;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn attempts_resample_transient_faults() {
        // A fault on attempt 0 usually clears by some later attempt, so
        // retries can succeed.
        let inj = FaultInjector::new(11, FaultPlan::errors(0.5));
        let recovered = (0..200)
            .filter(|&i| {
                inj.fault_for(i, 0).is_some() && (1..4).any(|a| inj.fault_for(i, a).is_none())
            })
            .count();
        assert!(recovered > 0, "transient faults must be retryable");
    }

    #[test]
    fn permanent_straggler_hangs_on_every_attempt() {
        let plan = FaultPlan {
            permanent_straggler: Some(5),
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(3, plan);
        for attempt in 0..8 {
            assert_eq!(inj.fault_for(5, attempt), Some(FaultKind::Hang));
        }
        assert_eq!(inj.fault_for(4, 0), None);
    }
}
