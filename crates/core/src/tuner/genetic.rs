//! DAC-style surrogate-assisted genetic search (Yu et al. \[31\]):
//! a learned performance model (here a random forest standing in for
//! DAC's hierarchical regression-tree ensemble) is searched with a
//! genetic algorithm, and only the GA's winner is actually executed.

use confspace::{crossover, mutate, Configuration, LatinHypercube, ParamSpace, Sampler};
use models::{ForestParams, RandomForest};
use rand::{Rng, RngCore};

use crate::objective::Observation;
use crate::tuner::{encode_history, Tuner};

/// Surrogate-assisted genetic configuration search.
#[derive(Debug, Clone)]
pub struct Genetic {
    /// Warm-up design size before the surrogate takes over.
    pub init_samples: usize,
    /// GA population size.
    pub population: usize,
    /// GA generations per proposal.
    pub generations: usize,
    /// Per-parameter mutation probability.
    pub mutation_rate: f64,
    pending_init: Vec<Configuration>,
}

impl Default for Genetic {
    fn default() -> Self {
        Self::new()
    }
}

impl Genetic {
    /// Creates the strategy with DAC-like defaults.
    pub fn new() -> Self {
        Genetic {
            init_samples: 10,
            population: 40,
            generations: 8,
            mutation_rate: 0.08,
            pending_init: Vec::new(),
        }
    }

    /// Fits the forest surrogate and runs one full GA, returning the
    /// final population sorted by predicted runtime (best first).
    fn evolve(
        &self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Vec<(f64, Configuration)> {
        let mut ranked: Vec<&Observation> = history.iter().filter(|o| o.is_ok()).collect();
        ranked.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));

        // Fit the surrogate on everything observed so far.
        let (x, y) = encode_history(space, history);
        let forest = RandomForest::fit(&x, &y, ForestParams::default(), rng);
        let score = |c: &Configuration| forest.predict(&space.encode(c));

        // Seed the population with the best observed configs + randoms.
        let mut pop: Vec<Configuration> = ranked
            .iter()
            .take(self.population / 4)
            .map(|o| o.config.clone())
            .collect();
        while pop.len() < self.population {
            pop.push(LatinHypercube.sample(space, rng));
        }

        for _ in 0..self.generations {
            let mut scored: Vec<(f64, Configuration)> =
                pop.into_iter().map(|c| (score(&c), c)).collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            let elite = self.population / 4;
            let mut next: Vec<Configuration> =
                scored.iter().take(elite).map(|s| s.1.clone()).collect();
            while next.len() < self.population {
                // Tournament selection from the top half.
                let half = (self.population / 2).max(2);
                let a = &scored[rng.gen_range(0..half.min(scored.len()))].1;
                let b = &scored[rng.gen_range(0..half.min(scored.len()))].1;
                let child = crossover(space, a, b, rng);
                next.push(mutate(space, &child, self.mutation_rate, rng));
            }
            pop = next;
        }

        let mut final_scored: Vec<(f64, Configuration)> =
            pop.into_iter().map(|c| (score(&c), c)).collect();
        final_scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        final_scored
    }
}

impl Tuner for Genetic {
    fn name(&self) -> &str {
        "genetic"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        if history.len() < self.init_samples {
            if self.pending_init.is_empty() {
                self.pending_init = LatinHypercube.sample_n(space, self.init_samples, rng);
            }
            if let Some(c) = self.pending_init.pop() {
                return c;
            }
        }

        let mut ranked: Vec<&Observation> = history.iter().filter(|o| o.is_ok()).collect();
        ranked.sort_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s));

        // The forest surrogate is piecewise-constant, so within its
        // best leaf it cannot rank candidates; every third proposal is
        // a direct Gaussian nudge of the incumbent, refining below the
        // surrogate's resolution.
        if history.len() % 3 == 2 {
            if let Some(best) = ranked.first() {
                let enc = space.encode(&best.config);
                let nudged: Vec<f64> = enc
                    .iter()
                    .map(|v| {
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen();
                        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        (v + 0.06 * gauss).clamp(0.0, 1.0)
                    })
                    .collect();
                let cand = space.decode(&nudged);
                if space.validate(&cand).is_ok() {
                    return cand;
                }
            }
        }

        // Return the surrogate-best individual not evaluated yet.
        let final_scored = self.evolve(space, history, rng);
        for (_, c) in &final_scored {
            if !history.iter().any(|o| &o.config == c) {
                return c.clone();
            }
        }
        final_scored
            .into_iter()
            .next()
            .map(|(_, c)| c)
            .unwrap_or_else(|| space.default_configuration())
    }

    /// Native batch: one GA run supplies the whole generation — the
    /// top-`q` distinct, not-yet-evaluated individuals of the final
    /// population, topped up with stratified samples when the
    /// population cannot fill the batch.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        if q <= 1 {
            return vec![self.propose(space, history, rng)];
        }
        if history.len() < self.init_samples {
            return (0..q).map(|_| self.propose(space, history, rng)).collect();
        }
        let final_scored = self.evolve(space, history, rng);
        let mut out: Vec<Configuration> = Vec::with_capacity(q);
        for (_, c) in &final_scored {
            if out.len() >= q {
                break;
            }
            if history.iter().any(|o| &o.config == c) || out.contains(c) {
                continue;
            }
            out.push(c.clone());
        }
        while out.len() < q {
            out.push(LatinHypercube.sample(space, rng));
        }
        out
    }

    fn reset(&mut self) {
        self.pending_init.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn genetic_improves_on_a_synthetic_surface() {
        let space = ParamSpace::new()
            .with(confspace::ParamDef::int("a", 0, 100, 50, ""))
            .with(confspace::ParamDef::int("b", 0, 100, 50, ""));
        let eval = |c: &Configuration| {
            let a = c.int("a") as f64;
            let b = c.int("b") as f64;
            5.0 + ((a - 20.0) / 15.0).powi(2) + ((b - 80.0) / 15.0).powi(2)
        };
        let mut t = Genetic::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut history = Vec::new();
        for _ in 0..30 {
            let cfg = t.propose(&space, &history, &mut rng);
            assert!(space.validate(&cfg).is_ok());
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        let best = crate::tuner::best_observation(&history).unwrap().runtime_s;
        let init_best = crate::tuner::best_so_far(&history)[t.init_samples - 1];
        assert!(
            best <= init_best,
            "GA should not regress: {best} vs {init_best}"
        );
        assert!(best < 9.0, "best {best}");
    }

    #[test]
    fn avoids_re_proposing_evaluated_configs() {
        let space = ParamSpace::new().with(confspace::ParamDef::int("a", 0, 3, 0, ""));
        let mut t = Genetic::new();
        t.init_samples = 2;
        let mut rng = StdRng::seed_from_u64(5);
        let mut history = Vec::new();
        for _ in 0..4 {
            let cfg = t.propose(&space, &history, &mut rng);
            history.push(Observation {
                runtime_s: cfg.int("a") as f64 + 1.0,
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        // With only 4 configs in the space, all 4 should be covered.
        let mut seen: Vec<i64> = history.iter().map(|o| o.config.int("a")).collect();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 3, "explored {seen:?}");
    }
}
