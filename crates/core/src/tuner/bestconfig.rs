//! BestConfig (Zhu et al. \[35\]): divide-and-diverge sampling plus
//! recursive bound-and-search.
//!
//! Each round draws a stratified batch of `k` samples inside the
//! current bounds. If the round improved on the incumbent, the bounds
//! *contract* around the new best (recursive bound-and-search); if it
//! did not, the search *diverges*: bounds reset to the full space and a
//! fresh stratified cover is drawn. The paper cites its ~500-sample
//! budget as the canonical example of costs end-users cannot amortize
//! (§IV-C) — which experiment E5/E6 reproduce.

use confspace::{Configuration, ParamSpace};
use rand::{Rng, RngCore};

use crate::objective::Observation;
use crate::tuner::{best_observation, Tuner};

/// BestConfig's DDS + RBS strategy.
#[derive(Debug, Clone)]
pub struct BestConfig {
    /// Samples per round (the "divide" factor).
    pub k: usize,
    /// Bound-contraction factor per improving round.
    pub contraction: f64,
    lo: Vec<f64>,
    hi: Vec<f64>,
    pending: Vec<Configuration>,
    round_start: usize,
    best_at_round_start: f64,
}

impl BestConfig {
    /// Creates the strategy with `k` samples per round.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        BestConfig {
            k,
            contraction: 0.5,
            lo: Vec::new(),
            hi: Vec::new(),
            pending: Vec::new(),
            round_start: 0,
            best_at_round_start: f64::INFINITY,
        }
    }

    fn ensure_bounds(&mut self, dims: usize) {
        if self.lo.len() != dims {
            self.lo = vec![0.0; dims];
            self.hi = vec![1.0; dims];
        }
    }

    /// Stratified batch of `k` points inside the current bounds.
    fn sample_round(&self, space: &ParamSpace, rng: &mut dyn RngCore) -> Vec<Configuration> {
        let d = space.len();
        let n = self.k;
        // Per-dimension stratum permutations (LHS inside the box).
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut p: Vec<usize> = (0..n).collect();
            // Fisher-Yates with the dyn rng.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                p.swap(i, j);
            }
            perms.push(p);
        }
        (0..n)
            .map(|i| {
                let v: Vec<f64> = (0..d)
                    .map(|j| {
                        let u = (perms[j][i] as f64 + rng.gen::<f64>()) / n as f64;
                        self.lo[j] + u * (self.hi[j] - self.lo[j])
                    })
                    .collect();
                space.decode(&v)
            })
            .collect()
    }

    fn contract_around(&mut self, center: &[f64]) {
        for (j, &c) in center.iter().enumerate() {
            let radius = (self.hi[j] - self.lo[j]) * self.contraction / 2.0;
            self.lo[j] = (c - radius).max(0.0);
            self.hi[j] = (c + radius).min(1.0);
        }
    }

    fn diverge(&mut self) {
        for j in 0..self.lo.len() {
            self.lo[j] = 0.0;
            self.hi[j] = 1.0;
        }
    }
}

impl Tuner for BestConfig {
    fn name(&self) -> &str {
        "bestconfig"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        self.ensure_bounds(space.len());

        if self.pending.is_empty() {
            // A round just completed (or this is the first). Decide
            // whether to bound or diverge.
            let best_now = best_observation(history)
                .map(|o| o.runtime_s)
                .unwrap_or(f64::INFINITY);
            if history.len() > self.round_start {
                match best_observation(history) {
                    Some(best) if best_now < self.best_at_round_start => {
                        let center = space.encode(&best.config);
                        self.contract_around(&center);
                    }
                    _ => self.diverge(),
                }
            }
            self.round_start = history.len();
            self.best_at_round_start = best_now;
            self.pending = self.sample_round(space, rng);
        }

        // `k > 0` means the round is never empty, but an exhausted
        // round must not abort a multi-tenant service: fall back to the
        // space defaults.
        let cand = self
            .pending
            .pop()
            .unwrap_or_else(|| space.default_configuration());
        if space.validate(&cand).is_ok() {
            cand
        } else {
            space.clamp(&cand)
        }
    }

    /// Native batch: the divide-and-diverge round *is* the batch —
    /// draining `q` proposals against the same (real) history pops the
    /// current stratified round, re-deciding bound/diverge only at
    /// round boundaries. No constant-liar augmentation, which would
    /// feed fake improvements into the contraction logic.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        (0..q.max(1))
            .map(|_| self.propose(space, history, rng))
            .collect()
    }

    fn reset(&mut self) {
        self.lo.clear();
        self.hi.clear();
        self.pending.clear();
        self.round_start = 0;
        self.best_at_round_start = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(confspace::ParamDef::float("x", 0.0, 1.0, 0.5, ""))
            .with(confspace::ParamDef::float("y", 0.0, 1.0, 0.5, ""))
    }

    fn eval(c: &Configuration) -> f64 {
        let x = c.float("x");
        let y = c.float("y");
        (x - 0.8).powi(2) + (y - 0.2).powi(2) + 1.0
    }

    #[test]
    fn bounds_contract_after_improvement() {
        let s = space();
        let mut t = BestConfig::new(6);
        let mut rng = StdRng::seed_from_u64(1);
        let mut history = Vec::new();
        // Run two full rounds.
        for _ in 0..12 {
            let cfg = t.propose(&s, &history, &mut rng);
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        // Trigger round-boundary logic.
        let _ = t.propose(&s, &history, &mut rng);
        let width: f64 = t.hi.iter().zip(&t.lo).map(|(h, l)| h - l).sum();
        assert!(width < 2.0, "bounds should have contracted: {width}");
    }

    #[test]
    fn converges_near_optimum() {
        let s = space();
        let mut t = BestConfig::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut history = Vec::new();
        for _ in 0..64 {
            let cfg = t.propose(&s, &history, &mut rng);
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        let best = best_observation(&history).unwrap().runtime_s;
        assert!(best < 1.02, "best {best} (optimum 1.0)");
    }

    #[test]
    fn diverges_when_stuck() {
        let s = space();
        let mut t = BestConfig::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        // Feed a history where nothing ever improves: constant runtimes.
        let mut history = Vec::new();
        for _ in 0..16 {
            let cfg = t.propose(&s, &history, &mut rng);
            history.push(Observation {
                runtime_s: 100.0,
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        let _ = t.propose(&s, &history, &mut rng);
        // After diverging, bounds must span the full space again.
        let width: f64 = t.hi.iter().zip(&t.lo).map(|(h, l)| h - l).sum();
        assert!(
            (width - 2.0).abs() < 1e-9,
            "expected full bounds, got {width}"
        );
    }

    #[test]
    fn proposals_are_always_valid() {
        let s = confspace::spark::spark_space();
        let mut t = BestConfig::new(10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut history = Vec::new();
        for i in 0..30 {
            let cfg = t.propose(&s, &history, &mut rng);
            assert!(s.validate(&cfg).is_ok(), "proposal {i} invalid");
            history.push(Observation {
                runtime_s: 50.0 + (i % 7) as f64,
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
    }
}
