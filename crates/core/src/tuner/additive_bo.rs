//! Bayesian optimization with an *additive* GP kernel (Duvenaud et
//! al.), the paper's §V-A candidate for interpretable, transferable
//! tuning models: each configuration dimension contributes an
//! independent 1-D effect, which is both decomposable (the tuning
//! knowledge per parameter can be read off) and more data-efficient in
//! high dimensions when interactions are weak.

use confspace::{Configuration, ParamSpace};
use models::Kernel;
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::{bo::BayesOpt, Tuner};

/// BO with a first-order additive kernel.
#[derive(Debug, Clone)]
pub struct AdditiveBayesOpt {
    inner: BayesOpt,
}

impl Default for AdditiveBayesOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl AdditiveBayesOpt {
    /// Creates the strategy.
    pub fn new() -> Self {
        AdditiveBayesOpt {
            inner: BayesOpt::with_kernel(Kernel::Additive {
                length_scale: 0.3,
                variance: 1.0,
            }),
        }
    }
}

impl Tuner for AdditiveBayesOpt {
    fn name(&self) -> &str {
        "additive-bo"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        self.inner.propose(space, history, rng)
    }

    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        self.inner.propose_batch(space, history, q, rng)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proposals_are_valid() {
        let space = confspace::spark::spark_space();
        let mut t = AdditiveBayesOpt::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut history = Vec::new();
        for _ in 0..12 {
            let cfg = t.propose(&space, &history, &mut rng);
            assert!(space.validate(&cfg).is_ok());
            history.push(Observation {
                runtime_s: 100.0 + history.len() as f64,
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
    }

    #[test]
    fn additive_bo_excels_on_separable_objectives() {
        // Fully separable 6-D objective: the additive kernel's home turf.
        let space = {
            let mut s = ParamSpace::new();
            for d in 0..6 {
                s.add(confspace::ParamDef::int(&format!("p{d}"), 0, 100, 50, ""));
            }
            s
        };
        let eval = |c: &Configuration| -> f64 {
            (0..6)
                .map(|d| {
                    let v = c.int(&format!("p{d}")) as f64;
                    ((v - 10.0 * d as f64) / 20.0).powi(2)
                })
                .sum::<f64>()
                + 5.0
        };
        let mut t = AdditiveBayesOpt::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut history = Vec::new();
        for _ in 0..35 {
            let cfg = t.propose(&space, &history, &mut rng);
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        let best = crate::tuner::best_observation(&history).unwrap().runtime_s;
        assert!(best < 8.5, "best {best} (optimum 5.0)");
    }
}
