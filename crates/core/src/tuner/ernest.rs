//! Ernest (Venkataraman et al. \[28\]): an analytic machine-scaling model
//! fitted on a small designed experiment, used to pick the cluster
//! size (and, here, family) for a job.
//!
//! Ernest's model `t(m) = θ₀ + θ₁/m + θ₂·log m + θ₃·m` captures
//! scale-out behaviour of ML-style jobs extremely data-efficiently —
//! and §II-A (citing CherryPick) notes its poor adaptivity beyond that
//! niche. Both behaviours are visible here: on cloud spaces it runs a
//! tiny designed experiment per instance family and extrapolates; on
//! spaces without a machine-count dimension (e.g. the 26-parameter DISC
//! space) the model has nothing to grip and the strategy degrades to
//! random search — reproducing the paper's "poor adaptivity" point.

use confspace::cloud::names as cn;
use confspace::{Configuration, ParamKind, ParamSpace, Sampler, UniformSampler};
use models::ErnestModel;
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::Tuner;

/// Ernest's designed-experiment + analytic-model strategy.
#[derive(Debug, Clone, Default)]
pub struct Ernest {
    design: Vec<Configuration>,
    design_built: bool,
}

impl Ernest {
    /// Creates the strategy.
    pub fn new() -> Self {
        Ernest::default()
    }

    fn families(space: &ParamSpace) -> Vec<String> {
        space
            .param(cn::INSTANCE_FAMILY)
            .map(|p| match &p.kind {
                ParamKind::Categorical { choices } => choices.clone(),
                _ => Vec::new(),
            })
            .unwrap_or_default()
    }

    fn node_range(space: &ParamSpace) -> Option<(i64, i64)> {
        space.param(cn::NODE_COUNT).and_then(|p| match p.kind {
            ParamKind::Int { lo, hi, .. } => Some((lo, hi)),
            _ => None,
        })
    }

    fn make_config(space: &ParamSpace, family: &str, nodes: i64) -> Configuration {
        let cfg = space
            .default_configuration()
            .with(cn::INSTANCE_FAMILY, family)
            .with(cn::INSTANCE_SIZE, "xlarge")
            .with(cn::NODE_COUNT, nodes);
        space.clamp(&cfg)
    }

    fn build_design(&mut self, space: &ParamSpace) {
        let Some((lo, hi)) = Self::node_range(space) else {
            return;
        };
        let probes = [lo.max(2), ((lo + hi) / 3).max(lo + 1)];
        for family in Self::families(space) {
            for &m in &probes {
                self.design.push(Self::make_config(space, &family, m));
            }
        }
        self.design.reverse();
    }
}

impl Tuner for Ernest {
    fn name(&self) -> &str {
        "ernest"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        let Some((lo, hi)) = Self::node_range(space) else {
            // No machine-scale dimension: the model does not apply
            // (the paper's "poor adaptivity" case) — random search.
            return UniformSampler.sample(space, rng);
        };

        if !self.design_built {
            self.build_design(space);
            self.design_built = true;
        }
        if let Some(c) = self.design.pop() {
            return c;
        }

        // Fit one scaling model per family on its observations, then
        // propose the (family, m) minimizing predicted runtime among
        // combinations not yet evaluated.
        let mut best: Option<(f64, Configuration)> = None;
        for family in Self::families(space) {
            let obs: Vec<&Observation> = history
                .iter()
                .filter(|o| {
                    o.config
                        .get(cn::INSTANCE_FAMILY)
                        .and_then(|v| v.as_str())
                        .is_some_and(|f| f == family)
                })
                .collect();
            if obs.len() < 2 {
                continue;
            }
            let pts: Vec<(f64, f64)> = obs
                .iter()
                .map(|o| (o.config.int(cn::NODE_COUNT) as f64, 1.0))
                .collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.runtime_s).collect();
            let Ok(model) = ErnestModel::fit(&pts, &ys) else {
                continue;
            };
            for m in lo..=hi {
                let cfg = Self::make_config(space, &family, m);
                if history.iter().any(|o| o.config == cfg) {
                    continue;
                }
                let pred = model.predict(m as f64, 1.0);
                if best.as_ref().is_none_or(|(b, _)| pred < *b) {
                    best = Some((pred, cfg));
                }
            }
        }
        best.map(|(_, c)| c)
            .unwrap_or_else(|| UniformSampler.sample(space, rng))
    }

    fn reset(&mut self) {
        self.design.clear();
        self.design_built = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::cloud::cloud_space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn design_covers_every_family() {
        let space = cloud_space();
        let mut t = Ernest::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        let mut history = Vec::new();
        for _ in 0..10 {
            let cfg = t.propose(&space, &history, &mut rng);
            assert!(space.validate(&cfg).is_ok());
            seen.insert(cfg.str(cn::INSTANCE_FAMILY).to_owned());
            history.push(Observation {
                runtime_s: 100.0 / cfg.int(cn::NODE_COUNT) as f64,
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        assert_eq!(seen.len(), 5, "all families probed: {seen:?}");
    }

    #[test]
    fn model_phase_scales_out_when_runtime_improves_with_nodes() {
        let space = cloud_space();
        let mut t = Ernest::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut history = Vec::new();
        // Synthetic truth: perfectly parallel work, m5 slightly best.
        let eval = |c: &Configuration| {
            let m = c.int(cn::NODE_COUNT) as f64;
            let fam = if c.str(cn::INSTANCE_FAMILY) == "m5" {
                0.9
            } else {
                1.0
            };
            fam * (5.0 + 200.0 / m + 0.1 * m)
        };
        for _ in 0..16 {
            let cfg = t.propose(&space, &history, &mut rng);
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        // Post-design proposals should move to large node counts.
        let last = &history.last().unwrap().config;
        assert!(last.int(cn::NODE_COUNT) >= 8, "{last}");
    }

    #[test]
    fn falls_back_to_random_on_disc_space() {
        let space = confspace::spark::spark_space();
        let mut t = Ernest::new();
        let mut rng = StdRng::seed_from_u64(3);
        let a = t.propose(&space, &[], &mut rng);
        let b = t.propose(&space, &[], &mut rng);
        assert!(space.validate(&a).is_ok());
        assert_ne!(a, b, "fallback behaves like random search");
    }
}
