//! MROnline-style hill climbing (Li et al. \[25\]): greedy neighbourhood
//! moves from the incumbent with step-size decay and random restarts.
//!
//! MROnline bounds the search with rule-of-thumb starting points; we
//! start from the space's defaults (Spark's shipped configuration), the
//! analogous "sensible prior".

use confspace::{neighbor, Configuration, ParamSpace, Sampler, UniformSampler};
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::{best_observation, Tuner};

/// Restart hill climbing over configuration neighbourhoods.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Relative step size (fraction of each parameter's range).
    scale: f64,
    /// Consecutive non-improving proposals since the last improvement.
    stall: usize,
    /// Proposals between random restarts when stalled.
    restart_after: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        Self::new()
    }
}

impl HillClimb {
    /// Creates the strategy with default step size (8% of range) and
    /// restart patience (20 stalled proposals).
    pub fn new() -> Self {
        HillClimb {
            scale: 0.08,
            stall: 0,
            restart_after: 20,
        }
    }
}

impl Tuner for HillClimb {
    fn name(&self) -> &str {
        "hillclimb"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        // First proposal: the defaults (MROnline's rule-based start).
        let Some(best) = best_observation(history) else {
            return if history.is_empty() {
                space.default_configuration()
            } else {
                // Defaults failed outright; explore randomly.
                UniformSampler.sample(space, rng)
            };
        };

        // Track stalling: did the last observation improve on the best
        // before it?
        if let Some(last) = history.last() {
            let prior_best = best_observation(&history[..history.len() - 1]);
            let improved = last.is_ok() && prior_best.is_none_or(|p| last.runtime_s < p.runtime_s);
            if improved {
                self.stall = 0;
                self.scale = 0.08;
            } else {
                self.stall += 1;
                // Gentle annealing towards finer moves.
                self.scale = (self.scale * 0.98).max(0.02);
            }
        }

        if self.stall >= self.restart_after {
            self.stall = 0;
            self.scale = 0.08;
            return UniformSampler.sample(space, rng);
        }

        neighbor(space, &best.config, self.scale, 0.4, rng)
    }

    /// Native batch: parallel restarts around the incumbent. The first
    /// member runs the normal stall/anneal bookkeeping (exactly one
    /// update per observed history, as in the sequential loop); the
    /// rest fan out at progressively coarser step scales, with every
    /// fourth member a uniform restart.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        if q <= 1 {
            return vec![self.propose(space, history, rng)];
        }
        let mut out = Vec::with_capacity(q);
        out.push(self.propose(space, history, rng));
        let incumbent = best_observation(history).map(|o| o.config.clone());
        for i in 1..q {
            match &incumbent {
                Some(best) if i % 4 != 3 => {
                    let scale = (self.scale * (1.0 + i as f64 * 0.5)).min(0.5);
                    out.push(neighbor(space, best, scale, 0.4, rng));
                }
                _ => out.push(UniformSampler.sample(space, rng)),
            }
        }
        out
    }

    fn reset(&mut self) {
        *self = HillClimb::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FAILURE_PENALTY_S;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn obs(space: &ParamSpace, cfg: Configuration, runtime: f64) -> Observation {
        let _ = space;
        Observation {
            config: cfg,
            runtime_s: runtime,
            cost_usd: 0.0,
            metrics: None,
            failure: if runtime >= FAILURE_PENALTY_S {
                Some(simcluster::FailureKind::DriverOom)
            } else {
                None
            },
        }
    }

    #[test]
    fn first_proposal_is_the_default() {
        let space = confspace::spark::spark_space();
        let mut t = HillClimb::new();
        let mut rng = StdRng::seed_from_u64(1);
        let c = t.propose(&space, &[], &mut rng);
        assert_eq!(c, space.default_configuration());
    }

    #[test]
    fn proposals_stay_near_the_incumbent() {
        let space = confspace::spark::spark_space();
        let mut t = HillClimb::new();
        let mut rng = StdRng::seed_from_u64(2);
        let best_cfg = space.default_configuration();
        let history = vec![obs(&space, best_cfg.clone(), 100.0)];
        let c = t.propose(&space, &history, &mut rng);
        assert!(space.validate(&c).is_ok());
        // Encoded distance should be small for a neighbourhood move.
        let a = space.encode(&best_cfg);
        let b = space.encode(&c);
        let dist: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist < 1.0, "moved too far: {dist}");
    }

    #[test]
    fn restarts_after_prolonged_stall() {
        let space = confspace::spark::spark_space();
        let mut t = HillClimb::new();
        let mut rng = StdRng::seed_from_u64(3);
        let base = space.default_configuration();
        let mut history = vec![obs(&space, base.clone(), 100.0)];
        // Feed non-improving observations past the patience threshold.
        let mut restarted = false;
        for _ in 0..40 {
            let c = t.propose(&space, &history, &mut rng);
            let a = space.encode(&base);
            let b = space.encode(&c);
            let dist: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            if dist > 1.2 {
                restarted = true;
                break;
            }
            history.push(obs(&space, c, 150.0));
        }
        assert!(restarted, "expected a random restart");
    }
}
