//! PARIS-style random-forest surrogate search (Yadwadkar et al. \[30\]):
//! a bagged forest models the configuration→runtime surface and
//! candidates are ranked by a lower confidence bound over the
//! ensemble's mean and spread.

use confspace::{Configuration, LatinHypercube, ParamSpace, Sampler, UniformSampler};
use models::{lower_confidence_bound, ForestParams, RandomForest};
use rand::RngCore;

use crate::objective::{Observation, FAILURE_PENALTY_S};
use crate::tuner::{encode_censored, encode_history, Tuner};

/// Squared bandwidth of the censored-region penalty (h = 0.2 in the
/// unit-normalized encoded space, matching the BO batch penalty).
const CENSOR_BANDWIDTH_SQ: f64 = 0.04;

/// Random-forest surrogate search with LCB acquisition.
#[derive(Debug, Clone)]
pub struct ForestTuner {
    /// Warm-up design size.
    pub init_samples: usize,
    /// Candidates scored per proposal.
    pub candidates: usize,
    /// Exploration weight on the ensemble spread.
    pub beta: f64,
    pending_init: Vec<Configuration>,
}

impl Default for ForestTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl ForestTuner {
    /// Creates the strategy.
    pub fn new() -> Self {
        ForestTuner {
            init_samples: 10,
            candidates: 256,
            beta: 1.0,
            pending_init: Vec::new(),
        }
    }
}

impl Tuner for ForestTuner {
    fn name(&self) -> &str {
        "forest"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        // Censored observations don't count towards warm-up: the
        // forest needs real measurements to fit.
        let survivors = history.iter().filter(|o| !o.is_censored()).count();
        if survivors < self.init_samples {
            if self.pending_init.is_empty() {
                self.pending_init = LatinHypercube.sample_n(space, self.init_samples, rng);
            }
            if let Some(c) = self.pending_init.pop() {
                return c;
            }
        }
        let (x, y) = encode_history(space, history);
        let forest = RandomForest::fit(&x, &y, ForestParams::default(), rng);
        let censored = encode_censored(space, history);
        UniformSampler
            .sample_n(space, self.candidates, rng)
            .into_iter()
            .map(|c| {
                let point = space.encode(&c);
                let (m, s) = forest.predict_with_std(&point);
                let mut score = lower_confidence_bound(m, s, self.beta);
                if !censored.is_empty() {
                    // LCB minimizes, so censored regions add a penalty
                    // proportional to proximity — the forest has no data
                    // there and must not look optimistic.
                    let proximity = censored
                        .iter()
                        .map(|bad| {
                            let d2: f64 =
                                point.iter().zip(bad).map(|(a, b)| (a - b) * (a - b)).sum();
                            (-d2 / (2.0 * CENSOR_BANDWIDTH_SQ)).exp()
                        })
                        .fold(0.0, f64::max);
                    score += FAILURE_PENALTY_S.ln() * proximity;
                }
                (c, score)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .unwrap_or_else(|| space.default_configuration())
    }

    fn reset(&mut self) {
        self.pending_init.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forest_tuner_improves_over_warmup() {
        let space = ParamSpace::new()
            .with(confspace::ParamDef::int("a", 0, 100, 50, ""))
            .with(confspace::ParamDef::int("b", 0, 100, 50, ""));
        let eval = |c: &Configuration| {
            let a = c.int("a") as f64;
            let b = c.int("b") as f64;
            3.0 + ((a - 90.0) / 20.0).powi(2) + ((b - 10.0) / 20.0).powi(2)
        };
        let mut t = ForestTuner::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut history = Vec::new();
        for _ in 0..35 {
            let cfg = t.propose(&space, &history, &mut rng);
            assert!(space.validate(&cfg).is_ok());
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        let curve = crate::tuner::best_so_far(&history);
        assert!(
            curve.last().unwrap() < &curve[t.init_samples - 1],
            "model phase should beat warm-up"
        );
    }
}
