//! Wang et al. \[29\]: regression-tree surrogate search — fit a CART
//! model on the observations, then evaluate the candidate the tree
//! predicts fastest (with ε-greedy exploration, since a single tree's
//! piecewise-constant surface is easy to get stuck on).

use confspace::{Configuration, LatinHypercube, ParamSpace, Sampler, UniformSampler};
use models::{RegressionTree, TreeParams};
use rand::{Rng, RngCore};

use crate::objective::Observation;
use crate::tuner::{encode_history, Tuner};

/// Regression-tree surrogate search.
#[derive(Debug, Clone)]
pub struct RegressionTreeTuner {
    /// Warm-up design size.
    pub init_samples: usize,
    /// Candidates scored per proposal.
    pub candidates: usize,
    /// Probability of proposing a purely random configuration.
    pub epsilon: f64,
    pending_init: Vec<Configuration>,
}

impl Default for RegressionTreeTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl RegressionTreeTuner {
    /// Creates the strategy.
    pub fn new() -> Self {
        RegressionTreeTuner {
            init_samples: 10,
            candidates: 256,
            epsilon: 0.15,
            pending_init: Vec::new(),
        }
    }
}

impl Tuner for RegressionTreeTuner {
    fn name(&self) -> &str {
        "rtree"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        if history.len() < self.init_samples {
            if self.pending_init.is_empty() {
                self.pending_init = LatinHypercube.sample_n(space, self.init_samples, rng);
            }
            if let Some(c) = self.pending_init.pop() {
                return c;
            }
        }
        if rng.gen::<f64>() < self.epsilon {
            return UniformSampler.sample(space, rng);
        }
        let (x, y) = encode_history(space, history);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), rng);
        UniformSampler
            .sample_n(space, self.candidates, rng)
            .into_iter()
            .map(|c| {
                let pred = tree.predict(&space.encode(&c));
                (c, pred)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
            .unwrap_or_else(|| space.default_configuration())
    }

    fn reset(&mut self) {
        self.pending_init.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_tuner_finds_the_good_half_space() {
        // A step objective: everything with a<50 is fast.
        let space = ParamSpace::new()
            .with(confspace::ParamDef::int("a", 0, 100, 50, ""))
            .with(confspace::ParamDef::int("b", 0, 100, 50, ""));
        let eval = |c: &Configuration| if c.int("a") < 50 { 10.0 } else { 100.0 };
        let mut t = RegressionTreeTuner::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut history = Vec::new();
        for _ in 0..30 {
            let cfg = t.propose(&space, &history, &mut rng);
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        // After warm-up, the vast majority of proposals should be fast.
        let post: Vec<&Observation> = history.iter().skip(t.init_samples).collect();
        let fast = post.iter().filter(|o| o.runtime_s < 50.0).count();
        assert!(
            fast * 10 >= post.len() * 6,
            "{fast}/{} proposals in the good half-space",
            post.len()
        );
    }
}
