//! Uniform random search — the methodology behind the paper's own
//! Table I experiment ("we ran the workload using 100 random
//! configurations to find the best configuration").

use confspace::{Configuration, LatinHypercube, ParamSpace, Sampler, UniformSampler};
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::Tuner;

/// Uniform random search over the space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl Tuner for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        _history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        UniformSampler.sample(space, rng)
    }

    /// Native batch: one stratified block per round — a batch of
    /// i.i.d. draws wastes budget on clustered samples, an LHS block of
    /// the same size guarantees per-dimension coverage for free.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        if q <= 1 {
            return vec![self.propose(space, history, rng)];
        }
        LatinHypercube.sample_n(space, q, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proposals_are_valid_and_varied() {
        let space = confspace::spark::spark_space();
        let mut t = RandomSearch;
        let mut rng = StdRng::seed_from_u64(1);
        let a = t.propose(&space, &[], &mut rng);
        let b = t.propose(&space, &[], &mut rng);
        assert!(space.validate(&a).is_ok());
        assert!(space.validate(&b).is_ok());
        assert_ne!(a, b);
    }
}
