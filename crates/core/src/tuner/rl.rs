//! Bu et al. \[11\]: online reinforcement-learning configuration tuning
//! (they tuned 8 web-server parameters in ~25 executions).
//!
//! A faithful-in-spirit adaptation: the agent holds a current
//! configuration and a Q-value per *action* (nudge one parameter up,
//! down, or cycle a discrete choice). Each step it ε-greedily picks an
//! action, proposes the nudged configuration, observes the runtime, and
//! updates the action's Q-value with the relative improvement —
//! hill-climbing with learned step preferences. Works well in small
//! spaces (the paper's 6–12-parameter regime §II-B describes) and,
//! like MROnline, struggles as dimensionality grows — both visible in
//! E5.

use confspace::{Configuration, ParamKind, ParamSpace};
use rand::{Rng, RngCore};

use crate::objective::Observation;
use crate::tuner::{best_observation, Tuner};

/// One nudge action on one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Move {
    /// Increase a numeric parameter by one step.
    Up,
    /// Decrease a numeric parameter by one step.
    Down,
    /// Cycle a boolean/categorical to its next value.
    Cycle,
}

/// Q-learning over per-parameter nudge actions.
#[derive(Debug, Clone)]
pub struct RlTuner {
    /// Exploration probability.
    pub epsilon: f64,
    /// Q-value learning rate.
    pub alpha: f64,
    /// Relative step for numeric nudges (fraction of the range).
    pub step: f64,
    q: Vec<f64>,
    actions: Vec<(usize, Move)>,
    current: Option<Configuration>,
    current_runtime: f64,
    last_action: Option<usize>,
}

impl Default for RlTuner {
    fn default() -> Self {
        Self::new()
    }
}

impl RlTuner {
    /// Creates the agent with Bu-et-al-like settings.
    pub fn new() -> Self {
        RlTuner {
            epsilon: 0.25,
            alpha: 0.4,
            step: 0.15,
            q: Vec::new(),
            actions: Vec::new(),
            current: None,
            current_runtime: f64::INFINITY,
            last_action: None,
        }
    }

    fn build_actions(&mut self, space: &ParamSpace) {
        if !self.actions.is_empty() {
            return;
        }
        for (i, p) in space.params().iter().enumerate() {
            match p.kind {
                ParamKind::Int { .. } | ParamKind::Float { .. } => {
                    self.actions.push((i, Move::Up));
                    self.actions.push((i, Move::Down));
                }
                ParamKind::Bool | ParamKind::Categorical { .. } => {
                    self.actions.push((i, Move::Cycle));
                }
            }
        }
        self.q = vec![0.0; self.actions.len()];
    }

    fn apply(
        &self,
        space: &ParamSpace,
        cfg: &Configuration,
        action: (usize, Move),
    ) -> Configuration {
        let (dim, mv) = action;
        let p = &space.params()[dim];
        let mut v = space.encode(cfg);
        match (&p.kind, mv) {
            (ParamKind::Bool, _) => {
                v[dim] = 1.0 - v[dim].round();
            }
            (ParamKind::Categorical { choices }, _) => {
                let n = choices.len().max(1) as f64;
                let idx = (v[dim] * (n - 1.0)).round();
                let next = (idx + 1.0) % n;
                v[dim] = if n > 1.0 { next / (n - 1.0) } else { 0.0 };
            }
            (_, Move::Up) => v[dim] = (v[dim] + self.step).min(1.0),
            (_, Move::Down) => v[dim] = (v[dim] - self.step).max(0.0),
            (_, Move::Cycle) => {}
        }
        let cand = space.decode(&v);
        if space.validate(&cand).is_ok() {
            cand
        } else {
            space.clamp(cfg)
        }
    }
}

impl Tuner for RlTuner {
    fn name(&self) -> &str {
        "rl"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        self.build_actions(space);

        // Learn from the outcome of the previous proposal.
        if let (Some(a), Some(last)) = (self.last_action, history.last()) {
            let reward = if last.is_ok() && last.runtime_s.is_finite() {
                (self.current_runtime - last.runtime_s) / self.current_runtime.max(1e-9)
            } else {
                -1.0
            };
            self.q[a] += self.alpha * (reward.clamp(-1.0, 1.0) - self.q[a]);
            if last.is_ok() && last.runtime_s < self.current_runtime {
                self.current = Some(last.config.clone());
                self.current_runtime = last.runtime_s;
            }
        } else if let Some(best) = best_observation(history) {
            // Adopt any pre-existing (e.g. donated) incumbent.
            self.current = Some(best.config.clone());
            self.current_runtime = best.runtime_s;
        }

        // First proposal: the defaults (their web-server baseline).
        let Some(current) = self.current.clone() else {
            self.last_action = None;
            self.current = Some(space.default_configuration());
            return space.default_configuration();
        };

        // ε-greedy action selection.
        let a = if rng.gen::<f64>() < self.epsilon {
            rng.gen_range(0..self.actions.len())
        } else {
            self.q
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .map_or(0, |(i, _)| i)
        };
        self.last_action = Some(a);
        self.apply(space, &current, self.actions[a])
    }

    fn reset(&mut self) {
        *self = RlTuner::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::ParamDef;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(ParamDef::int("a", 0, 100, 50, ""))
            .with(ParamDef::boolean("b", false, ""))
            .with(ParamDef::categorical("c", &["x", "y", "z"], "x", ""))
    }

    fn drive(eval: impl Fn(&Configuration) -> f64, budget: usize, seed: u64) -> Vec<Observation> {
        let s = space();
        let mut t = RlTuner::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = Vec::new();
        for _ in 0..budget {
            let cfg = t.propose(&s, &history, &mut rng);
            assert!(s.validate(&cfg).is_ok());
            history.push(Observation {
                runtime_s: eval(&cfg),
                config: cfg,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        history
    }

    #[test]
    fn learns_to_walk_downhill() {
        // Runtime decreases with `a`: the Up action on `a` should be
        // learned and the agent should climb most of the way.
        let history = drive(|c| 200.0 - c.int("a") as f64, 30, 1);
        let best = best_observation(&history).unwrap();
        assert!(
            best.config.int("a") >= 80,
            "agent should push a upward: {}",
            best.config
        );
    }

    #[test]
    fn learns_a_beneficial_toggle() {
        let history = drive(|c| if c.bool("b") { 50.0 } else { 100.0 }, 25, 3);
        assert!(best_observation(&history).unwrap().config.bool("b"));
    }

    #[test]
    fn first_proposal_is_the_default() {
        let s = space();
        let mut t = RlTuner::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(t.propose(&s, &[], &mut rng), s.default_configuration());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let s = space();
        let mut t = RlTuner::new();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = t.propose(&s, &[], &mut rng);
        t.reset();
        assert!(t.current.is_none());
        assert!(t.actions.is_empty());
    }
}
