//! Configuration-tuning strategies.
//!
//! One sub-module per strategy from the paper's survey (§II), all
//! implementing the [`Tuner`] trait:
//!
//! | module | strategy | system in the paper |
//! |--------|----------|---------------------|
//! | [`random`] | uniform random search | the Table I methodology |
//! | [`lhs`] | Latin-hypercube search | stratified baseline |
//! | [`hillclimb`] | restart hill climbing | MROnline \[25\] |
//! | [`bo`] | GP Bayesian optimization (Matérn 5/2 + EI) | CherryPick \[10\] |
//! | [`additive_bo`] | BO with additive GP kernel | Duvenaud et al. (§V-A) |
//! | [`genetic`] | surrogate-assisted genetic search | DAC \[31\] |
//! | [`bestconfig`] | divide-&-diverge + recursive bound-&-search | BestConfig \[35\] |
//! | [`rtree`] | regression-tree surrogate search | Wang et al. \[29\] |
//! | [`forest`] | random-forest surrogate search | PARIS \[30\] |
//! | [`ernest`] | analytic machine-scaling model | Ernest \[28\] |
//! | [`rl`] | ε-greedy Q-learning over parameter nudges | Bu et al. \[11\] |

pub mod additive_bo;
pub mod bestconfig;
pub mod bo;
pub mod ernest;
pub mod forest;
pub mod genetic;
pub mod hillclimb;
pub mod lhs;
pub mod random;
pub mod rl;
pub mod rtree;

use confspace::{Configuration, ParamSpace};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::executor::{DegradationReport, RetryPolicy, TrialOutcome};
use crate::faults::FaultInjector;
use crate::objective::{BatchObjective, Objective, Observation};

pub use additive_bo::AdditiveBayesOpt;
pub use bestconfig::BestConfig;
pub use bo::BayesOpt;
pub use ernest::Ernest;
pub use forest::ForestTuner;
pub use genetic::Genetic;
pub use hillclimb::HillClimb;
pub use lhs::LhsSearch;
pub use random::RandomSearch;
pub use rl::RlTuner;
pub use rtree::RegressionTreeTuner;

/// A sequential configuration-tuning strategy.
///
/// The tuning loop alternates `propose` → `Objective::evaluate`; the
/// full history (in evaluation order) is passed back on each call, so
/// strategies may be implemented statelessly or keep internal state.
pub trait Tuner {
    /// The strategy's display name.
    fn name(&self) -> &str;

    /// Proposes the next configuration to evaluate.
    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration;

    /// Proposes `q` configurations to evaluate concurrently.
    ///
    /// With `q == 1` every implementation (including every override)
    /// must emit exactly what [`Tuner::propose`] would — batch size 1
    /// is the sequential loop, bit for bit. The default implementation
    /// for `q > 1` is the *constant liar*: each proposal is committed
    /// to the visible history as a fake observation at the incumbent
    /// runtime, so model-based strategies spread the batch instead of
    /// proposing the same point `q` times. Strategies with a natural
    /// batch (stratified designs, GA generations, q-EI) override this.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        if q <= 1 {
            return vec![self.propose(space, history, rng)];
        }
        let lie = constant_lie_runtime(history);
        let mut augmented = history.to_vec();
        let mut batch = Vec::with_capacity(q);
        for _ in 0..q {
            let cfg = self.propose(space, &augmented, rng);
            augmented.push(Observation {
                config: cfg.clone(),
                runtime_s: lie,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
            batch.push(cfg);
        }
        batch
    }

    /// Clears internal state for a fresh session.
    fn reset(&mut self) {}
}

/// The runtime a constant-liar batch pretends its pending trials
/// observed: the incumbent's runtime (CL-min) when one exists, else the
/// mean of successful runs, else a neutral 1s placeholder (harmless —
/// with no history every strategy is still in its warm-up design).
pub fn constant_lie_runtime(history: &[Observation]) -> f64 {
    if let Some(best) = best_observation(history) {
        return best.runtime_s;
    }
    if history.is_empty() {
        1.0
    } else {
        // Every run so far failed: lie at the (penalty) mean so the
        // surrogate keeps steering away from the batch's region.
        history.iter().map(|o| o.runtime_s).sum::<f64>() / history.len() as f64
    }
}

/// The catalog of built-in strategies (factory enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunerKind {
    /// Uniform random search.
    Random,
    /// Latin-hypercube search.
    Lhs,
    /// MROnline-style hill climbing.
    HillClimb,
    /// CherryPick-style Bayesian optimization.
    BayesOpt,
    /// Bayesian optimization with an additive GP kernel.
    AdditiveBayesOpt,
    /// DAC-style surrogate-assisted genetic search.
    Genetic,
    /// BestConfig's divide-and-diverge + recursive bound-and-search.
    BestConfig,
    /// Wang-style regression-tree surrogate search.
    RegressionTree,
    /// PARIS-style random-forest surrogate search.
    RandomForest,
    /// Ernest's analytic machine-scaling model.
    Ernest,
    /// Bu-et-al-style reinforcement-learning nudges.
    Rl,
}

impl TunerKind {
    /// Every built-in strategy.
    pub fn all() -> Vec<TunerKind> {
        vec![
            TunerKind::Random,
            TunerKind::Lhs,
            TunerKind::HillClimb,
            TunerKind::BayesOpt,
            TunerKind::AdditiveBayesOpt,
            TunerKind::Genetic,
            TunerKind::BestConfig,
            TunerKind::RegressionTree,
            TunerKind::RandomForest,
            TunerKind::Ernest,
            TunerKind::Rl,
        ]
    }

    /// Instantiates the strategy with default hyperparameters.
    pub fn build(self) -> Box<dyn Tuner> {
        match self {
            TunerKind::Random => Box::new(RandomSearch),
            TunerKind::Lhs => Box::new(LhsSearch::new(16)),
            TunerKind::HillClimb => Box::new(HillClimb::new()),
            TunerKind::BayesOpt => Box::new(BayesOpt::new()),
            TunerKind::AdditiveBayesOpt => Box::new(AdditiveBayesOpt::new()),
            TunerKind::Genetic => Box::new(Genetic::new()),
            TunerKind::BestConfig => Box::new(BestConfig::new(12)),
            TunerKind::RegressionTree => Box::new(RegressionTreeTuner::new()),
            TunerKind::RandomForest => Box::new(ForestTuner::new()),
            TunerKind::Ernest => Box::new(Ernest::new()),
            TunerKind::Rl => Box::new(RlTuner::new()),
        }
    }

    /// The strategy's display name.
    pub fn label(self) -> &'static str {
        match self {
            TunerKind::Random => "random",
            TunerKind::Lhs => "lhs",
            TunerKind::HillClimb => "hillclimb",
            TunerKind::BayesOpt => "bayesopt",
            TunerKind::AdditiveBayesOpt => "additive-bo",
            TunerKind::Genetic => "genetic",
            TunerKind::BestConfig => "bestconfig",
            TunerKind::RegressionTree => "rtree",
            TunerKind::RandomForest => "forest",
            TunerKind::Ernest => "ernest",
            TunerKind::Rl => "rl",
        }
    }
}

impl std::fmt::Display for TunerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Every observation, in evaluation order (warm-start observations
    /// excluded).
    pub history: Vec<Observation>,
    /// The best successful observation, if any run succeeded.
    pub best: Option<Observation>,
    /// Resilience statistics, present for sessions run with a
    /// [`RetryPolicy`]/[`FaultInjector`] attached. A session that blew
    /// its round failure budget still returns here — partial history,
    /// `degradation.budget_exhausted == true` — instead of erroring.
    pub degradation: Option<DegradationReport>,
}

impl TuningOutcome {
    /// Best runtime found (∞ when every run failed).
    pub fn best_runtime_s(&self) -> f64 {
        self.best.as_ref().map_or(f64::INFINITY, |o| o.runtime_s)
    }

    /// The best configuration found, when any run succeeded.
    pub fn best_config(&self) -> Option<&Configuration> {
        self.best.as_ref().map(|o| &o.config)
    }

    /// Best-so-far runtime curve (index = evaluations used − 1).
    pub fn best_so_far(&self) -> Vec<f64> {
        best_so_far(&self.history)
    }

    /// Total tuning cost in dollars (sum of all evaluation costs).
    pub fn total_cost_usd(&self) -> f64 {
        self.history.iter().map(|o| o.cost_usd).sum()
    }

    /// Total machine time consumed by tuning (s).
    pub fn total_machine_time_s(&self) -> f64 {
        self.history.iter().map(|o| o.runtime_s).sum()
    }

    /// Whether the session degraded: any trial failed or timed out, or
    /// the failure budget ended it early.
    pub fn is_degraded(&self) -> bool {
        self.degradation.as_ref().is_some_and(|d| d.degraded())
    }

    /// Number of evaluations needed to get within `pct` (e.g. 0.10) of
    /// the session's final best runtime; `None` when no run succeeded.
    pub fn evals_to_within(&self, pct: f64) -> Option<usize> {
        let target = self.best_runtime_s() * (1.0 + pct);
        self.best_so_far()
            .iter()
            .position(|&b| b <= target)
            .map(|i| i + 1)
    }
}

/// Best-so-far runtime curve over a raw history.
pub fn best_so_far(history: &[Observation]) -> Vec<f64> {
    let mut best = f64::INFINITY;
    history
        .iter()
        .map(|o| {
            if o.is_ok() {
                best = best.min(o.runtime_s);
            }
            best
        })
        .collect()
}

/// The best successful observation in a history.
pub fn best_observation(history: &[Observation]) -> Option<&Observation> {
    history
        .iter()
        .filter(|o| o.is_ok())
        .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
}

/// Encodes a history for surrogate models: features in `[0,1]^d`,
/// targets as `ln(runtime)` (the log tames the failure penalty and the
/// heavy right tail of runtime distributions).
///
/// Censored observations ([`Observation::is_censored`]) are dropped:
/// their penalty runtime is a ranking artifact of the execution
/// harness, not a measurement, so surrogates fit on survivors only.
/// (Objective-level failures — OOM, fetch timeout — stay in: their
/// penalty *is* the signal that a region misconfigures the job.)
pub fn encode_history(space: &ParamSpace, history: &[Observation]) -> (Vec<Vec<f64>>, Vec<f64>) {
    let survivors: Vec<&Observation> = history.iter().filter(|o| !o.is_censored()).collect();
    let x = survivors.iter().map(|o| space.encode(&o.config)).collect();
    let y = survivors
        .iter()
        .map(|o| o.runtime_s.max(1e-3).ln())
        .collect();
    (x, y)
}

/// Encoded positions of a history's censored observations — the points
/// acquisition functions penalize instead of modelling.
pub fn encode_censored(space: &ParamSpace, history: &[Observation]) -> Vec<Vec<f64>> {
    history
        .iter()
        .filter(|o| o.is_censored())
        .map(|o| space.encode(&o.config))
        .collect()
}

/// A tuning session: a strategy plus a seeded RNG, driven against an
/// objective for a fixed evaluation budget.
pub struct TuningSession {
    tuner: Box<dyn Tuner>,
    rng: StdRng,
    seed: u64,
    warm: Vec<Observation>,
    policy: RetryPolicy,
    injector: FaultInjector,
    resilient: bool,
}

impl TuningSession {
    /// Creates a session for the given strategy and seed.
    pub fn new(kind: TunerKind, seed: u64) -> Self {
        Self::with_tuner(kind.build(), seed)
    }

    /// Creates a session around an existing tuner instance.
    pub fn with_tuner(tuner: Box<dyn Tuner>, seed: u64) -> Self {
        TuningSession {
            tuner,
            rng: StdRng::seed_from_u64(seed),
            seed,
            warm: Vec::new(),
            policy: RetryPolicy::default(),
            injector: FaultInjector::none(),
            resilient: false,
        }
    }

    /// Turns on resilient execution: trials run through the retry
    /// policy (and, in chaos tests, the fault injector), failed trials
    /// become censored observations, and the outcome carries a
    /// [`DegradationReport`]. With the default policy and a no-op
    /// injector, the observations are bitwise identical to plain
    /// batched execution.
    pub fn with_resilience(&mut self, policy: RetryPolicy, injector: FaultInjector) -> &mut Self {
        self.policy = policy;
        self.injector = injector;
        self.resilient = true;
        self
    }

    /// Seeds the session with transferred observations (§V-B): they are
    /// visible to the strategy but not charged against the budget and
    /// not reported in the outcome history.
    pub fn warm_start(&mut self, observations: Vec<Observation>) -> &mut Self {
        self.warm = observations;
        self
    }

    /// Runs `budget` evaluations against `objective`.
    pub fn run(&mut self, objective: &mut dyn Objective, budget: usize) -> TuningOutcome {
        let _session = obs::span("tuning_session")
            .with("tuner", self.tuner.name())
            .with("budget", budget);
        let reg = obs::registry();
        let mut history: Vec<Observation> = Vec::with_capacity(budget);
        for i in 0..budget {
            let mut proposal = obs::span("proposal").with("idx", i);
            let visible: Vec<Observation> =
                self.warm.iter().chain(history.iter()).cloned().collect();
            let cfg = {
                let _propose = obs::span("propose");
                reg.histogram("tuner.propose_s").time(|| {
                    self.tuner
                        .propose(objective.space(), &visible, &mut self.rng)
                })
            };
            let observed = {
                let _evaluate = obs::span("evaluate");
                reg.histogram("objective.evaluate_s")
                    .time(|| objective.evaluate(&cfg))
            };
            reg.counter("tuner.evaluations").inc();
            if observed.failure.is_some() {
                reg.counter("tuner.failed_evaluations").inc();
            }
            proposal.record("runtime_s", observed.runtime_s);
            proposal.record("ok", observed.is_ok());
            history.push(observed);
        }
        let best = best_observation(&history).cloned();
        if let Some(b) = &best {
            obs::instant(
                "session_best",
                obs::fields![("tuner", self.tuner.name()), ("runtime_s", b.runtime_s)],
            );
        }
        TuningOutcome {
            history,
            best,
            degradation: None,
        }
    }

    /// Runs `budget` evaluations against `objective`, proposing and
    /// evaluating `batch` trials at a time on a [`TrialExecutor`].
    ///
    /// For a non-resilient session, `batch == 1` takes the exact
    /// sequential [`TuningSession::run`] code path — same proposals,
    /// same observations, bit for bit. For larger batches, proposals
    /// come from [`Tuner::propose_batch`] and evaluations fan out over
    /// the executor's worker pool with deterministic per-trial seeding,
    /// so neither the batch size nor the thread count changes what any
    /// individual trial observes.
    ///
    /// A resilient session ([`TuningSession::with_resilience`]) always
    /// runs on the executor: failed/timed-out trials enter the history
    /// as censored observations, quarantined configs stop burning
    /// budget, and a round whose failures exceed the policy's budget
    /// ends the session early with a partial outcome whose
    /// [`DegradationReport`] says so.
    ///
    /// [`TrialExecutor`]: crate::executor::TrialExecutor
    pub fn run_batched<O: BatchObjective>(
        &mut self,
        objective: &mut O,
        budget: usize,
        batch: usize,
    ) -> TuningOutcome {
        if batch <= 1 && !self.resilient {
            return self.run(objective, budget);
        }
        let _session = obs::span("tuning_session")
            .with("tuner", self.tuner.name())
            .with("budget", budget)
            .with("batch", batch);
        let reg = obs::registry();
        let mut executor = crate::executor::TrialExecutor::new(self.seed ^ 0xE0E0_7A17)
            .with_resilience(self.policy, self.injector);
        let mut report = DegradationReport::default();
        let mut history: Vec<Observation> = Vec::with_capacity(budget);
        while history.len() < budget {
            let q = batch.max(1).min(budget - history.len());
            let mut round = obs::span("proposal_batch")
                .with("idx", history.len())
                .with("q", q);
            let visible: Vec<Observation> =
                self.warm.iter().chain(history.iter()).cloned().collect();
            let cfgs = {
                let _propose = obs::span("propose_batch");
                reg.histogram("tuner.propose_batch_s").time(|| {
                    self.tuner
                        .propose_batch(objective.space(), &visible, q, &mut self.rng)
                })
            };
            if cfgs.is_empty() {
                break; // defensive: a strategy with nothing left to propose
            }
            let outcomes = executor.run_trials(&*objective, &cfgs);
            let round_failures = report.absorb_round(&outcomes);
            let observed: Vec<Observation> = outcomes
                .into_iter()
                .map(TrialOutcome::into_observation)
                .collect();
            reg.counter("tuner.evaluations").add(observed.len() as u64);
            let failed = observed.iter().filter(|o| !o.is_ok()).count();
            if failed > 0 {
                reg.counter("tuner.failed_evaluations").add(failed as u64);
            }
            round.record("ok", (observed.len() - failed) as f64);
            history.extend(observed);
            if self.resilient && round_failures > self.policy.round_failure_budget {
                report.budget_exhausted = true;
                reg.counter("session.budget_exhausted").inc();
                // The session is about to return a partial outcome;
                // dump the flight recorder while the failing round's
                // events are still buffered.
                obs::flightrec::trigger_dump("budget_exhausted");
                break;
            }
        }
        report.quarantined = executor.quarantined_count();
        let best = best_observation(&history).cloned();
        if let Some(b) = &best {
            obs::instant(
                "session_best",
                obs::fields![("tuner", self.tuner.name()), ("runtime_s", b.runtime_s)],
            );
        }
        TuningOutcome {
            history,
            best,
            degradation: self.resilient.then_some(report),
        }
    }

    /// The underlying strategy's name.
    pub fn tuner_name(&self) -> &str {
        self.tuner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FAILURE_PENALTY_S;

    fn obs(runtime: f64, ok: bool) -> Observation {
        Observation {
            config: Configuration::new(),
            runtime_s: if ok { runtime } else { FAILURE_PENALTY_S },
            cost_usd: 1.0,
            metrics: None,
            failure: if ok {
                None
            } else {
                Some(simcluster::FailureKind::DriverOom)
            },
        }
    }

    #[test]
    fn best_so_far_is_monotone_and_skips_failures() {
        let h = vec![
            obs(10.0, true),
            obs(50.0, false),
            obs(5.0, true),
            obs(7.0, true),
        ];
        let curve = best_so_far(&h);
        assert_eq!(curve, vec![10.0, 10.0, 5.0, 5.0]);
    }

    #[test]
    fn best_observation_ignores_failures() {
        let h = vec![obs(10.0, false), obs(20.0, true)];
        assert_eq!(best_observation(&h).unwrap().runtime_s, 20.0);
        assert!(best_observation(&[obs(1.0, false)]).is_none());
    }

    #[test]
    fn outcome_accessors() {
        let o = TuningOutcome {
            history: vec![obs(10.0, true), obs(4.0, true), obs(6.0, true)],
            best: Some(obs(4.0, true)),
            degradation: None,
        };
        assert_eq!(o.best_runtime_s(), 4.0);
        assert_eq!(o.total_cost_usd(), 3.0);
        assert_eq!(o.evals_to_within(0.0), Some(2));
        assert_eq!(o.evals_to_within(2.0), Some(1)); // within 3x of 4.0 is 12 >= 10
    }

    #[test]
    fn all_kinds_build_and_have_unique_labels() {
        let kinds = TunerKind::all();
        assert_eq!(kinds.len(), 11);
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 11);
        for k in kinds {
            let t = k.build();
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn encode_history_log_transforms() {
        let space = ParamSpace::new().with(confspace::ParamDef::int("a", 0, 10, 5, ""));
        let h = vec![obs(std::f64::consts::E, true)];
        let (x, y) = encode_history(&space, &h);
        assert_eq!(x.len(), 1);
        assert!((y[0] - 1.0).abs() < 1e-12);
    }
}
