//! Latin-hypercube search: stratified batches instead of i.i.d. draws.

use confspace::{Configuration, LatinHypercube, ParamSpace, Sampler};
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::Tuner;

/// Latin-hypercube search: draws configurations in stratified batches
/// of `batch` samples, guaranteeing per-dimension coverage within each
/// batch.
#[derive(Debug, Clone, Default)]
pub struct LhsSearch {
    batch: usize,
    pending: Vec<Configuration>,
}

impl LhsSearch {
    /// Creates the strategy with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch == 0`.
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        LhsSearch {
            batch,
            pending: Vec::new(),
        }
    }
}

impl Tuner for LhsSearch {
    fn name(&self) -> &str {
        "lhs"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        _history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        if self.pending.is_empty() {
            self.pending = LatinHypercube.sample_n(space, self.batch, rng);
        }
        // `batch > 0` means the refill is never empty, but a misuse
        // must not abort a multi-tenant run.
        self.pending
            .pop()
            .unwrap_or_else(|| LatinHypercube.sample(space, rng))
    }

    /// Native batch: drains the pending stratified design (refilling at
    /// block boundaries), so a batch keeps the per-dimension coverage
    /// guarantee of its enclosing LHS block.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        (0..q.max(1))
            .map(|_| self.propose(space, history, rng))
            .collect()
    }

    fn reset(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batches_are_stratified() {
        let space = ParamSpace::new().with(confspace::ParamDef::float("f", 0.0, 1.0, 0.5, ""));
        let mut t = LhsSearch::new(8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut strata: Vec<usize> = (0..8)
            .map(|_| {
                let c = t.propose(&space, &[], &mut rng);
                ((c.float("f") * 8.0).floor() as usize).min(7)
            })
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn reset_discards_pending() {
        let space = ParamSpace::new().with(confspace::ParamDef::float("f", 0.0, 1.0, 0.5, ""));
        let mut t = LhsSearch::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = t.propose(&space, &[], &mut rng);
        t.reset();
        assert!(t.pending.is_empty());
    }
}
