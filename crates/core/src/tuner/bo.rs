//! CherryPick-style Bayesian optimization (Alipourfard et al. \[10\]):
//! a Gaussian-process surrogate with a Matérn-5/2 kernel and
//! Expected-Improvement acquisition, warmed up with a small
//! Latin-hypercube design — the data-efficient strategy the paper
//! contrasts with 500-sample search (§IV-C).

use confspace::{neighbor, Configuration, LatinHypercube, ParamSpace, Sampler, UniformSampler};
use models::{expected_improvement, FitKind, GpFitCache, Kernel};
use rand::RngCore;

use crate::objective::Observation;
use crate::tuner::{best_observation, encode_censored, encode_history, Tuner};

/// Maximum observations kept for the GP fit (most recent + the best are
/// retained): bounds the O(n³) Cholesky cost for long sessions.
const MAX_GP_POINTS: usize = 120;

/// Candidates scored per parallel chunk in the acquisition loop: large
/// enough to amortize scratch-buffer reuse and thread hand-off.
const EI_CHUNK: usize = 64;

/// Squared bandwidth of the local EI penalty used by batch proposals
/// (h = 0.2 in the unit-normalized encoded space).
const PENALTY_BANDWIDTH_SQ: f64 = 0.04;

/// Damps EI scores near censored observations (trials the execution
/// harness aborted or quarantined): the surrogate has no data there by
/// design, so optimism from the prior must not keep re-proposing the
/// same failing region. No-op when nothing is censored — the scores of
/// a healthy session are untouched, bit for bit.
fn penalize_censored(scores: &mut [f64], encoded: &[Vec<f64>], censored: &[Vec<f64>]) {
    if censored.is_empty() {
        return;
    }
    for (score, point) in scores.iter_mut().zip(encoded) {
        let mut damp = 1.0;
        for bad in censored {
            let d2: f64 = point.iter().zip(bad).map(|(a, b)| (a - b) * (a - b)).sum();
            damp *= 1.0 - (-d2 / (2.0 * PENALTY_BANDWIDTH_SQ)).exp();
        }
        *score *= damp;
    }
}

/// GP Bayesian optimization with EI acquisition.
#[derive(Debug, Clone)]
pub struct BayesOpt {
    /// Warm-up design size before the GP takes over.
    pub init_samples: usize,
    /// Random candidates scored per proposal.
    pub candidates: usize,
    /// Extra neighbourhood candidates around the incumbent.
    pub local_candidates: usize,
    /// Whether consecutive proposals reuse cached Cholesky factors
    /// (incremental O(n²) updates while history only grows). The
    /// proposals are identical either way; disabling only exists for
    /// benchmarks and equivalence tests.
    pub use_fit_cache: bool,
    kernel: Kernel,
    pending_init: Vec<Configuration>,
    fit_cache: GpFitCache,
}

impl Default for BayesOpt {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesOpt {
    /// Creates the strategy with CherryPick-like defaults.
    pub fn new() -> Self {
        Self::with_kernel(Kernel::Matern52 {
            length_scale: 0.4,
            variance: 1.0,
        })
    }

    /// Creates the strategy with a custom base kernel (used by
    /// [`crate::tuner::AdditiveBayesOpt`]).
    pub fn with_kernel(kernel: Kernel) -> Self {
        BayesOpt {
            init_samples: 8,
            candidates: 256,
            local_candidates: 64,
            use_fit_cache: true,
            kernel,
            pending_init: Vec::new(),
            fit_cache: GpFitCache::new(),
        }
    }

    /// Fits the GP surrogate on the (subsampled) history, with the
    /// obs wiring shared by [`Tuner::propose`] and
    /// [`Tuner::propose_batch`].
    fn fit_surrogate(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
    ) -> models::GpRegressor {
        let kept = self.subsample(history);
        let owned: Vec<Observation> = kept.into_iter().cloned().collect();
        let (x, y) = encode_history(space, &owned);
        let reg = obs::registry();
        reg.gauge("par.threads")
            .set(models::par::num_threads() as f64);
        let _fit = obs::span("surrogate_fit").with("points", y.len());
        let start = std::time::Instant::now();
        let (gp, kind) = if self.use_fit_cache {
            self.fit_cache.fit_auto(&x, &y, self.kernel)
        } else {
            self.fit_cache.clear();
            self.fit_cache.fit_auto(&x, &y, self.kernel)
        };
        let secs = start.elapsed().as_secs_f64();
        reg.histogram("bo.surrogate_fit_s").record_secs(secs);
        match kind {
            FitKind::Incremental => {
                reg.counter("bo.fit_cache.hit").inc();
                reg.histogram("bo.surrogate_fit_incremental_s")
                    .record_secs(secs);
            }
            FitKind::Full => {
                reg.counter("bo.fit_cache.miss").inc();
                reg.histogram("bo.surrogate_fit_full_s").record_secs(secs);
            }
        }
        gp
    }

    /// The candidate pool for one acquisition round: global uniform
    /// samples plus local refinements around the incumbent.
    fn candidate_pool(
        &self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        let mut cands = UniformSampler.sample_n(space, self.candidates, rng);
        if let Some(best) = best_observation(history) {
            for _ in 0..self.local_candidates {
                cands.push(neighbor(space, &best.config, 0.05, 0.4, rng));
            }
        }
        cands
    }

    fn subsample<'a>(&self, history: &'a [Observation]) -> Vec<&'a Observation> {
        if history.len() <= MAX_GP_POINTS {
            return history.iter().collect();
        }
        // Keep the best third and the most recent two-thirds, tracking
        // membership by index so dedup is O(n) instead of rescanning
        // the kept vector per element.
        let keep_best = MAX_GP_POINTS / 3;
        let mut by_runtime: Vec<usize> = (0..history.len()).collect();
        by_runtime.sort_by(|&a, &b| history[a].runtime_s.total_cmp(&history[b].runtime_s));
        by_runtime.truncate(keep_best);
        let mut is_kept = vec![false; history.len()];
        for &i in &by_runtime {
            is_kept[i] = true;
        }
        let mut kept: Vec<&Observation> = by_runtime.iter().map(|&i| &history[i]).collect();
        for i in (0..history.len()).rev() {
            if kept.len() >= MAX_GP_POINTS {
                break;
            }
            if !is_kept[i] {
                is_kept[i] = true;
                kept.push(&history[i]);
            }
        }
        kept
    }
}

impl Tuner for BayesOpt {
    fn name(&self) -> &str {
        "bayesopt"
    }

    fn propose(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        rng: &mut dyn RngCore,
    ) -> Configuration {
        // Warm-up: a stratified initial design. Censored observations
        // don't count — the surrogate needs real measurements to fit.
        let survivors = history.iter().filter(|o| !o.is_censored()).count();
        if survivors < self.init_samples {
            if self.pending_init.is_empty() {
                self.pending_init = LatinHypercube.sample_n(space, self.init_samples, rng);
            }
            if let Some(c) = self.pending_init.pop() {
                return c;
            }
        }

        let gp = self.fit_surrogate(space, history);
        let reg = obs::registry();

        let best_ln = best_observation(history)
            .map(|o| o.runtime_s.max(1e-3).ln())
            .unwrap_or(f64::INFINITY);

        let mut cands = self.candidate_pool(space, history, rng);
        let censored = encode_censored(space, history);

        let _acq = obs::span("acquisition").with("candidates", cands.len());
        reg.histogram("bo.acquisition_s").time(|| {
            // Score candidates in parallel chunks; each chunk's batched
            // prediction reuses one set of scratch buffers. Scores come
            // back in candidate order, so the arg-max (last maximum on
            // ties, matching the sequential scan) is thread-count
            // independent.
            let encoded: Vec<Vec<f64>> = cands.iter().map(|c| space.encode(c)).collect();
            let mut scores = models::par::par_chunks(&encoded, EI_CHUNK, |chunk| {
                gp.predict_batch(chunk)
                    .into_iter()
                    .map(|(m, s)| expected_improvement(m, s, best_ln))
                    .collect()
            });
            penalize_censored(&mut scores, &encoded, &censored);
            scores
                .into_iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| cands.swap_remove(i))
                .unwrap_or_else(|| UniformSampler.sample(space, rng))
        })
    }

    /// Native q-EI via local penalization (González et al.): one GP
    /// fit and one acquisition scan yield the whole batch — EI around
    /// each chosen point is damped so the batch spreads out instead of
    /// clustering on the same optimum.
    fn propose_batch(
        &mut self,
        space: &ParamSpace,
        history: &[Observation],
        q: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<Configuration> {
        if q <= 1 {
            return vec![self.propose(space, history, rng)];
        }
        // Warm-up rounds drain the stratified init design directly.
        let survivors = history.iter().filter(|o| !o.is_censored()).count();
        if survivors < self.init_samples {
            return (0..q).map(|_| self.propose(space, history, rng)).collect();
        }

        let gp = self.fit_surrogate(space, history);
        let reg = obs::registry();
        let best_ln = best_observation(history)
            .map(|o| o.runtime_s.max(1e-3).ln())
            .unwrap_or(f64::INFINITY);
        let cands = self.candidate_pool(space, history, rng);
        let censored = encode_censored(space, history);

        let _acq = obs::span("acquisition")
            .with("candidates", cands.len())
            .with("q", q);
        reg.histogram("bo.acquisition_s").time(|| {
            let encoded: Vec<Vec<f64>> = cands.iter().map(|c| space.encode(c)).collect();
            let mut scores = models::par::par_chunks(&encoded, EI_CHUNK, |chunk| {
                gp.predict_batch(chunk)
                    .into_iter()
                    .map(|(m, s)| expected_improvement(m, s, best_ln))
                    .collect()
            });
            penalize_censored(&mut scores, &encoded, &censored);
            let mut taken = vec![false; scores.len()];
            let mut out: Vec<Configuration> = Vec::with_capacity(q);
            for _ in 0..q.min(scores.len()) {
                let Some(i) = (0..scores.len())
                    .filter(|&i| !taken[i])
                    .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
                else {
                    break;
                };
                taken[i] = true;
                out.push(cands[i].clone());
                for j in 0..scores.len() {
                    if taken[j] {
                        continue;
                    }
                    let d2: f64 = encoded[i]
                        .iter()
                        .zip(&encoded[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    scores[j] *= 1.0 - (-d2 / (2.0 * PENALTY_BANDWIDTH_SQ)).exp();
                }
            }
            // Degenerate pools (q > candidates) top up with uniform
            // exploration rather than duplicating picks.
            while out.len() < q {
                out.push(UniformSampler.sample(space, rng));
            }
            out
        })
    }

    fn reset(&mut self) {
        self.pending_init.clear();
        self.fit_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A cheap synthetic objective: quadratic bowl over two int params.
    fn synth_space() -> ParamSpace {
        ParamSpace::new()
            .with(confspace::ParamDef::int("a", 0, 100, 50, ""))
            .with(confspace::ParamDef::int("b", 0, 100, 50, ""))
    }

    fn synth_eval(cfg: &Configuration) -> f64 {
        let a = cfg.int("a") as f64;
        let b = cfg.int("b") as f64;
        10.0 + ((a - 70.0) / 10.0).powi(2) + ((b - 30.0) / 10.0).powi(2)
    }

    fn run(tuner: &mut dyn Tuner, budget: usize, seed: u64) -> f64 {
        let space = synth_space();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = Vec::new();
        for _ in 0..budget {
            let cfg = tuner.propose(&space, &history, &mut rng);
            let runtime_s = synth_eval(&cfg);
            history.push(Observation {
                config: cfg,
                runtime_s,
                cost_usd: 0.0,
                metrics: None,
                failure: None,
            });
        }
        crate::tuner::best_observation(&history).unwrap().runtime_s
    }

    #[test]
    fn bo_beats_random_on_a_smooth_bowl() {
        let mut bo_total = 0.0;
        let mut rnd_total = 0.0;
        for seed in 0..5u64 {
            bo_total += run(&mut BayesOpt::new(), 30, seed);
            rnd_total += run(&mut crate::tuner::RandomSearch, 30, seed);
        }
        assert!(
            bo_total < rnd_total,
            "BO {bo_total} should beat random {rnd_total}"
        );
    }

    #[test]
    fn bo_approaches_the_optimum() {
        let best = run(&mut BayesOpt::new(), 40, 7);
        assert!(best < 12.0, "best {best} (optimum 10.0)");
    }

    #[test]
    fn warmup_uses_init_design() {
        let space = synth_space();
        let mut t = BayesOpt::new();
        let mut rng = StdRng::seed_from_u64(9);
        let c = t.propose(&space, &[], &mut rng);
        assert!(space.validate(&c).is_ok());
        assert_eq!(t.pending_init.len(), t.init_samples - 1);
    }
}
