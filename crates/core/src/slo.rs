//! Tuning-effectiveness metrics and cost accounting.
//!
//! §IV-D proposes SLOs of the form "jobs run within X% of the optimal
//! runtime" (with "optimal" approximated by the best runtime of similar
//! workloads ever seen); §V-C enumerates candidate effectiveness
//! metrics; §IV-C demands that tuning cost not outweigh the runtime
//! savings before re-tuning is needed. This module implements all
//! three.

use serde::{Deserialize, Serialize};

/// Effectiveness metrics for one tuned workload (§V-C's candidate
/// metric menu, computed side by side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The tuned configuration's runtime (s).
    pub tuned_runtime_s: f64,
    /// Best-known runtime for this workload (the session's optimum
    /// proxy), if any.
    pub optimal_runtime_s: Option<f64>,
    /// Best runtime of *similar* workloads in the provider's history.
    pub best_similar_runtime_s: Option<f64>,
    /// Runtime under the default configuration, if measured.
    pub default_runtime_s: Option<f64>,
}

impl SloReport {
    /// Distance from optimal as a fraction: `runtime/optimal − 1`
    /// (0 = optimal). `None` when no optimum proxy is known.
    pub fn distance_from_optimal(&self) -> Option<f64> {
        self.optimal_runtime_s
            .map(|opt| self.tuned_runtime_s / opt.max(1e-9) - 1.0)
    }

    /// Whether the tuned runtime is within `x` (e.g. 0.10) of optimal —
    /// the §IV-D SLO predicate.
    pub fn within_of_optimal(&self, x: f64) -> Option<bool> {
        self.distance_from_optimal().map(|d| d <= x)
    }

    /// Same predicate against the best similar workload's runtime —
    /// the paper's fallback when the true optimum is unknowable.
    pub fn within_of_best_similar(&self, x: f64) -> Option<bool> {
        self.best_similar_runtime_s
            .map(|b| self.tuned_runtime_s <= b.max(1e-9) * (1.0 + x))
    }

    /// Improvement factor over the default configuration (≥ 1 when
    /// tuning helped), e.g. DAC's 30–89×.
    pub fn improvement_over_default(&self) -> Option<f64> {
        self.default_runtime_s
            .map(|d| d / self.tuned_runtime_s.max(1e-9))
    }
}

/// The §IV-C amortization ledger: does the cost sunk into tuning pay
/// for itself before re-tuning is needed?
///
/// # Example
///
/// ```
/// use seamless_core::AmortizationLedger;
///
/// let ledger = AmortizationLedger {
///     tuning_cost_usd: 10.0,
///     baseline_run_cost_usd: 1.0,
///     tuned_run_cost_usd: 0.5,
/// };
/// assert_eq!(ledger.runs_to_break_even(), Some(20.0));
/// assert!(ledger.amortizes_within(90.0)); // the paper's 3-month lifetime
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AmortizationLedger {
    /// Dollars spent on tuning executions.
    pub tuning_cost_usd: f64,
    /// Cost per production run under the baseline configuration.
    pub baseline_run_cost_usd: f64,
    /// Cost per production run under the tuned configuration.
    pub tuned_run_cost_usd: f64,
}

impl AmortizationLedger {
    /// Dollars saved per production run.
    pub fn saving_per_run_usd(&self) -> f64 {
        self.baseline_run_cost_usd - self.tuned_run_cost_usd
    }

    /// Number of production runs needed to recoup the tuning spend;
    /// `None` when the tuned configuration saves nothing (tuning never
    /// pays off — the paper's "tuning makes no sense" regime).
    pub fn runs_to_break_even(&self) -> Option<f64> {
        let saving = self.saving_per_run_usd();
        if saving <= 0.0 {
            None
        } else {
            Some(self.tuning_cost_usd / saving)
        }
    }

    /// Whether the tuning investment amortizes within `runs` production
    /// executions (e.g. the paper's 90 runs / 3 months exemplar).
    pub fn amortizes_within(&self, runs: f64) -> bool {
        self.runs_to_break_even().is_some_and(|r| r <= runs)
    }

    /// Net dollars after `runs` production executions (positive =
    /// tuning won).
    pub fn net_saving_after(&self, runs: f64) -> f64 {
        self.saving_per_run_usd() * runs - self.tuning_cost_usd
    }
}

/// Aggregates per-job SLO outcomes into an attainment curve: the
/// fraction of jobs whose tuned runtime is within `x` of their optimum,
/// for each `x` in `thresholds`.
pub fn attainment_curve(reports: &[SloReport], thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&x| {
            let evaluable: Vec<bool> = reports
                .iter()
                .filter_map(|r| r.within_of_optimal(x))
                .collect();
            let frac = if evaluable.is_empty() {
                0.0
            } else {
                evaluable.iter().filter(|&&b| b).count() as f64 / evaluable.len() as f64
            };
            (x, frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tuned: f64, optimal: f64) -> SloReport {
        SloReport {
            tuned_runtime_s: tuned,
            optimal_runtime_s: Some(optimal),
            best_similar_runtime_s: Some(optimal * 1.1),
            default_runtime_s: Some(optimal * 20.0),
        }
    }

    #[test]
    fn distance_and_within() {
        let r = report(110.0, 100.0);
        assert!((r.distance_from_optimal().unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(r.within_of_optimal(0.15), Some(true));
        assert_eq!(r.within_of_optimal(0.05), Some(false));
    }

    #[test]
    fn improvement_over_default_matches_dac_style_factor() {
        let r = report(100.0, 100.0);
        assert!((r.improvement_over_default().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn within_best_similar_uses_history_reference() {
        let r = report(112.0, 100.0); // best similar = 110
        assert_eq!(r.within_of_best_similar(0.05), Some(true));
        assert_eq!(r.within_of_best_similar(0.01), Some(false));
    }

    #[test]
    fn ledger_break_even() {
        let l = AmortizationLedger {
            tuning_cost_usd: 100.0,
            baseline_run_cost_usd: 12.0,
            tuned_run_cost_usd: 10.0,
        };
        assert!((l.runs_to_break_even().unwrap() - 50.0).abs() < 1e-9);
        assert!(l.amortizes_within(90.0));
        assert!(!l.amortizes_within(40.0));
        assert!((l.net_saving_after(100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_never_pays_off_without_savings() {
        let l = AmortizationLedger {
            tuning_cost_usd: 100.0,
            baseline_run_cost_usd: 10.0,
            tuned_run_cost_usd: 10.5,
        };
        assert_eq!(l.runs_to_break_even(), None);
        assert!(!l.amortizes_within(1e9));
    }

    #[test]
    fn attainment_curve_fractions() {
        let reports = vec![
            report(101.0, 100.0),
            report(120.0, 100.0),
            report(200.0, 100.0),
        ];
        let curve = attainment_curve(&reports, &[0.05, 0.25, 1.5]);
        assert_eq!(curve[0], (0.05, 1.0 / 3.0));
        assert!((curve[1].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(curve[2].1, 1.0);
    }
}
