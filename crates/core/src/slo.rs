//! Tuning-effectiveness metrics and cost accounting.
//!
//! §IV-D proposes SLOs of the form "jobs run within X% of the optimal
//! runtime" (with "optimal" approximated by the best runtime of similar
//! workloads ever seen); §V-C enumerates candidate effectiveness
//! metrics; §IV-C demands that tuning cost not outweigh the runtime
//! savings before re-tuning is needed. This module implements all
//! three.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Effectiveness metrics for one tuned workload (§V-C's candidate
/// metric menu, computed side by side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The tuned configuration's runtime (s).
    pub tuned_runtime_s: f64,
    /// Best-known runtime for this workload (the session's optimum
    /// proxy), if any.
    pub optimal_runtime_s: Option<f64>,
    /// Best runtime of *similar* workloads in the provider's history.
    pub best_similar_runtime_s: Option<f64>,
    /// Runtime under the default configuration, if measured.
    pub default_runtime_s: Option<f64>,
}

impl SloReport {
    /// Distance from optimal as a fraction: `runtime/optimal − 1`
    /// (0 = optimal). `None` when no optimum proxy is known.
    pub fn distance_from_optimal(&self) -> Option<f64> {
        self.optimal_runtime_s
            .map(|opt| self.tuned_runtime_s / opt.max(1e-9) - 1.0)
    }

    /// Whether the tuned runtime is within `x` (e.g. 0.10) of optimal —
    /// the §IV-D SLO predicate.
    pub fn within_of_optimal(&self, x: f64) -> Option<bool> {
        self.distance_from_optimal().map(|d| d <= x)
    }

    /// Same predicate against the best similar workload's runtime —
    /// the paper's fallback when the true optimum is unknowable.
    pub fn within_of_best_similar(&self, x: f64) -> Option<bool> {
        self.best_similar_runtime_s
            .map(|b| self.tuned_runtime_s <= b.max(1e-9) * (1.0 + x))
    }

    /// Improvement factor over the default configuration (≥ 1 when
    /// tuning helped), e.g. DAC's 30–89×.
    pub fn improvement_over_default(&self) -> Option<f64> {
        self.default_runtime_s
            .map(|d| d / self.tuned_runtime_s.max(1e-9))
    }
}

/// The §IV-C amortization ledger: does the cost sunk into tuning pay
/// for itself before re-tuning is needed?
///
/// # Example
///
/// ```
/// use seamless_core::AmortizationLedger;
///
/// let ledger = AmortizationLedger {
///     tuning_cost_usd: 10.0,
///     baseline_run_cost_usd: 1.0,
///     tuned_run_cost_usd: 0.5,
/// };
/// assert_eq!(ledger.runs_to_break_even(), Some(20.0));
/// assert!(ledger.amortizes_within(90.0)); // the paper's 3-month lifetime
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AmortizationLedger {
    /// Dollars spent on tuning executions.
    pub tuning_cost_usd: f64,
    /// Cost per production run under the baseline configuration.
    pub baseline_run_cost_usd: f64,
    /// Cost per production run under the tuned configuration.
    pub tuned_run_cost_usd: f64,
}

impl AmortizationLedger {
    /// Dollars saved per production run.
    pub fn saving_per_run_usd(&self) -> f64 {
        self.baseline_run_cost_usd - self.tuned_run_cost_usd
    }

    /// Number of production runs needed to recoup the tuning spend;
    /// `None` when the tuned configuration saves nothing (tuning never
    /// pays off — the paper's "tuning makes no sense" regime).
    pub fn runs_to_break_even(&self) -> Option<f64> {
        let saving = self.saving_per_run_usd();
        if saving <= 0.0 {
            None
        } else {
            Some(self.tuning_cost_usd / saving)
        }
    }

    /// Whether the tuning investment amortizes within `runs` production
    /// executions (e.g. the paper's 90 runs / 3 months exemplar).
    pub fn amortizes_within(&self, runs: f64) -> bool {
        self.runs_to_break_even().is_some_and(|r| r <= runs)
    }

    /// Net dollars after `runs` production executions (positive =
    /// tuning won).
    pub fn net_saving_after(&self, runs: f64) -> f64 {
        self.saving_per_run_usd() * runs - self.tuning_cost_usd
    }
}

/// Aggregates per-job SLO outcomes into an attainment curve: the
/// fraction of jobs whose tuned runtime is within `x` of their optimum,
/// for each `x` in `thresholds`.
pub fn attainment_curve(reports: &[SloReport], thresholds: &[f64]) -> Vec<(f64, f64)> {
    thresholds
        .iter()
        .map(|&x| {
            let evaluable: Vec<bool> = reports
                .iter()
                .filter_map(|r| r.within_of_optimal(x))
                .collect();
            let frac = if evaluable.is_empty() {
                0.0
            } else {
                evaluable.iter().filter(|&&b| b).count() as f64 / evaluable.len() as f64
            };
            (x, frac)
        })
        .collect()
}

/// Rolling per-tenant SLO/cost statistics, as published to the
/// metrics registry (and therefore the scrape endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSloStats {
    /// Tunes folded in so far (all time).
    pub tunes: u64,
    /// Tunes in the current window with an evaluable SLO verdict.
    pub evaluable: u64,
    /// Fraction of evaluable window tunes within the threshold of
    /// optimal (1.0 while nothing is evaluable — no evidence of a
    /// violation yet).
    pub within_ratio: f64,
    /// Fraction of the error budget left: `1 − burn_rate`. Negative
    /// once the tenant has missed more than the target allows.
    pub error_budget_remaining: f64,
    /// Miss rate over the allowed miss rate (`1 − target`); 1.0 means
    /// the budget is being consumed exactly as fast as it accrues.
    pub burn_rate: f64,
    /// Cumulative tuning spend (cents, all time).
    pub cost_cents: f64,
    /// Mean runs-to-break-even over the window's ledgers; `None` when
    /// no window ledger ever pays off.
    pub mean_runs_to_break_even: Option<f64>,
}

#[derive(Debug, Default)]
struct TenantWindow {
    /// Recent within-threshold verdicts (None = not evaluable).
    verdicts: VecDeque<Option<bool>>,
    /// Recent runs-to-break-even (None = never pays off).
    break_even: VecDeque<Option<f64>>,
    tunes: u64,
    cost_usd_total: f64,
    /// Whole cents already pushed to the registry counter, so repeated
    /// publishes add only the delta (counters are monotonic).
    cents_published: u64,
}

/// Continuous per-tenant SLO and cost accounting for the tuning
/// service (§IV-D as a *live* objective, not a post-hoc report).
///
/// Each completed tune folds its [`SloReport`] + [`AmortizationLedger`]
/// into a rolling window per tenant; [`SloTracker::publish`] pushes the
/// derived gauges/counters into a metrics registry under
/// [`obs::labeled`] keys, so an OpenMetrics scrape shows
/// `slo_within_10pct_ratio{tenant=...}`,
/// `slo_tuning_cost_cents_total{tenant=...}`,
/// `slo_retune_amortization{tenant=...}`, the error budget, and the
/// burn rate for every tenant.
#[derive(Debug)]
pub struct SloTracker {
    window: usize,
    /// The SLO threshold `x` in "within `x` of optimal" (§IV-D).
    threshold: f64,
    /// Target attainment (e.g. 0.9 = 90% of tunes within threshold).
    target: f64,
    tenants: Mutex<BTreeMap<String, TenantWindow>>,
}

impl Default for SloTracker {
    /// 32-tune windows on the paper's "within 10% of optimal" SLO with
    /// a 90% attainment target.
    fn default() -> Self {
        SloTracker::new(32, 0.10, 0.9)
    }
}

impl SloTracker {
    /// A tracker over `window`-tune rolling windows, judging each tune
    /// as within `threshold` of optimal, against an attainment
    /// `target` in `(0, 1)`.
    pub fn new(window: usize, threshold: f64, target: f64) -> Self {
        SloTracker {
            window: window.max(1),
            threshold,
            target: target.clamp(0.0, 1.0 - 1e-9),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The SLO threshold this tracker judges against.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Folds one completed tune into `tenant`'s window and returns the
    /// updated statistics.
    pub fn observe(
        &self,
        tenant: &str,
        report: &SloReport,
        ledger: &AmortizationLedger,
    ) -> TenantSloStats {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let w = tenants.entry(tenant.to_string()).or_default();
        w.tunes += 1;
        w.cost_usd_total += ledger.tuning_cost_usd;
        w.verdicts
            .push_back(report.within_of_optimal(self.threshold));
        w.break_even.push_back(ledger.runs_to_break_even());
        while w.verdicts.len() > self.window {
            w.verdicts.pop_front();
        }
        while w.break_even.len() > self.window {
            w.break_even.pop_front();
        }
        self.stats_of(w)
    }

    /// Current statistics for `tenant`, if it has been observed.
    pub fn stats(&self, tenant: &str) -> Option<TenantSloStats> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.get(tenant).map(|w| self.stats_of(w))
    }

    /// Tenants observed so far, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants.keys().cloned().collect()
    }

    fn stats_of(&self, w: &TenantWindow) -> TenantSloStats {
        let evaluable: Vec<bool> = w.verdicts.iter().filter_map(|v| *v).collect();
        let within_ratio = if evaluable.is_empty() {
            1.0
        } else {
            evaluable.iter().filter(|&&b| b).count() as f64 / evaluable.len() as f64
        };
        let allowed_miss = 1.0 - self.target;
        let burn_rate = (1.0 - within_ratio) / allowed_miss;
        let paying: Vec<f64> = w.break_even.iter().filter_map(|b| *b).collect();
        let mean_runs_to_break_even = if paying.is_empty() {
            None
        } else {
            Some(paying.iter().sum::<f64>() / paying.len() as f64)
        };
        TenantSloStats {
            tunes: w.tunes,
            evaluable: evaluable.len() as u64,
            within_ratio,
            error_budget_remaining: 1.0 - burn_rate,
            burn_rate,
            cost_cents: w.cost_usd_total * 100.0,
            mean_runs_to_break_even,
        }
    }

    /// Publishes every tenant's statistics into `registry` under
    /// per-tenant labeled keys. Gauges are overwritten; the cost
    /// counter advances by the spend since the last publish.
    pub fn publish(&self, registry: &obs::Registry) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        for (tenant, w) in tenants.iter_mut() {
            let stats = self.stats_of(w);
            let labels: &[(&str, &str)] = &[("tenant", tenant)];
            registry
                .gauge(&obs::labeled("slo.within_10pct_ratio", labels))
                .set(stats.within_ratio);
            registry
                .gauge(&obs::labeled("slo.error_budget_remaining", labels))
                .set(stats.error_budget_remaining);
            registry
                .gauge(&obs::labeled("slo.burn_rate", labels))
                .set(stats.burn_rate);
            registry
                .gauge(&obs::labeled("slo.retune_amortization", labels))
                .set(stats.mean_runs_to_break_even.unwrap_or(f64::INFINITY));
            let cents_total = stats.cost_cents.max(0.0).round() as u64;
            let delta = cents_total.saturating_sub(w.cents_published);
            if delta > 0 {
                registry
                    .counter(&obs::labeled("slo.tuning_cost_cents", labels))
                    .add(delta);
                w.cents_published = cents_total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tuned: f64, optimal: f64) -> SloReport {
        SloReport {
            tuned_runtime_s: tuned,
            optimal_runtime_s: Some(optimal),
            best_similar_runtime_s: Some(optimal * 1.1),
            default_runtime_s: Some(optimal * 20.0),
        }
    }

    #[test]
    fn distance_and_within() {
        let r = report(110.0, 100.0);
        assert!((r.distance_from_optimal().unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(r.within_of_optimal(0.15), Some(true));
        assert_eq!(r.within_of_optimal(0.05), Some(false));
    }

    #[test]
    fn improvement_over_default_matches_dac_style_factor() {
        let r = report(100.0, 100.0);
        assert!((r.improvement_over_default().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn within_best_similar_uses_history_reference() {
        let r = report(112.0, 100.0); // best similar = 110
        assert_eq!(r.within_of_best_similar(0.05), Some(true));
        assert_eq!(r.within_of_best_similar(0.01), Some(false));
    }

    #[test]
    fn ledger_break_even() {
        let l = AmortizationLedger {
            tuning_cost_usd: 100.0,
            baseline_run_cost_usd: 12.0,
            tuned_run_cost_usd: 10.0,
        };
        assert!((l.runs_to_break_even().unwrap() - 50.0).abs() < 1e-9);
        assert!(l.amortizes_within(90.0));
        assert!(!l.amortizes_within(40.0));
        assert!((l.net_saving_after(100.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ledger_never_pays_off_without_savings() {
        let l = AmortizationLedger {
            tuning_cost_usd: 100.0,
            baseline_run_cost_usd: 10.0,
            tuned_run_cost_usd: 10.5,
        };
        assert_eq!(l.runs_to_break_even(), None);
        assert!(!l.amortizes_within(1e9));
    }

    #[test]
    fn attainment_curve_fractions() {
        let reports = vec![
            report(101.0, 100.0),
            report(120.0, 100.0),
            report(200.0, 100.0),
        ];
        let curve = attainment_curve(&reports, &[0.05, 0.25, 1.5]);
        assert_eq!(curve[0], (0.05, 1.0 / 3.0));
        assert!((curve[1].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(curve[2].1, 1.0);
    }

    fn ledger(tuning: f64, baseline: f64, tuned: f64) -> AmortizationLedger {
        AmortizationLedger {
            tuning_cost_usd: tuning,
            baseline_run_cost_usd: baseline,
            tuned_run_cost_usd: tuned,
        }
    }

    #[test]
    fn tracker_rolls_windows_and_accumulates_cost() {
        let tracker = SloTracker::new(4, 0.10, 0.9);
        // Three hits, one miss → 75% within, all in one 4-tune window.
        for tuned in [100.0, 105.0, 109.0, 150.0] {
            tracker.observe("alice", &report(tuned, 100.0), &ledger(2.0, 1.0, 0.5));
        }
        let stats = tracker.stats("alice").unwrap();
        assert_eq!(stats.tunes, 4);
        assert_eq!(stats.evaluable, 4);
        assert!((stats.within_ratio - 0.75).abs() < 1e-9);
        // Miss rate 0.25 against an allowed 0.10 → burn rate 2.5.
        assert!((stats.burn_rate - 2.5).abs() < 1e-9);
        assert!((stats.error_budget_remaining - (1.0 - 2.5)).abs() < 1e-9);
        assert!((stats.cost_cents - 800.0).abs() < 1e-9);
        assert!((stats.mean_runs_to_break_even.unwrap() - 4.0).abs() < 1e-9);

        // Four more hits push the miss out of the window entirely.
        for _ in 0..4 {
            tracker.observe("alice", &report(100.0, 100.0), &ledger(2.0, 1.0, 0.5));
        }
        let stats = tracker.stats("alice").unwrap();
        assert_eq!(stats.tunes, 8);
        assert_eq!(stats.within_ratio, 1.0);
        assert_eq!(stats.burn_rate, 0.0);
        assert!((stats.cost_cents - 1600.0).abs() < 1e-9, "cost is all-time");
    }

    #[test]
    fn tracker_with_no_evaluable_verdicts_reports_clean() {
        let tracker = SloTracker::default();
        let blind = SloReport {
            tuned_runtime_s: 50.0,
            optimal_runtime_s: None,
            best_similar_runtime_s: None,
            default_runtime_s: None,
        };
        let stats = tracker.observe("bob", &blind, &ledger(1.0, 1.0, 2.0));
        assert_eq!(stats.evaluable, 0);
        assert_eq!(stats.within_ratio, 1.0);
        assert_eq!(stats.burn_rate, 0.0);
        assert_eq!(stats.mean_runs_to_break_even, None);
    }

    #[test]
    fn tracker_publishes_labeled_series() {
        let reg = obs::Registry::new();
        let tracker = SloTracker::new(8, 0.10, 0.9);
        tracker.observe("alice", &report(100.0, 100.0), &ledger(2.0, 1.0, 0.5));
        tracker.observe("bob", &report(150.0, 100.0), &ledger(3.0, 1.0, 2.0));
        tracker.publish(&reg);
        tracker.publish(&reg); // idempotent for counters (no new spend)

        let snap = reg.snapshot();
        let gauge = |key: &str| {
            snap.gauges
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {key}"))
        };
        assert_eq!(gauge("slo.within_10pct_ratio{tenant=\"alice\"}"), 1.0);
        assert_eq!(gauge("slo.within_10pct_ratio{tenant=\"bob\"}"), 0.0);
        assert_eq!(
            gauge("slo.retune_amortization{tenant=\"bob\"}"),
            f64::INFINITY,
            "a ledger that never pays off publishes +Inf"
        );
        let cents: Vec<_> = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("slo.tuning_cost_cents"))
            .collect();
        assert_eq!(cents.len(), 2);
        assert!(cents.iter().any(|(k, v)| k.contains("alice") && *v == 200));
        assert!(cents.iter().any(|(k, v)| k.contains("bob") && *v == 300));

        // And the OpenMetrics rendering carries the tenant labels.
        let text = obs::openmetrics::render(&snap);
        assert!(
            text.contains("slo_within_10pct_ratio{tenant=\"alice\"} 1"),
            "{text}"
        );
        assert!(text.contains("slo_tuning_cost_cents_total{tenant=\"bob\"} 300"));
    }
}
