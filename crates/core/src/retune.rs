//! Re-tuning detection (§V-D): deciding *when* a workload's tuned
//! configuration has gone stale.
//!
//! The monitor watches the stream of managed-run observations and
//! signals re-tuning on (a) statistical drift in runtimes (via a
//! pluggable change detector) or (b) an input-size regime change read
//! from the workload signature — the "simple trigger" the paper
//! sketches ("detecting relative performance degradation over time
//! while running the same workload type on the same cluster
//! configuration").

use models::{ChangeDetector, Cusum, FixedThreshold, PageHinkley};
use serde::{Deserialize, Serialize};

use crate::characterize::WorkloadSignature;
use crate::objective::Observation;

/// Which detection rule drives re-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetunePolicy {
    /// The fixed-percentage rule the paper criticizes; the payload is
    /// the relative threshold (e.g. 20 ⇒ +20%).
    FixedThresholdPct(u32),
    /// Page–Hinkley drift detection on runtimes.
    PageHinkley,
    /// Two-sided CUSUM on runtimes.
    Cusum,
}

impl RetunePolicy {
    fn build(self, expected_runtime_s: f64) -> Box<dyn ChangeDetector + Send> {
        match self {
            RetunePolicy::FixedThresholdPct(pct) => {
                Box::new(FixedThreshold::new(f64::from(pct) / 100.0, 5))
            }
            RetunePolicy::PageHinkley => {
                // Tolerate drift of 5% of the expected runtime per run;
                // alarm only after more than a full runtime's worth of
                // cumulative excess — sized so straggler-level noise
                // (~10% sigma) stays below the bar over long windows.
                Box::new(PageHinkley::new(
                    0.05 * expected_runtime_s,
                    1.2 * expected_runtime_s,
                ))
            }
            RetunePolicy::Cusum => Box::new(Cusum::new(0.10, 1.5, 5)),
        }
    }

    /// The policy's display name.
    pub fn label(self) -> String {
        match self {
            RetunePolicy::FixedThresholdPct(p) => format!("fixed+{p}%"),
            RetunePolicy::PageHinkley => "page-hinkley".to_owned(),
            RetunePolicy::Cusum => "cusum".to_owned(),
        }
    }
}

/// Why re-tuning was signalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetuneReason {
    /// Runtime drift detected by the statistical rule.
    RuntimeDrift,
    /// The workload's input-size regime changed.
    InputRegimeChange,
}

/// A per-workload re-tuning monitor.
pub struct RetuneMonitor {
    policy: RetunePolicy,
    detector: Option<Box<dyn ChangeDetector + Send>>,
    baseline_signature: Option<WorkloadSignature>,
    runs_since_reset: usize,
}

impl std::fmt::Debug for RetuneMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetuneMonitor")
            .field("policy", &self.policy)
            .field("runs_since_reset", &self.runs_since_reset)
            .finish()
    }
}

impl RetuneMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(policy: RetunePolicy) -> Self {
        RetuneMonitor {
            policy,
            detector: None,
            baseline_signature: None,
            runs_since_reset: 0,
        }
    }

    /// Feeds one managed-run observation; returns a reason when
    /// re-tuning should be triggered.
    pub fn observe(&mut self, obs: &Observation) -> Option<RetuneReason> {
        self.runs_since_reset += 1;

        // Input-regime change beats statistics: the signature tells us
        // the workload itself changed (§IV-B's evolving input sizes).
        if let Some(metrics) = &obs.metrics {
            let sig = WorkloadSignature::from_metrics(metrics);
            match &self.baseline_signature {
                None => self.baseline_signature = Some(sig),
                Some(base) => {
                    if !base.same_size_regime(&sig) {
                        self.emit_trigger(RetuneReason::InputRegimeChange);
                        return Some(RetuneReason::InputRegimeChange);
                    }
                }
            }
        }

        if self.detector.is_none() {
            self.detector = Some(self.policy.build(obs.runtime_s));
        }
        if let Some(detector) = self.detector.as_mut() {
            if detector.update(obs.runtime_s) {
                self.emit_trigger(RetuneReason::RuntimeDrift);
                return Some(RetuneReason::RuntimeDrift);
            }
        }
        None
    }

    fn emit_trigger(&self, reason: RetuneReason) {
        obs::registry().counter("retune.triggers").inc();
        obs::instant(
            "retune.trigger",
            obs::fields![
                ("policy", self.policy.label()),
                ("reason", format!("{reason:?}")),
                ("runs_since_reset", self.runs_since_reset)
            ],
        );
    }

    /// Resets after a re-tuning completes (the new configuration's
    /// behaviour becomes the new baseline).
    pub fn reset(&mut self) {
        self.detector = None;
        self.baseline_signature = None;
        self.runs_since_reset = 0;
    }

    /// Managed runs observed since the last reset.
    pub fn runs_since_reset(&self) -> usize {
        self.runs_since_reset
    }

    /// The active policy.
    pub fn policy(&self) -> RetunePolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::Configuration;

    fn obs(runtime: f64) -> Observation {
        Observation {
            config: Configuration::new(),
            runtime_s: runtime,
            cost_usd: 0.0,
            metrics: None,
            failure: None,
        }
    }

    #[test]
    fn stationary_stream_triggers_nothing() {
        let mut m = RetuneMonitor::new(RetunePolicy::PageHinkley);
        for i in 0..50 {
            let jitter = 1.0 + 0.01 * ((i % 5) as f64 - 2.0);
            assert_eq!(m.observe(&obs(100.0 * jitter)), None, "run {i}");
        }
        assert_eq!(m.runs_since_reset(), 50);
    }

    #[test]
    fn sustained_degradation_triggers_drift() {
        let mut m = RetuneMonitor::new(RetunePolicy::PageHinkley);
        for _ in 0..10 {
            assert_eq!(m.observe(&obs(100.0)), None);
        }
        let mut fired = false;
        for _ in 0..30 {
            if m.observe(&obs(140.0)) == Some(RetuneReason::RuntimeDrift) {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn fixed_threshold_false_positives_on_a_spike() {
        let mut fixed = RetuneMonitor::new(RetunePolicy::FixedThresholdPct(20));
        let mut ph = RetuneMonitor::new(RetunePolicy::PageHinkley);
        for _ in 0..10 {
            assert_eq!(fixed.observe(&obs(100.0)), None);
            assert_eq!(ph.observe(&obs(100.0)), None);
        }
        // One noisy spike.
        let f = fixed.observe(&obs(128.0));
        let p = ph.observe(&obs(128.0));
        assert_eq!(f, Some(RetuneReason::RuntimeDrift), "fixed rule misfires");
        assert_eq!(p, None, "page-hinkley absorbs the spike");
    }

    #[test]
    fn reset_clears_state() {
        let mut m = RetuneMonitor::new(RetunePolicy::Cusum);
        for _ in 0..10 {
            let _ = m.observe(&obs(100.0));
        }
        m.reset();
        assert_eq!(m.runs_since_reset(), 0);
        // New regime after reset is the new normal.
        for _ in 0..10 {
            assert_eq!(m.observe(&obs(150.0)), None);
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(RetunePolicy::FixedThresholdPct(25).label(), "fixed+25%");
        assert_eq!(RetunePolicy::PageHinkley.label(), "page-hinkley");
    }

    /// Feeds the monitor a synthetic drifting workload — 15 stationary
    /// runs at 100 s, then a persistent +40% degradation — and collects
    /// every emitted reason.
    fn reasons_on_drift(policy: RetunePolicy) -> Vec<RetuneReason> {
        let mut m = RetuneMonitor::new(policy);
        let mut reasons = Vec::new();
        for i in 0..45 {
            let runtime = if i < 15 { 100.0 } else { 140.0 };
            if let Some(r) = m.observe(&obs(runtime)) {
                reasons.push(r);
                m.reset();
            }
        }
        reasons
    }

    #[test]
    fn every_policy_reports_runtime_drift_on_sustained_degradation() {
        for policy in [
            RetunePolicy::FixedThresholdPct(20),
            RetunePolicy::PageHinkley,
            RetunePolicy::Cusum,
        ] {
            let reasons = reasons_on_drift(policy);
            assert!(
                !reasons.is_empty(),
                "{} never fired on a +40% sustained drift",
                policy.label()
            );
            assert_eq!(
                reasons[0],
                RetuneReason::RuntimeDrift,
                "{} first reason",
                policy.label()
            );
            assert!(
                reasons.iter().all(|r| *r == RetuneReason::RuntimeDrift),
                "{} emitted a non-drift reason without metrics: {reasons:?}",
                policy.label()
            );
        }
    }

    fn obs_with_input(runtime: f64, input_mb: f64) -> Observation {
        use simcluster::ExecMetrics;
        Observation {
            config: Configuration::new(),
            runtime_s: runtime,
            cost_usd: 0.0,
            metrics: Some(ExecMetrics {
                runtime_s: runtime,
                input_mb,
                ..Default::default()
            }),
            failure: None,
        }
    }

    #[test]
    fn input_regime_change_preempts_runtime_drift_for_every_policy() {
        for policy in [
            RetunePolicy::FixedThresholdPct(20),
            RetunePolicy::PageHinkley,
            RetunePolicy::Cusum,
        ] {
            let mut m = RetuneMonitor::new(policy);
            let mut reasons = Vec::new();
            for i in 0..20 {
                // The input grows 100x at run 10 (runtime grows with it:
                // both signals are present; the signature must win).
                let (rt, mb) = if i < 10 {
                    (100.0, 100.0)
                } else {
                    (400.0, 10_000.0)
                };
                if let Some(r) = m.observe(&obs_with_input(rt, mb)) {
                    reasons.push(r);
                    m.reset();
                }
            }
            assert_eq!(
                reasons.first(),
                Some(&RetuneReason::InputRegimeChange),
                "{} must attribute the change to input growth: {reasons:?}",
                policy.label()
            );
        }
    }
}
