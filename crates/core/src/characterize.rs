//! Workload characterization (§V-B): turning raw execution metrics into
//! a compact signature that supports similarity search across tenants.
//!
//! The signature deliberately captures *what the workload does* —
//! resource-time fractions, shuffle intensity, iteration structure —
//! rather than *how it was configured*, so that runs of the same
//! workload under different configurations land close together while
//! workloads with different bottlenecks separate.

use serde::{Deserialize, Serialize};

use simcluster::ExecMetrics;

/// A compact, configuration-insensitive workload signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSignature {
    /// The feature vector (see [`WorkloadSignature::FEATURES`]).
    features: Vec<f64>,
}

impl WorkloadSignature {
    /// Names of the signature dimensions, in order.
    pub const FEATURES: [&'static str; 8] = [
        "cpu_frac",
        "io_frac",
        "net_frac",
        "gc_frac",
        "ser_frac",
        "shuffle_per_input",
        "log10_input_mb",
        "log2_stages",
    ];

    /// Extracts a signature from one run's metrics.
    pub fn from_metrics(m: &ExecMetrics) -> Self {
        let shuffle_per_input = if m.input_mb > 0.0 {
            (m.shuffle_mb / m.input_mb).min(10.0) / 10.0
        } else {
            0.0
        };
        WorkloadSignature {
            features: vec![
                m.cpu_frac(),
                m.io_frac(),
                m.net_frac(),
                m.gc_frac(),
                m.ser_frac(),
                shuffle_per_input,
                (m.input_mb.max(1.0).log10() / 7.0).min(1.0),
                ((m.stages.len().max(1) as f64).log2() / 6.0).min(1.0),
            ],
        }
    }

    /// The raw feature vector.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Euclidean distance to another signature.
    ///
    /// # Panics
    ///
    /// Panics on signatures of different versions (lengths).
    pub fn distance(&self, other: &WorkloadSignature) -> f64 {
        models::stats::dist(&self.features, &other.features)
    }

    /// Similarity in `(0, 1]`: `1 / (1 + distance)`.
    pub fn similarity(&self, other: &WorkloadSignature) -> f64 {
        1.0 / (1.0 + self.distance(other))
    }

    /// Whether the signatures describe workloads of the same size
    /// regime (used by re-tune detection to distinguish input growth
    /// from environment drift).
    pub fn same_size_regime(&self, other: &WorkloadSignature) -> bool {
        (self.features[6] - other.features[6]).abs() < 0.04
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::spark::names as sp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simcluster::{ClusterSpec, Simulator, SparkEnv};
    use workloads::{DataScale, KMeans, Terasort, Wordcount, Workload};

    fn run(workload: &dyn Workload, scale: DataScale, cfg_tweak: i64) -> ExecMetrics {
        let cluster = ClusterSpec::table1_testbed();
        let cfg = confspace::spark::spark_space()
            .default_configuration()
            .with(sp::EXECUTOR_INSTANCES, 8i64)
            .with(sp::EXECUTOR_CORES, 2i64)
            .with(sp::EXECUTOR_MEMORY_MB, 4096 + cfg_tweak * 2048)
            .with(sp::DEFAULT_PARALLELISM, 32 + cfg_tweak * 32);
        let env = SparkEnv::resolve(&cluster, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(7 + cfg_tweak as u64);
        Simulator::dedicated()
            .run(&env, &workload.job(scale), &mut rng)
            .unwrap()
            .metrics
    }

    #[test]
    fn features_are_bounded() {
        let m = run(&Wordcount::new(), DataScale::Tiny, 0);
        let sig = WorkloadSignature::from_metrics(&m);
        assert_eq!(sig.features().len(), WorkloadSignature::FEATURES.len());
        assert!(sig.features().iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn same_workload_different_config_is_closer_than_different_workload() {
        let wc_a = WorkloadSignature::from_metrics(&run(&Wordcount::new(), DataScale::Small, 0));
        let wc_b = WorkloadSignature::from_metrics(&run(&Wordcount::new(), DataScale::Small, 1));
        let km = WorkloadSignature::from_metrics(&run(&KMeans::new(), DataScale::Small, 0));
        assert!(
            wc_a.distance(&wc_b) < wc_a.distance(&km),
            "wc-wc {} !< wc-km {}",
            wc_a.distance(&wc_b),
            wc_a.distance(&km)
        );
    }

    #[test]
    fn shuffle_heavy_and_scan_heavy_separate() {
        let wc = WorkloadSignature::from_metrics(&run(&Wordcount::new(), DataScale::Small, 0));
        let ts = WorkloadSignature::from_metrics(&run(&Terasort::new(), DataScale::Small, 0));
        assert!(wc.distance(&ts) > 0.05);
    }

    #[test]
    fn similarity_is_one_for_identical() {
        let m = run(&Wordcount::new(), DataScale::Tiny, 0);
        let s = WorkloadSignature::from_metrics(&m);
        assert_eq!(s.similarity(&s), 1.0);
    }

    #[test]
    fn size_regime_distinguishes_scales() {
        let small = WorkloadSignature::from_metrics(&run(&Wordcount::new(), DataScale::Tiny, 0));
        let big = WorkloadSignature::from_metrics(&run(&Wordcount::new(), DataScale::Ds2, 0));
        assert!(small.same_size_regime(&small));
        assert!(!small.same_size_regime(&big));
    }
}
