//! Parameter-sensitivity analysis (§V-A): models that can *transfer
//! their tuning knowledge* need to expose which parameters matter and
//! how — "the key knowledge to transfer is the correlation between the
//! different configuration parameters and the workload performance".
//!
//! Two complementary analyses over a tuning history:
//!
//! * [`additive_effects`] — fit a Duvenaud-style additive-kernel GP and
//!   read off each dimension's one-dimensional effect curve (the model
//!   *is* a sum of per-parameter functions, so the decomposition is
//!   exact for the model);
//! * [`permutation_importance`] — fit a random forest and measure how
//!   much shuffling each feature degrades its predictions (works for
//!   arbitrary interactions).

use confspace::ParamSpace;
use models::{ForestParams, GpRegressor, Kernel, RandomForest};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::objective::Observation;
use crate::tuner::encode_history;

/// One parameter's extracted effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterEffect {
    /// Parameter name.
    pub name: String,
    /// `(encoded value, predicted ln-runtime)` samples of the effect
    /// curve, holding every other parameter at the incumbent.
    pub curve: Vec<(f64, f64)>,
    /// Peak-to-trough magnitude of the curve (ln-runtime units) — the
    /// parameter's leverage.
    pub leverage: f64,
}

/// A ranked sensitivity report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Per-parameter effects, sorted by decreasing leverage.
    pub effects: Vec<ParameterEffect>,
}

impl SensitivityReport {
    /// Names of the `k` highest-leverage parameters.
    pub fn top(&self, k: usize) -> Vec<&str> {
        self.effects
            .iter()
            .take(k)
            .map(|e| e.name.as_str())
            .collect()
    }

    /// The leverage of a named parameter, if present.
    pub fn leverage_of(&self, name: &str) -> Option<f64> {
        self.effects
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.leverage)
    }
}

/// Grid resolution of the effect curves.
const GRID: usize = 9;

/// Fits an additive-kernel GP on the history and extracts each
/// parameter's one-dimensional effect curve around the best observed
/// configuration.
///
/// # Panics
///
/// Panics when `history` has no successful observation.
pub fn additive_effects(space: &ParamSpace, history: &[Observation]) -> SensitivityReport {
    let ok: Vec<Observation> = history.iter().filter(|o| o.is_ok()).cloned().collect();
    let Some(incumbent) = ok
        .iter()
        .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
        .cloned()
    else {
        panic!("sensitivity analysis needs at least one successful run");
    };
    let (x, y) = encode_history(space, &ok);
    let gp = GpRegressor::fit_auto(
        &x,
        &y,
        Kernel::Additive {
            length_scale: 0.3,
            variance: 1.0,
        },
    );
    let base = space.encode(&incumbent.config);

    let mut effects: Vec<ParameterEffect> = space
        .params()
        .iter()
        .enumerate()
        .map(|(d, p)| {
            // One batched prediction per parameter: the GRID queries
            // share the GP's scratch buffers instead of allocating per
            // grid point.
            let queries: Vec<Vec<f64>> = (0..GRID)
                .map(|g| {
                    let mut q = base.clone();
                    q[d] = g as f64 / (GRID - 1) as f64;
                    q
                })
                .collect();
            let curve: Vec<(f64, f64)> = queries
                .iter()
                .zip(gp.predict_batch(&queries))
                .map(|(q, (m, _))| (q[d], m))
                .collect();
            let (lo, hi) = curve
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &(_, m)| {
                    (l.min(m), h.max(m))
                });
            ParameterEffect {
                name: p.name.clone(),
                leverage: hi - lo,
                curve,
            }
        })
        .collect();
    effects.sort_by(|a, b| b.leverage.total_cmp(&a.leverage));
    SensitivityReport { effects }
}

/// Random-forest permutation importance: how much each feature's
/// shuffling inflates the forest's squared error on the history itself.
///
/// # Panics
///
/// Panics when `history` has no successful observation.
pub fn permutation_importance(
    space: &ParamSpace,
    history: &[Observation],
    rng: &mut dyn RngCore,
) -> SensitivityReport {
    let ok: Vec<Observation> = history.iter().filter(|o| o.is_ok()).cloned().collect();
    assert!(
        !ok.is_empty(),
        "sensitivity analysis needs at least one successful run"
    );
    let (x, y) = encode_history(space, &ok);
    let forest = RandomForest::fit(&x, &y, ForestParams::default(), rng);

    let sse = |xs: &[Vec<f64>]| -> f64 {
        xs.iter()
            .zip(&y)
            .map(|(xi, yi)| {
                let p = forest.predict(xi);
                (p - yi) * (p - yi)
            })
            .sum()
    };
    let baseline = sse(&x);

    let mut effects: Vec<ParameterEffect> = space
        .params()
        .iter()
        .enumerate()
        .map(|(d, p)| {
            // Shuffle column d.
            let mut col: Vec<f64> = x.iter().map(|r| r[d]).collect();
            col.shuffle(rng);
            let shuffled: Vec<Vec<f64>> = x
                .iter()
                .zip(&col)
                .map(|(r, &v)| {
                    let mut r = r.clone();
                    r[d] = v;
                    r
                })
                .collect();
            let inflation = (sse(&shuffled) - baseline).max(0.0) / ok.len() as f64;
            ParameterEffect {
                name: p.name.clone(),
                leverage: inflation.sqrt(),
                curve: Vec::new(),
            }
        })
        .collect();
    effects.sort_by(|a, b| b.leverage.total_cmp(&a.leverage));
    SensitivityReport { effects }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::{Configuration, ParamDef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic history where only `a` matters.
    fn history(space: &ParamSpace, n: usize) -> Vec<Observation> {
        let mut rng = StdRng::seed_from_u64(1);
        use confspace::{Sampler, UniformSampler};
        UniformSampler
            .sample_n(space, n, &mut rng)
            .into_iter()
            .map(|config| {
                let a = config.int("a") as f64;
                Observation {
                    runtime_s: (10.0 + (a - 20.0).powi(2)).max(1.0),
                    config,
                    cost_usd: 0.0,
                    metrics: None,
                    failure: None,
                }
            })
            .collect()
    }

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(ParamDef::int("a", 0, 100, 50, "matters"))
            .with(ParamDef::int("b", 0, 100, 50, "inert"))
            .with(ParamDef::boolean("c", false, "inert"))
    }

    #[test]
    fn additive_effects_rank_the_informative_parameter_first() {
        let s = space();
        let h = history(&s, 40);
        let report = additive_effects(&s, &h);
        assert_eq!(report.top(1), vec!["a"]);
        assert!(report.leverage_of("a").unwrap() > report.leverage_of("b").unwrap());
        // Curves exist with the right resolution.
        assert_eq!(report.effects[0].curve.len(), GRID);
    }

    #[test]
    fn permutation_importance_agrees() {
        let s = space();
        let h = history(&s, 60);
        let mut rng = StdRng::seed_from_u64(2);
        let report = permutation_importance(&s, &h, &mut rng);
        assert_eq!(report.top(1), vec!["a"]);
    }

    #[test]
    fn effect_curve_dips_at_the_optimum() {
        let s = space();
        let h = history(&s, 60);
        let report = additive_effects(&s, &h);
        let a = report
            .effects
            .iter()
            .find(|e| e.name == "a")
            .expect("a is present");
        // The minimum of a's curve should be near encoded 0.2 (a=20).
        let (argmin, _) = a
            .curve
            .iter()
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty");
        assert!((argmin - 0.2).abs() < 0.2, "curve minimum at {argmin}");
    }

    #[test]
    #[should_panic(expected = "at least one successful run")]
    fn empty_history_panics() {
        let s = space();
        let failed = vec![Observation {
            config: Configuration::new(),
            runtime_s: crate::FAILURE_PENALTY_S,
            cost_usd: 0.0,
            metrics: None,
            failure: Some(simcluster::FailureKind::DriverOom),
        }];
        let _ = additive_effects(&s, &failed);
    }
}
