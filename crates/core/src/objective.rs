//! Objectives: what tuners optimize.
//!
//! A tuner never sees the simulator directly — it sees an [`Objective`]:
//! "here is a configuration, give me an observation". This is exactly
//! the interface a tuning service has against a real cluster, which is
//! what lets every strategy in [`crate::tuner`] be substrate-agnostic.

use std::sync::atomic::{AtomicU64, Ordering};

use confspace::{Configuration, ParamSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use simcluster::{
    ClusterSpec, ExecMetrics, FailureKind, InterferenceModel, JobSpec, Simulator, SparkEnv,
};

/// Runtime assigned to crashed/unlaunchable runs so that failures rank
/// strictly worse than any successful run while staying finite for the
/// surrogate models (1 day, in seconds).
pub const FAILURE_PENALTY_S: f64 = 86_400.0;

/// Wall-clock time a launch failure wastes before the submission is
/// rejected (s) — cluster spin-up plus the failed allocation.
pub const LAUNCH_FAILURE_COST_S: f64 = 60.0;

/// Wall-clock time a runtime crash (OOM loop, fetch-timeout abort)
/// wastes before the job dies (s) — the paper's "expensive failed test
/// execution" is minutes of burn, not the scheduling penalty used for
/// ranking.
pub const RUNTIME_FAILURE_COST_S: f64 = 600.0;

/// One observed execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration that was run.
    pub config: Configuration,
    /// Observed runtime in seconds ([`FAILURE_PENALTY_S`] on failure).
    pub runtime_s: f64,
    /// Dollar cost of the run (cluster price × runtime; failures are
    /// charged the time-to-crash, approximated as 10% of the penalty).
    pub cost_usd: f64,
    /// Detailed metrics, absent for failed runs.
    pub metrics: Option<ExecMetrics>,
    /// How the run failed, if it did.
    pub failure: Option<FailureKind>,
}

impl Observation {
    /// Whether the run completed successfully.
    pub fn is_ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Whether the observation is *censored*: the execution harness
    /// aborted the trial (retry budget exhausted, panic, poisoned
    /// telemetry) or killed it at the deadline. The penalty runtime
    /// still ranks a censored point worst, but it carries no signal
    /// about the true objective — surrogates must fit on survivors only
    /// and penalize, not model, these regions.
    pub fn is_censored(&self) -> bool {
        matches!(
            self.failure,
            Some(FailureKind::TrialAborted { .. }) | Some(FailureKind::TrialTimeout)
        )
    }

    /// Wall-clock seconds the trial occupied the cluster: successful
    /// runs take their runtime, launch failures burn the spin-up time,
    /// runtime crashes burn minutes before dying. Distinct from
    /// `runtime_s`, which for failures is the *ranking* penalty
    /// ([`FAILURE_PENALTY_S`]) rather than elapsed time — deadlines
    /// compare against latency, never against the penalty.
    pub fn trial_latency_s(&self) -> f64 {
        match &self.failure {
            None => self.runtime_s,
            Some(FailureKind::LaunchFailure { .. }) => LAUNCH_FAILURE_COST_S,
            Some(_) => RUNTIME_FAILURE_COST_S,
        }
    }

    /// Checks the observation's telemetry for poisoned values (NaN,
    /// infinite or negative durations/costs) that must never reach the
    /// history store or the surrogates.
    pub fn validate(&self) -> Result<(), String> {
        if !self.runtime_s.is_finite() || self.runtime_s < 0.0 {
            return Err(format!("poisoned runtime {}", self.runtime_s));
        }
        if !self.cost_usd.is_finite() || self.cost_usd < 0.0 {
            return Err(format!("poisoned cost {}", self.cost_usd));
        }
        if let Some(m) = &self.metrics {
            if !m.is_wellformed() {
                return Err("poisoned execution metrics".to_owned());
            }
        }
        Ok(())
    }
}

/// A black-box tuning objective.
pub trait Objective {
    /// The configuration space being tuned.
    fn space(&self) -> &ParamSpace;

    /// Runs one execution under `config` and returns the observation.
    fn evaluate(&mut self, config: &Configuration) -> Observation;

    /// A short description for reports.
    fn describe(&self) -> String {
        "objective".to_owned()
    }
}

/// The thread-safe evaluation path batched trial execution needs: an
/// objective that can run any number of trials concurrently from `&self`.
///
/// Where [`Objective::evaluate`] advances one mutable RNG stream (the
/// sequential loop's semantics), `evaluate_trial` derives all of a
/// trial's randomness from the explicit `trial_seed` — so a trial's
/// outcome is a pure function of `(configuration, trial_seed)` and
/// neither the batch size, the worker count, nor the completion order
/// of its neighbours can change what it observes.
pub trait BatchObjective: Objective + Sync {
    /// Runs one execution under `config`, seeded by `trial_seed` alone.
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation;
}

/// The simulated environment shared by the concrete objectives.
#[derive(Debug, Clone)]
pub struct SimEnvironment {
    /// Co-location interference model.
    pub interference: InterferenceModel,
    /// Base RNG seed; every evaluation advances an internal stream.
    pub seed: u64,
}

impl SimEnvironment {
    /// Dedicated (interference-free) hardware with the given seed.
    pub fn dedicated(seed: u64) -> Self {
        SimEnvironment {
            interference: InterferenceModel::none(),
            seed,
        }
    }

    /// A lightly-shared cloud.
    pub fn shared(seed: u64) -> Self {
        SimEnvironment {
            interference: InterferenceModel::light(),
            seed,
        }
    }
}

/// Stage-2 objective: tune DISC (Spark) parameters for a fixed job on a
/// fixed cluster.
#[derive(Debug)]
pub struct DiscObjective {
    cluster: ClusterSpec,
    job: JobSpec,
    space: ParamSpace,
    sim: Simulator,
    rng: StdRng,
    evaluations: AtomicU64,
}

impl DiscObjective {
    /// Creates the objective for `job` on `cluster`.
    pub fn new(cluster: ClusterSpec, job: JobSpec, env: &SimEnvironment) -> Self {
        DiscObjective {
            cluster,
            job,
            space: confspace::spark::spark_space(),
            sim: Simulator::with_interference(env.interference),
            rng: StdRng::seed_from_u64(env.seed),
            evaluations: AtomicU64::new(0),
        }
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// The cluster this objective runs on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Replaces the job (e.g. when input size evolves) without
    /// resetting the RNG stream.
    pub fn set_job(&mut self, job: JobSpec) {
        self.job = job;
    }

    /// The current job.
    pub fn job(&self) -> &JobSpec {
        &self.job
    }
}

/// Runs one simulation, translating failures into penalty observations.
pub(crate) fn observe(
    sim: &Simulator,
    cluster: &ClusterSpec,
    config: &Configuration,
    disc_config: &Configuration,
    job: &JobSpec,
    rng: &mut StdRng,
) -> Observation {
    let env = match SparkEnv::resolve(cluster, disc_config) {
        Ok(env) => env,
        Err(failure) => {
            return Observation {
                config: config.clone(),
                runtime_s: FAILURE_PENALTY_S,
                cost_usd: cluster.cost_for(LAUNCH_FAILURE_COST_S),
                metrics: None,
                failure: Some(failure),
            }
        }
    };
    match sim.run(&env, job, rng) {
        Ok(result) => Observation {
            config: config.clone(),
            runtime_s: result.runtime_s,
            cost_usd: result.cost_usd,
            metrics: Some(result.metrics),
            failure: None,
        },
        Err(failure) => Observation {
            config: config.clone(),
            runtime_s: FAILURE_PENALTY_S,
            cost_usd: cluster.cost_for(RUNTIME_FAILURE_COST_S),
            metrics: None,
            failure: Some(failure),
        },
    }
}

impl Objective for DiscObjective {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn evaluate(&mut self, config: &Configuration) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        observe(
            &self.sim,
            &self.cluster,
            config,
            config,
            &self.job,
            &mut self.rng,
        )
    }

    fn describe(&self) -> String {
        format!("DISC tuning of {} on {}", self.job.name, self.cluster)
    }
}

impl BatchObjective for DiscObjective {
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(trial_seed);
        observe(
            &self.sim,
            &self.cluster,
            config,
            config,
            &self.job,
            &mut rng,
        )
    }
}

/// Stage-1 objective: tune the cloud layer (instance family/size/node
/// count) for a fixed job, running with a fixed DISC configuration.
#[derive(Debug)]
pub struct CloudObjective {
    job: JobSpec,
    disc_config: Configuration,
    space: ParamSpace,
    sim: Simulator,
    rng: StdRng,
    evaluations: AtomicU64,
}

impl CloudObjective {
    /// Creates the objective with the given fixed DISC configuration.
    pub fn new(job: JobSpec, disc_config: Configuration, env: &SimEnvironment) -> Self {
        CloudObjective {
            job,
            disc_config,
            space: confspace::cloud::cloud_space(),
            sim: Simulator::with_interference(env.interference),
            rng: StdRng::seed_from_u64(env.seed.wrapping_add(1)),
            evaluations: AtomicU64::new(0),
        }
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// The launch-failure observation for an unresolvable cloud config.
    fn unknown_instance(config: &Configuration) -> Observation {
        Observation {
            config: config.clone(),
            runtime_s: FAILURE_PENALTY_S,
            cost_usd: 0.0,
            metrics: None,
            failure: Some(FailureKind::LaunchFailure {
                reason: "unknown instance type".to_owned(),
            }),
        }
    }
}

impl Objective for CloudObjective {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn evaluate(&mut self, config: &Configuration) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let cluster = match ClusterSpec::from_config(config) {
            Ok(c) => c,
            Err(_) => return Self::unknown_instance(config),
        };
        observe(
            &self.sim,
            &cluster,
            config,
            &self.disc_config,
            &self.job,
            &mut self.rng,
        )
    }

    fn describe(&self) -> String {
        format!("cloud tuning of {}", self.job.name)
    }
}

impl BatchObjective for CloudObjective {
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let cluster = match ClusterSpec::from_config(config) {
            Ok(c) => c,
            Err(_) => return Self::unknown_instance(config),
        };
        let mut rng = StdRng::seed_from_u64(trial_seed);
        observe(
            &self.sim,
            &cluster,
            config,
            &self.disc_config,
            &self.job,
            &mut rng,
        )
    }
}

/// Joint objective over cloud **and** DISC parameters at once (§I: the
/// two layers' optima are interdependent, e.g. vCPUs ↔ executor cores).
#[derive(Debug)]
pub struct JointObjective {
    job: JobSpec,
    space: ParamSpace,
    sim: Simulator,
    rng: StdRng,
    evaluations: AtomicU64,
}

impl JointObjective {
    /// Creates the joint objective for `job`.
    pub fn new(job: JobSpec, env: &SimEnvironment) -> Self {
        JointObjective {
            job,
            space: confspace::cloud::joint_space(),
            sim: Simulator::with_interference(env.interference),
            rng: StdRng::seed_from_u64(env.seed.wrapping_add(2)),
            evaluations: AtomicU64::new(0),
        }
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// The launch-failure observation for an unresolvable joint config.
    fn unknown_instance(config: &Configuration) -> Observation {
        Observation {
            config: config.clone(),
            runtime_s: FAILURE_PENALTY_S,
            cost_usd: 0.0,
            metrics: None,
            failure: Some(FailureKind::LaunchFailure {
                reason: "unknown instance type".to_owned(),
            }),
        }
    }
}

impl Objective for JointObjective {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn evaluate(&mut self, config: &Configuration) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let cluster = match ClusterSpec::from_config(config) {
            Ok(c) => c,
            Err(_) => return Self::unknown_instance(config),
        };
        observe(
            &self.sim,
            &cluster,
            config,
            config,
            &self.job,
            &mut self.rng,
        )
    }

    fn describe(&self) -> String {
        format!("joint cloud+DISC tuning of {}", self.job.name)
    }
}

impl BatchObjective for JointObjective {
    fn evaluate_trial(&self, config: &Configuration, trial_seed: u64) -> Observation {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let cluster = match ClusterSpec::from_config(config) {
            Ok(c) => c,
            Err(_) => return Self::unknown_instance(config),
        };
        let mut rng = StdRng::seed_from_u64(trial_seed);
        observe(&self.sim, &cluster, config, config, &self.job, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{DataScale, Wordcount, Workload};

    fn tiny_job() -> JobSpec {
        Wordcount::new().job(DataScale::Tiny)
    }

    #[test]
    fn disc_objective_evaluates_default_config() {
        let mut obj = DiscObjective::new(
            ClusterSpec::table1_testbed(),
            tiny_job(),
            &SimEnvironment::dedicated(1),
        );
        let cfg = obj.space().default_configuration();
        let obs = obj.evaluate(&cfg);
        assert!(obs.is_ok(), "{:?}", obs.failure);
        assert!(obs.runtime_s > 0.0 && obs.runtime_s < FAILURE_PENALTY_S);
        assert_eq!(obj.evaluations(), 1);
    }

    #[test]
    fn repeated_evaluations_are_noisy_but_close() {
        let mut obj = DiscObjective::new(
            ClusterSpec::table1_testbed(),
            tiny_job(),
            &SimEnvironment::dedicated(2),
        );
        let cfg = obj.space().default_configuration();
        let a = obj.evaluate(&cfg).runtime_s;
        let b = obj.evaluate(&cfg).runtime_s;
        assert_ne!(a, b, "objective should be stochastic");
        assert!(
            (a - b).abs() / a < 0.5,
            "noise should be bounded: {a} vs {b}"
        );
    }

    #[test]
    fn launch_failures_are_penalized() {
        let mut obj = DiscObjective::new(
            ClusterSpec::new(simcluster::catalog::lookup("m5", "large").unwrap(), 2),
            tiny_job(),
            &SimEnvironment::dedicated(3),
        );
        // 32 GB executor on an 8 GB node cannot launch.
        let cfg = obj
            .space()
            .default_configuration()
            .with(confspace::spark::names::EXECUTOR_MEMORY_MB, 32768i64);
        let obs = obj.evaluate(&cfg);
        assert!(!obs.is_ok());
        assert_eq!(obs.runtime_s, FAILURE_PENALTY_S);
    }

    #[test]
    fn cloud_objective_explores_instances() {
        let mut obj = CloudObjective::new(
            tiny_job(),
            confspace::spark::spark_space().default_configuration(),
            &SimEnvironment::dedicated(4),
        );
        let small = obj
            .space()
            .default_configuration()
            .with(confspace::cloud::names::INSTANCE_FAMILY, "m5")
            .with(confspace::cloud::names::INSTANCE_SIZE, "large")
            .with(confspace::cloud::names::NODE_COUNT, 2i64);
        let obs = obj.evaluate(&small);
        assert!(obs.is_ok());
        assert!(obs.cost_usd > 0.0);
    }

    #[test]
    fn joint_objective_uses_both_layers() {
        let mut obj = JointObjective::new(tiny_job(), &SimEnvironment::dedicated(5));
        assert_eq!(obj.space().len(), 29);
        let cfg = obj.space().default_configuration();
        let obs = obj.evaluate(&cfg);
        assert!(obs.is_ok());
    }
}
