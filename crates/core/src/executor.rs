//! Concurrent trial execution for batched tuning rounds.
//!
//! The paper frames tuning as a provider-side service (§IV): the
//! provider amortizes tuning across tenants, and production tuners
//! overlap trial evaluations instead of running them strictly one at a
//! time. [`TrialExecutor`] evaluates a batch of proposed configurations
//! over the `models::par` fork/join pool against a [`BatchObjective`]
//! (the `Sync` evaluation path of [`crate::Objective`]).
//!
//! Determinism contract: each trial's outcome is a pure function of
//! `(config, trial_seed)`, and the trial seed depends only on the
//! executor's base seed and the *global* trial index — never on the
//! batch size or thread count. Evaluating 8 trials as one batch of 8,
//! two batches of 4, or eight batches of 1 yields bitwise-identical
//! observations in the same order.

use confspace::Configuration;

use crate::objective::{BatchObjective, Observation};

/// Derives a well-mixed per-trial seed from the executor base seed and
/// the global trial index (SplitMix64 finalizer — consecutive indices
/// land in uncorrelated RNG streams).
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    let mut z = base_seed ^ trial_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluates batches of configurations concurrently with deterministic
/// per-trial seeding (outcomes are invariant to batch partitioning).
#[derive(Debug, Clone)]
pub struct TrialExecutor {
    base_seed: u64,
    issued: u64,
}

impl TrialExecutor {
    /// Creates an executor whose trial seeds derive from `base_seed`.
    pub fn new(base_seed: u64) -> Self {
        TrialExecutor {
            base_seed,
            issued: 0,
        }
    }

    /// Number of trials issued so far (the global trial index counter).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Evaluates `configs` concurrently, returning observations in
    /// input order. Each trial gets a seed derived from the global
    /// trial index, so splitting the same configs across differently
    /// sized batches produces bitwise-identical results.
    pub fn run_batch<O: BatchObjective + ?Sized>(
        &mut self,
        objective: &O,
        configs: &[Configuration],
    ) -> Vec<Observation> {
        if configs.is_empty() {
            return Vec::new();
        }
        let reg = obs::registry();
        reg.gauge("executor.queue_depth").set(configs.len() as f64);
        let first = self.issued;
        self.issued += configs.len() as u64;
        let indexed: Vec<(u64, &Configuration)> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (first + i as u64, c))
            .collect();
        let base = self.base_seed;
        let start = std::time::Instant::now();
        let out = models::par::par_map(&indexed, |(idx, cfg)| {
            objective.evaluate_trial(cfg, trial_seed(base, *idx))
        });
        reg.histogram("executor.batch_s")
            .record_secs(start.elapsed().as_secs_f64());
        reg.gauge("executor.queue_depth").set(0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{DiscObjective, Objective, SimEnvironment};
    use confspace::{Sampler, UniformSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simcluster::ClusterSpec;
    use workloads::{DataScale, Wordcount, Workload};

    fn disc_objective(seed: u64) -> DiscObjective {
        DiscObjective::new(
            ClusterSpec::table1_testbed(),
            Wordcount::new().job(DataScale::Tiny),
            &SimEnvironment::dedicated(seed),
        )
    }

    #[test]
    fn trial_seed_mixes_indices() {
        let a = trial_seed(42, 0);
        let b = trial_seed(42, 1);
        let c = trial_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, trial_seed(42, 0));
    }

    #[test]
    fn batch_split_is_invariant() {
        let obj = disc_objective(7);
        let mut rng = StdRng::seed_from_u64(11);
        let configs: Vec<_> = (0..8)
            .map(|_| UniformSampler.sample(obj.space(), &mut rng))
            .collect();

        let mut whole = TrialExecutor::new(99);
        let all = whole.run_batch(&obj, &configs);

        let mut split = TrialExecutor::new(99);
        let mut halves = split.run_batch(&obj, &configs[..4]);
        halves.extend(split.run_batch(&obj, &configs[4..]));

        assert_eq!(all.len(), 8);
        for (a, b) in all.iter().zip(&halves) {
            assert_eq!(a.runtime_s.to_bits(), b.runtime_s.to_bits());
            assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let obj = disc_objective(3);
        let mut ex = TrialExecutor::new(1);
        assert!(ex.run_batch(&obj, &[]).is_empty());
        assert_eq!(ex.issued(), 0);
    }
}
