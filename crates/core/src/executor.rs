//! Concurrent, fault-tolerant trial execution for batched tuning rounds.
//!
//! The paper frames tuning as a provider-side service (§IV): the
//! provider amortizes tuning across tenants, and production tuners
//! overlap trial evaluations instead of running them strictly one at a
//! time. [`TrialExecutor`] evaluates a batch of proposed configurations
//! over the `models::par` fork/join pool against a [`BatchObjective`]
//! (the `Sync` evaluation path of [`crate::Objective`]).
//!
//! Determinism contract: each trial's outcome is a pure function of
//! `(config, trial_seed)`, and the trial seed depends only on the
//! executor's base seed and the *global* trial index — never on the
//! batch size or thread count. Evaluating 8 trials as one batch of 8,
//! two batches of 4, or eight batches of 1 yields bitwise-identical
//! observations in the same order.
//!
//! Resilience contract (this layer's second job): a trial that errors,
//! hangs past its deadline, panics, or reports poisoned telemetry does
//! not take the round down. [`RetryPolicy`] retries it with capped
//! exponential backoff and deterministic jitter, [`TrialOutcome`]
//! reports `Ok`/`Failed`/`TimedOut` instead of panic-or-value, and
//! configurations that keep failing land on a quarantine list so later
//! rounds stop burning budget on them. With the default policy and a
//! no-op [`FaultInjector`], the resilient path is bitwise identical to
//! plain execution — attempt 0 uses exactly [`trial_seed`].

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use confspace::Configuration;
use serde::{Deserialize, Serialize};
use simcluster::FailureKind;

use crate::faults::{unit_draw, FaultInjector, FaultKind};
use crate::objective::{BatchObjective, Observation, FAILURE_PENALTY_S};

/// Derives a well-mixed per-trial seed from the executor base seed and
/// the global trial index (SplitMix64 finalizer — consecutive indices
/// land in uncorrelated RNG streams).
pub fn trial_seed(base_seed: u64, trial_index: u64) -> u64 {
    let mut z = base_seed ^ trial_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for retry `attempt` of the trial at `trial_index`. Attempt 0 is
/// exactly [`trial_seed`] — so a resilient executor that never needs to
/// retry is bitwise identical to the plain one — while later attempts
/// re-mix through the same finalizer so a retried trial sees a fresh,
/// reproducible randomness stream.
pub fn attempt_seed(base_seed: u64, trial_index: u64, attempt: u32) -> u64 {
    let first = trial_seed(base_seed, trial_index);
    if attempt == 0 {
        first
    } else {
        trial_seed(first, u64::from(attempt))
    }
}

/// Retry/backoff/deadline policy for resilient trial execution.
///
/// All fields are finite (serde-friendly); the defaults retry twice
/// with 0.5s → 1s backoff, a generous one-day per-trial deadline, and
/// quarantine after two strikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum evaluation attempts per trial (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry (s).
    pub base_backoff_s: f64,
    /// Multiplier applied per retry (clamped to ≥ 1 so the schedule is
    /// monotone non-decreasing).
    pub backoff_multiplier: f64,
    /// Cap on any single backoff (s).
    pub max_backoff_s: f64,
    /// Multiplicative jitter in `[0, jitter_frac]`, drawn
    /// deterministically from the trial seed.
    pub jitter_frac: f64,
    /// Per-trial deadline (s): an attempt whose wall-clock latency
    /// exceeds this is killed as timed out, and cumulative backoff
    /// never exceeds it.
    pub trial_deadline_s: f64,
    /// Strikes (failed/timed-out rounds) before a configuration is
    /// quarantined.
    pub quarantine_after: u32,
    /// Maximum failed trials tolerated in one round before the session
    /// stops early and returns a partial, degraded outcome.
    pub round_failure_budget: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_s: 8.0,
            jitter_frac: 0.25,
            trial_deadline_s: 86_400.0,
            quarantine_after: 2,
            round_failure_budget: usize::MAX,
        }
    }
}

impl RetryPolicy {
    /// Un-jittered backoff before retry `attempt` (0-based): capped
    /// exponential, monotone non-decreasing in `attempt`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let base = self.base_backoff_s.max(0.0);
        let mult = self.backoff_multiplier.max(1.0);
        let cap = self.max_backoff_s.max(0.0);
        (base * mult.powi(attempt.min(1024) as i32)).min(cap)
    }

    /// Backoff with deterministic jitter: multiplies [`backoff_s`] by
    /// `1 + jitter_frac · u` where `u ∈ [0, 1)` derives from `(seed,
    /// attempt)` alone — the same seed replays the same jitter.
    ///
    /// [`backoff_s`]: RetryPolicy::backoff_s
    pub fn jittered_backoff_s(&self, attempt: u32, seed: u64) -> f64 {
        let u = unit_draw(seed ^ u64::from(attempt).wrapping_mul(0xA5A5_1234_5678_9ABD));
        self.backoff_s(attempt) * (1.0 + self.jitter_frac.clamp(0.0, 1.0) * u)
    }

    /// The full backoff schedule for one trial: up to `max_attempts−1`
    /// jittered waits, truncated so the cumulative backoff never
    /// exceeds `trial_deadline_s`. An empty schedule means no retries.
    pub fn schedule(&self, seed: u64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut total = 0.0;
        for attempt in 0..self.max_attempts.saturating_sub(1) {
            let b = self.jittered_backoff_s(attempt, seed);
            if total + b > self.trial_deadline_s {
                break;
            }
            total += b;
            out.push(b);
        }
        out
    }
}

/// Why a trial attempt (or the whole trial) failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialError {
    /// The execution substrate reported a hard error (injected fault,
    /// preemption, lost container).
    Injected(String),
    /// The objective panicked while evaluating.
    Panicked(String),
    /// The observation carried poisoned telemetry (NaN/negative
    /// durations or costs) and was rejected.
    Poisoned(String),
    /// The configuration is quarantined; the trial was never run.
    Quarantined,
}

impl std::fmt::Display for TrialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrialError::Injected(why) => write!(f, "trial error: {why}"),
            TrialError::Panicked(why) => write!(f, "objective panicked: {why}"),
            TrialError::Poisoned(why) => write!(f, "poisoned telemetry: {why}"),
            TrialError::Quarantined => write!(f, "configuration quarantined"),
        }
    }
}

/// The result of one resilient trial: success, terminal failure after
/// retries, or deadline kill.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// The trial produced a valid observation.
    Ok {
        /// The observation (may still be an objective-level failure,
        /// e.g. an OOM penalty — that is signal, not a trial error).
        observation: Observation,
        /// Attempts consumed (1 = first try succeeded).
        attempts: u32,
    },
    /// Every allowed attempt failed.
    Failed {
        /// The configuration that was (or would have been) run.
        config: Configuration,
        /// The last attempt's error.
        error: TrialError,
        /// Attempts consumed (0 for quarantined configs).
        attempts: u32,
    },
    /// The trial hung or straggled past its deadline on its final
    /// attempt and was killed.
    TimedOut {
        /// The configuration that was run.
        config: Configuration,
        /// Attempts consumed.
        attempts: u32,
    },
}

impl TrialOutcome {
    /// Whether the trial produced a valid observation.
    pub fn is_ok(&self) -> bool {
        matches!(self, TrialOutcome::Ok { .. })
    }

    /// Attempts consumed by the trial.
    pub fn attempts(&self) -> u32 {
        match self {
            TrialOutcome::Ok { attempts, .. }
            | TrialOutcome::Failed { attempts, .. }
            | TrialOutcome::TimedOut { attempts, .. } => *attempts,
        }
    }

    /// The configuration the trial ran (or would have run).
    pub fn config(&self) -> &Configuration {
        match self {
            TrialOutcome::Ok { observation, .. } => &observation.config,
            TrialOutcome::Failed { config, .. } | TrialOutcome::TimedOut { config, .. } => config,
        }
    }

    /// The observation, if the trial succeeded.
    pub fn observation(&self) -> Option<&Observation> {
        match self {
            TrialOutcome::Ok { observation, .. } => Some(observation),
            _ => None,
        }
    }

    /// Collapses the outcome into an [`Observation`]: successes pass
    /// through; failures and timeouts become *censored* observations
    /// ([`Observation::is_censored`]) carrying the ranking penalty but
    /// no metrics, which surrogates skip.
    pub fn into_observation(self) -> Observation {
        match self {
            TrialOutcome::Ok { observation, .. } => observation,
            TrialOutcome::Failed { config, error, .. } => Observation {
                config,
                runtime_s: FAILURE_PENALTY_S,
                cost_usd: 0.0,
                metrics: None,
                failure: Some(FailureKind::TrialAborted {
                    reason: error.to_string(),
                }),
            },
            TrialOutcome::TimedOut { config, .. } => Observation {
                config,
                runtime_s: FAILURE_PENALTY_S,
                cost_usd: 0.0,
                metrics: None,
                failure: Some(FailureKind::TrialTimeout),
            },
        }
    }
}

/// Aggregate resilience statistics for one tuning session — the
/// "degradation report" a partial [`crate::TuningOutcome`] carries so a
/// caller can see how much of the budget survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Trials that produced a valid observation.
    pub completed: usize,
    /// Trials that exhausted their retry budget.
    pub failed: usize,
    /// Trials killed at the per-trial deadline.
    pub timed_out: usize,
    /// Total retry attempts across all trials.
    pub retries: u64,
    /// Configurations on the quarantine list at session end.
    pub quarantined: usize,
    /// Whether a round blew the failure budget and ended the session
    /// early with a partial outcome.
    pub budget_exhausted: bool,
}

impl DegradationReport {
    /// Folds one round of trial outcomes in; returns the number of
    /// failed-or-timed-out trials in the round (for budget checks).
    pub fn absorb_round(&mut self, outcomes: &[TrialOutcome]) -> usize {
        let mut round_failures = 0;
        for o in outcomes {
            self.retries += u64::from(o.attempts().saturating_sub(1));
            match o {
                TrialOutcome::Ok { .. } => self.completed += 1,
                TrialOutcome::Failed { .. } => {
                    self.failed += 1;
                    round_failures += 1;
                }
                TrialOutcome::TimedOut { .. } => {
                    self.timed_out += 1;
                    round_failures += 1;
                }
            }
        }
        round_failures
    }

    /// Whether anything actually went wrong.
    pub fn degraded(&self) -> bool {
        self.failed > 0 || self.timed_out > 0 || self.budget_exhausted
    }
}

/// Stable quarantine key for a configuration (`Configuration` has no
/// `Hash`; its `Display` renders parameters in canonical order).
fn quarantine_key(config: &Configuration) -> String {
    format!("{config}")
}

/// Runs one resilient trial: retries through the policy's backoff
/// schedule, injecting faults from `injector`, catching panics and
/// rejecting poisoned observations. Pure in `(config, base_seed,
/// trial_index, policy, injector)` — safe to run on any worker thread.
fn execute_trial<O: BatchObjective + ?Sized>(
    objective: &O,
    policy: &RetryPolicy,
    injector: &FaultInjector,
    base_seed: u64,
    trial_index: u64,
    config: &Configuration,
) -> TrialOutcome {
    let reg = obs::registry();
    let schedule = policy.schedule(trial_seed(base_seed, trial_index) ^ 0xBACC_0FF5);
    let allowed = ((schedule.len() + 1) as u32).min(policy.max_attempts.max(1));
    let mut last_error = TrialError::Injected("no attempts allowed".to_owned());
    let mut timed_out = false;
    for attempt in 0..allowed {
        if attempt > 0 {
            reg.counter("executor.retries").inc();
            reg.histogram("executor.backoff_s")
                .record_secs(schedule[(attempt - 1) as usize]);
        }
        let fault = injector.fault_for(trial_index, attempt);
        if fault == Some(FaultKind::Error) {
            last_error = TrialError::Injected(format!("injected fault at attempt {attempt}"));
            timed_out = false;
            continue;
        }
        if fault == Some(FaultKind::Hang) {
            // Infinite latency: only the deadline reaps it.
            timed_out = true;
            continue;
        }
        let seed = attempt_seed(base_seed, trial_index, attempt);
        let mut observation =
            match catch_unwind(AssertUnwindSafe(|| objective.evaluate_trial(config, seed))) {
                Ok(obs) => obs,
                Err(payload) => {
                    let why = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_owned());
                    last_error = TrialError::Panicked(why);
                    timed_out = false;
                    continue;
                }
            };
        match fault {
            Some(FaultKind::PoisonNan) => observation.runtime_s = f64::NAN,
            Some(FaultKind::PoisonNegative) => {
                observation.runtime_s = -observation.runtime_s.abs() - 1.0
            }
            _ => {}
        }
        if let Err(why) = observation.validate() {
            last_error = TrialError::Poisoned(why);
            timed_out = false;
            continue;
        }
        let factor = match fault {
            Some(FaultKind::Straggler(f)) => f,
            _ => 1.0,
        };
        if observation.trial_latency_s() * factor > policy.trial_deadline_s {
            timed_out = true;
            continue;
        }
        return TrialOutcome::Ok {
            observation,
            attempts: attempt + 1,
        };
    }
    if timed_out {
        TrialOutcome::TimedOut {
            config: config.clone(),
            attempts: allowed,
        }
    } else {
        TrialOutcome::Failed {
            config: config.clone(),
            error: last_error,
            attempts: allowed,
        }
    }
}

/// Evaluates batches of configurations concurrently with deterministic
/// per-trial seeding (outcomes are invariant to batch partitioning) and
/// optional fault-resilience (retry, deadline, quarantine).
#[derive(Debug, Clone)]
pub struct TrialExecutor {
    base_seed: u64,
    issued: u64,
    policy: RetryPolicy,
    injector: FaultInjector,
    strikes: HashMap<String, u32>,
    quarantined: HashSet<String>,
}

impl TrialExecutor {
    /// Creates an executor whose trial seeds derive from `base_seed`,
    /// with the default retry policy and no fault injection.
    pub fn new(base_seed: u64) -> Self {
        TrialExecutor {
            base_seed,
            issued: 0,
            policy: RetryPolicy::default(),
            injector: FaultInjector::none(),
            strikes: HashMap::new(),
            quarantined: HashSet::new(),
        }
    }

    /// Sets the retry policy and fault injector (builder style). Pass
    /// [`FaultInjector::none`] for production execution — the injector
    /// only exists so chaos tests can drive every failure path
    /// deterministically.
    pub fn with_resilience(mut self, policy: RetryPolicy, injector: FaultInjector) -> Self {
        self.policy = policy;
        self.injector = injector;
        self
    }

    /// Number of trials issued so far (the global trial index counter).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Number of quarantined configurations.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Whether `config` is quarantined (fails without evaluation).
    pub fn is_quarantined(&self, config: &Configuration) -> bool {
        self.quarantined.contains(&quarantine_key(config))
    }

    /// Evaluates `configs` concurrently, returning a [`TrialOutcome`]
    /// per configuration in input order. Quarantined configurations
    /// fail immediately without touching the objective (but still
    /// advance the global trial index, preserving the seeds of their
    /// neighbours). Strike counts update once per round — quarantine is
    /// round-granular, so outcomes for *distinct* configurations remain
    /// invariant to batch partitioning.
    pub fn run_trials<O: BatchObjective + ?Sized>(
        &mut self,
        objective: &O,
        configs: &[Configuration],
    ) -> Vec<TrialOutcome> {
        if configs.is_empty() {
            return Vec::new();
        }
        let reg = obs::registry();
        reg.gauge("executor.queue_depth").set(configs.len() as f64);
        let first = self.issued;
        self.issued += configs.len() as u64;
        let indexed: Vec<(u64, &Configuration, bool)> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (first + i as u64, c, self.is_quarantined(c)))
            .collect();
        let base = self.base_seed;
        let policy = self.policy;
        let injector = self.injector;
        let start = std::time::Instant::now();
        let out = models::par::par_map(&indexed, |(idx, cfg, quarantined)| {
            if *quarantined {
                TrialOutcome::Failed {
                    config: (*cfg).clone(),
                    error: TrialError::Quarantined,
                    attempts: 0,
                }
            } else {
                execute_trial(objective, &policy, &injector, base, *idx, cfg)
            }
        });
        reg.histogram("executor.batch_s")
            .record_secs(start.elapsed().as_secs_f64());
        reg.gauge("executor.queue_depth").set(0.0);
        for outcome in &out {
            match outcome {
                TrialOutcome::Ok { observation, .. } => {
                    // A success clears the configuration's strikes.
                    self.strikes.remove(&quarantine_key(&observation.config));
                }
                TrialOutcome::Failed {
                    error: TrialError::Quarantined,
                    ..
                } => {
                    reg.counter("executor.quarantine_hits").inc();
                }
                TrialOutcome::Failed { config, .. } | TrialOutcome::TimedOut { config, .. } => {
                    if matches!(outcome, TrialOutcome::TimedOut { .. }) {
                        reg.counter("executor.trial_timeouts").inc();
                    } else {
                        reg.counter("executor.trial_failures").inc();
                    }
                    let key = quarantine_key(config);
                    let strikes = self.strikes.entry(key.clone()).or_insert(0);
                    *strikes += 1;
                    if *strikes >= self.policy.quarantine_after.max(1)
                        && self.quarantined.insert(key)
                    {
                        reg.counter("executor.quarantined").inc();
                        // A config just crossed the strike threshold —
                        // capture the events leading up to it while
                        // they are still in the rings.
                        obs::flightrec::trigger_dump("quarantine");
                    }
                }
            }
        }
        out
    }

    /// Evaluates `configs` concurrently, returning observations in
    /// input order. Each trial gets a seed derived from the global
    /// trial index, so splitting the same configs across differently
    /// sized batches produces bitwise-identical results. Failed and
    /// timed-out trials collapse to censored penalty observations; with
    /// the default policy and no injector every trial succeeds on
    /// attempt 0 and this is exactly the plain evaluation path.
    pub fn run_batch<O: BatchObjective + ?Sized>(
        &mut self,
        objective: &O,
        configs: &[Configuration],
    ) -> Vec<Observation> {
        self.run_trials(objective, configs)
            .into_iter()
            .map(TrialOutcome::into_observation)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::objective::{DiscObjective, Objective, SimEnvironment};
    use confspace::{Sampler, UniformSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use simcluster::ClusterSpec;
    use workloads::{DataScale, Wordcount, Workload};

    fn disc_objective(seed: u64) -> DiscObjective {
        DiscObjective::new(
            ClusterSpec::table1_testbed(),
            Wordcount::new().job(DataScale::Tiny),
            &SimEnvironment::dedicated(seed),
        )
    }

    fn sample_configs(obj: &DiscObjective, n: usize, seed: u64) -> Vec<Configuration> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| UniformSampler.sample(obj.space(), &mut rng))
            .collect()
    }

    #[test]
    fn trial_seed_mixes_indices() {
        let a = trial_seed(42, 0);
        let b = trial_seed(42, 1);
        let c = trial_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, trial_seed(42, 0));
    }

    #[test]
    fn attempt_zero_is_trial_seed() {
        for idx in 0..32 {
            assert_eq!(attempt_seed(9, idx, 0), trial_seed(9, idx));
            assert_ne!(attempt_seed(9, idx, 1), trial_seed(9, idx));
        }
    }

    #[test]
    fn batch_split_is_invariant() {
        let obj = disc_objective(7);
        let configs = sample_configs(&obj, 8, 11);

        let mut whole = TrialExecutor::new(99);
        let all = whole.run_batch(&obj, &configs);

        let mut split = TrialExecutor::new(99);
        let mut halves = split.run_batch(&obj, &configs[..4]);
        halves.extend(split.run_batch(&obj, &configs[4..]));

        assert_eq!(all.len(), 8);
        for (a, b) in all.iter().zip(&halves) {
            assert_eq!(a.runtime_s.to_bits(), b.runtime_s.to_bits());
            assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let obj = disc_objective(3);
        let mut ex = TrialExecutor::new(1);
        assert!(ex.run_batch(&obj, &[]).is_empty());
        assert_eq!(ex.issued(), 0);
    }

    #[test]
    fn backoff_schedule_is_monotone_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_s: 3.0,
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut prev = 0.0;
        for k in 0..8 {
            let b = policy.backoff_s(k);
            assert!(b >= prev, "backoff must be non-decreasing");
            assert!(b <= 3.0, "backoff must respect the cap");
            prev = b;
        }
        assert_eq!(policy.backoff_s(7), 3.0);
    }

    #[test]
    fn injected_errors_are_retried_to_success() {
        let obj = disc_objective(5);
        let configs = sample_configs(&obj, 16, 21);
        // 30% error rate, 4 attempts: virtually every trial recovers.
        let policy = RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let mut ex = TrialExecutor::new(77)
            .with_resilience(policy, FaultInjector::new(123, FaultPlan::errors(0.3)));
        let outcomes = ex.run_trials(&obj, &configs);
        let retried = outcomes.iter().any(|o| o.attempts() > 1);
        assert!(retried, "some trial must have needed a retry");
        let ok = outcomes.iter().filter(|o| o.is_ok()).count();
        assert!(ok >= 14, "retries should recover most trials: {ok}/16");
    }

    #[test]
    fn permanent_hang_times_out_and_quarantines() {
        let obj = disc_objective(6);
        let configs = sample_configs(&obj, 4, 31);
        let plan = FaultPlan {
            permanent_straggler: Some(2),
            ..FaultPlan::none()
        };
        let policy = RetryPolicy {
            quarantine_after: 1,
            ..RetryPolicy::default()
        };
        let mut ex = TrialExecutor::new(55).with_resilience(policy, FaultInjector::new(9, plan));
        let outcomes = ex.run_trials(&obj, &configs);
        assert!(matches!(outcomes[2], TrialOutcome::TimedOut { .. }));
        assert!(ex.is_quarantined(&configs[2]));
        assert_eq!(ex.quarantined_count(), 1);
        // The same config in a later round fails without evaluation.
        let evals_before = obj.evaluations();
        let again = ex.run_trials(&obj, &configs[2..3]);
        assert!(matches!(
            again[0],
            TrialOutcome::Failed {
                error: TrialError::Quarantined,
                attempts: 0,
                ..
            }
        ));
        assert_eq!(obj.evaluations(), evals_before);
    }

    #[test]
    fn poisoned_observations_are_rejected_not_propagated() {
        let obj = disc_objective(8);
        let configs = sample_configs(&obj, 12, 41);
        // Poison every attempt: every trial must end Failed(Poisoned),
        // and the censored observations must be finite.
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let mut ex = TrialExecutor::new(3)
            .with_resilience(policy, FaultInjector::new(17, FaultPlan::poison(1.0)));
        let obs = ex.run_batch(&obj, &configs);
        for o in &obs {
            assert!(o.runtime_s.is_finite());
            assert!(o.is_censored(), "poisoned trials must be censored");
            assert!(o.metrics.is_none());
        }
    }

    #[test]
    fn resilient_noop_matches_plain_execution_bitwise() {
        let obj = disc_objective(12);
        let configs = sample_configs(&obj, 8, 51);
        let mut plain = TrialExecutor::new(42);
        let a = plain.run_batch(&obj, &configs);
        let mut resilient =
            TrialExecutor::new(42).with_resilience(RetryPolicy::default(), FaultInjector::none());
        let b = resilient.run_batch(&obj, &configs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.runtime_s.to_bits(), y.runtime_s.to_bits());
            assert_eq!(x.cost_usd.to_bits(), y.cost_usd.to_bits());
            assert_eq!(x.metrics, y.metrics);
        }
    }
}
