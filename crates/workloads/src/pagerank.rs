//! PageRank: the iterative, cache- and shuffle-sensitive workload.
//!
//! The link graph is loaded once and cached; each iteration joins the
//! cached links with the current ranks (a skewed, memory-hungry
//! shuffle) and aggregates contributions. Its performance therefore
//! hinges on (a) whether the cached graph fits in aggregate storage
//! memory — which stops being true as the input grows, forcing either
//! recomputation (MEMORY_ONLY) or disk reads — and (b) shuffle
//! parallelism matching the data volume. This is why the paper's
//! Table I shows re-tuning savings for Pagerank growing from 8% (DS2)
//! to 56% (DS3): the DS1-tuned configuration's memory/parallelism
//! choices fall off a cliff as the graph grows.

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The PageRank workload.
#[derive(Debug, Clone)]
pub struct Pagerank {
    /// Number of rank-update iterations.
    pub iterations: usize,
    /// Graph skew (power-law degree distribution).
    pub skew: f64,
}

impl Default for Pagerank {
    fn default() -> Self {
        Self::new()
    }
}

impl Pagerank {
    /// Standard HiBench-like PageRank: 5 iterations, heavy skew.
    pub fn new() -> Self {
        Pagerank {
            iterations: 5,
            skew: 0.35,
        }
    }

    /// A variant with a custom iteration count.
    pub fn with_iterations(iterations: usize) -> Self {
        Pagerank {
            iterations: iterations.max(1),
            skew: 0.35,
        }
    }
}

impl Workload for Pagerank {
    fn name(&self) -> &str {
        "pagerank"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        // Ranks are a fraction of the edge list's volume.
        let ranks = input * 0.25;
        let mut stages = vec![
            // Load + parse the edge list, cache the adjacency lists.
            StageSpec::input("pr-load", input, 0.008)
                .cached()
                .writes_output(input)
                .writes_shuffle(ranks)
                .with_mem_expansion(1.6)
                .with_skew(self.skew)
                .with_partitioning(Partitioning::InputBlocks { block_mb: 64.0 }),
        ];
        let mut prev = 0usize;
        for i in 0..self.iterations {
            // Join cached links with current ranks; emit contributions.
            let join =
                StageSpec::reduce(&format!("pr-iter{}-join", i + 1), vec![prev], ranks, 0.009)
                    .reads_cached(0, input)
                    .writes_shuffle(ranks)
                    .with_mem_expansion(2.2)
                    .with_skew(self.skew);
            stages.push(join);
            prev = stages.len() - 1;
        }
        // Final aggregation writes the rank vector out.
        stages.push(
            StageSpec::reduce("pr-output", vec![prev], ranks, 0.004)
                .writes_output(ranks)
                .with_mem_expansion(1.4)
                .with_skew(self.skew * 0.5),
        );
        JobSpec::new(&format!("pagerank@{}", scale.label()), stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_tracks_iterations() {
        let j = Pagerank::with_iterations(3).job(DataScale::Tiny);
        assert_eq!(j.num_stages(), 1 + 3 + 1);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn every_iteration_reads_the_cached_graph() {
        let j = Pagerank::new().job(DataScale::Ds1);
        let cached_readers = j.stages.iter().filter(|s| s.cached_read.is_some()).count();
        assert_eq!(cached_readers, 5);
        assert!(j.stages[0].cache_output);
    }

    #[test]
    fn iterations_chain_sequentially() {
        let j = Pagerank::new().job(DataScale::Ds1);
        for (i, s) in j.stages.iter().enumerate().skip(1) {
            assert_eq!(s.deps, vec![i - 1]);
        }
    }
}
