//! K-means clustering: iterative and CPU-bound over a cached dataset.
//!
//! Each iteration maps over the cached point set (heavy floating-point
//! work per MB) and shuffles only tiny centroid updates. Configuration
//! sensitivity comes almost entirely from CPU-side knobs (executor
//! layout vs. vCPUs) and from whether the points stay cached — a
//! different sensitivity *profile* from Pagerank, useful for the
//! workload-similarity experiments (§V-B).

use simcluster::{JobSpec, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The K-means workload.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of Lloyd iterations.
    pub iterations: usize,
}

impl Default for KMeans {
    fn default() -> Self {
        Self::new()
    }
}

impl KMeans {
    /// Standard HiBench-like K-means: 8 iterations.
    pub fn new() -> Self {
        KMeans { iterations: 8 }
    }

    /// A variant with a custom iteration count.
    pub fn with_iterations(iterations: usize) -> Self {
        KMeans {
            iterations: iterations.max(1),
        }
    }
}

impl Workload for KMeans {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        let centroid_update = (input * 0.001).max(0.5);
        let mut stages = vec![
            // Load + parse points, cache them.
            StageSpec::input("km-load", input, 0.006)
                .cached()
                .writes_output(input)
                .with_mem_expansion(1.3),
        ];
        let mut prev = 0usize;
        for i in 0..self.iterations {
            let assign = StageSpec::reduce(
                &format!("km-iter{}-assign", i + 1),
                vec![prev],
                centroid_update,
                0.030,
            )
            .reads_cached(0, input)
            .writes_shuffle(centroid_update)
            .with_mem_expansion(1.2);
            stages.push(assign);
            prev = stages.len() - 1;
        }
        stages.push(
            StageSpec::reduce("km-output", vec![prev], centroid_update, 0.002)
                .writes_output(centroid_update),
        );
        JobSpec::new(&format!("kmeans@{}", scale.label()), stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_shape() {
        let j = KMeans::with_iterations(4).job(DataScale::Tiny);
        assert_eq!(j.num_stages(), 6);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn shuffle_is_negligible() {
        let j = KMeans::new().job(DataScale::Ds2);
        assert!(j.total_shuffle_mb() < 0.01 * j.total_input_mb());
    }

    #[test]
    fn iterations_are_compute_heavy() {
        let j = KMeans::new().job(DataScale::Ds1);
        assert!(j.stages[1].cpu_s_per_mb > 0.02);
    }
}
