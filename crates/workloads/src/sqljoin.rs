//! SQL join + aggregation: a skewed shuffle join between a fact and a
//! dimension table, followed by a group-by.
//!
//! The join stage's task count follows `spark.sql.shuffle.partitions`
//! (not `spark.default.parallelism`), its hash tables expand memory
//! ~3×, and key skew creates stragglers — making this the workload
//! where SQL-specific knobs and speculation pay off.

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The SQL join workload.
#[derive(Debug, Clone)]
pub struct SqlJoin {
    /// Fraction of total input in the fact table (rest is dimension).
    pub fact_fraction: f64,
    /// Join-key skew.
    pub skew: f64,
}

impl Default for SqlJoin {
    fn default() -> Self {
        Self::new()
    }
}

impl SqlJoin {
    /// Standard TPC-style join: 80% fact table, heavy key skew.
    pub fn new() -> Self {
        SqlJoin {
            fact_fraction: 0.8,
            skew: 0.45,
        }
    }
}

impl Workload for SqlJoin {
    fn name(&self) -> &str {
        "sqljoin"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        let fact = input * self.fact_fraction;
        let dim = input - fact;
        let joined = fact * 0.6;
        JobSpec::new(
            &format!("sqljoin@{}", scale.label()),
            vec![
                StageSpec::input("sql-scan-fact", fact, 0.007)
                    .writes_shuffle(fact * 0.7)
                    .with_mem_expansion(1.2)
                    .with_skew(self.skew * 0.4),
                StageSpec::input("sql-scan-dim", dim, 0.007)
                    .writes_shuffle(dim * 0.9)
                    .with_mem_expansion(1.2),
                StageSpec::reduce("sql-join", vec![0, 1], fact * 0.7 + dim * 0.9, 0.012)
                    .writes_shuffle(joined * 0.4)
                    .with_mem_expansion(3.0)
                    .with_skew(self.skew)
                    .with_partitioning(Partitioning::ShufflePartitions),
                StageSpec::reduce("sql-groupby", vec![2], joined * 0.4, 0.008)
                    .writes_output(joined * 0.05)
                    .with_mem_expansion(1.8)
                    .with_skew(self.skew * 0.6)
                    .with_partitioning(Partitioning::ShufflePartitions),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_uses_sql_shuffle_partitions() {
        let j = SqlJoin::new().job(DataScale::Ds1);
        assert!(matches!(
            j.stages[2].partitioning,
            Partitioning::ShufflePartitions
        ));
        assert!(j.validate().is_ok());
    }

    #[test]
    fn join_is_memory_hungry_and_skewed() {
        let j = SqlJoin::new().job(DataScale::Ds1);
        assert!(j.stages[2].mem_expansion >= 2.5);
        assert!(j.stages[2].skew > 0.3);
    }

    #[test]
    fn join_reads_both_scans() {
        let j = SqlJoin::new().job(DataScale::Ds1);
        assert_eq!(j.stages[2].deps, vec![0, 1]);
    }
}
