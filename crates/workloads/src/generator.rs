//! Synthetic input descriptors and evolving-input sequences.
//!
//! §IV-B studies workloads "that process ever growing data sets"; this
//! module generates the input descriptions driving those experiments:
//! a record-level view of an input ([`InputSpec`]) and geometric
//! growth sequences ([`evolving_inputs`]).

use serde::{Deserialize, Serialize};

use crate::scale::DataScale;

/// A record-level description of a synthetic input dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Number of records.
    pub records: u64,
    /// Average record size in bytes.
    pub bytes_per_record: u32,
    /// Key skew in `[0, 1]` (0 = uniform keys, 1 = heavy Zipf).
    pub skew: f64,
}

impl InputSpec {
    /// Creates an input description.
    ///
    /// # Panics
    ///
    /// Panics when `records == 0` or `bytes_per_record == 0`.
    pub fn new(records: u64, bytes_per_record: u32, skew: f64) -> Self {
        assert!(records > 0, "need at least one record");
        assert!(bytes_per_record > 0, "records must have a size");
        InputSpec {
            records,
            bytes_per_record,
            skew: skew.clamp(0.0, 1.0),
        }
    }

    /// Total volume in MB.
    pub fn total_mb(&self) -> f64 {
        self.records as f64 * f64::from(self.bytes_per_record) / (1024.0 * 1024.0)
    }

    /// The [`DataScale`] this input corresponds to.
    pub fn scale(&self) -> DataScale {
        DataScale::Custom(self.total_mb())
    }

    /// The same dataset grown by `factor` (more records, same schema).
    #[must_use]
    pub fn grown(&self, factor: f64) -> InputSpec {
        InputSpec {
            records: ((self.records as f64) * factor.max(0.0)).max(1.0) as u64,
            ..*self
        }
    }
}

/// A geometric sequence of `n` input scales starting at `start_mb`,
/// multiplying by `factor` each step — the generalized DS1→DS2→DS3.
pub fn evolving_inputs(start_mb: f64, factor: f64, n: usize) -> Vec<DataScale> {
    assert!(start_mb > 0.0 && factor > 0.0, "growth must be positive");
    (0..n)
        .map(|i| DataScale::Custom(start_mb * factor.powi(i as i32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_arithmetic() {
        let spec = InputSpec::new(1_048_576, 1024, 0.2);
        assert!((spec.total_mb() - 1024.0).abs() < 1e-9);
        assert!((spec.scale().input_mb() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn growth_multiplies_records() {
        let spec = InputSpec::new(1000, 100, 0.0);
        let grown = spec.grown(4.0);
        assert_eq!(grown.records, 4000);
        assert_eq!(grown.bytes_per_record, 100);
    }

    #[test]
    fn skew_is_clamped() {
        assert_eq!(InputSpec::new(1, 1, 7.0).skew, 1.0);
        assert_eq!(InputSpec::new(1, 1, -1.0).skew, 0.0);
    }

    #[test]
    fn evolving_sequence_is_geometric() {
        let seq = evolving_inputs(1024.0, 4.0, 3);
        assert_eq!(seq.len(), 3);
        assert!((seq[1].input_mb() / seq[0].input_mb() - 4.0).abs() < 1e-9);
        assert!((seq[2].input_mb() / seq[1].input_mb() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_records_panics() {
        let _ = InputSpec::new(0, 1, 0.0);
    }
}
