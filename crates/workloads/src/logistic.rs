//! Logistic-regression training: the machine-learning job class Ernest
//! was built for (§II-A) — gradient iterations over a cached feature
//! matrix with tiny all-reduce style shuffles, and a runtime dominated
//! by `scale/machines` parallel work plus per-iteration coordination.

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The logistic-regression training workload.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Number of gradient-descent iterations.
    pub iterations: usize,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticRegression {
    /// Standard configuration: 10 gradient iterations.
    pub fn new() -> Self {
        LogisticRegression { iterations: 10 }
    }

    /// A variant with a custom iteration count.
    pub fn with_iterations(iterations: usize) -> Self {
        LogisticRegression {
            iterations: iterations.max(1),
        }
    }
}

impl Workload for LogisticRegression {
    fn name(&self) -> &str {
        "logistic"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        let gradient = (input * 0.0005).max(0.25);
        let mut stages = vec![StageSpec::input("lr-load", input, 0.007)
            .cached()
            .writes_output(input)
            .with_mem_expansion(1.3)
            .with_partitioning(Partitioning::InputBlocks { block_mb: 64.0 })];
        let mut prev = 0usize;
        for i in 0..self.iterations {
            let step = StageSpec::reduce(
                &format!("lr-iter{}-grad", i + 1),
                vec![prev],
                gradient,
                0.024,
            )
            .reads_cached(0, input)
            .writes_shuffle(gradient)
            .with_mem_expansion(1.2);
            stages.push(step);
            prev = stages.len() - 1;
        }
        stages.push(
            StageSpec::reduce("lr-model", vec![prev], gradient, 0.002).writes_output(gradient),
        );
        JobSpec::new(&format!("logistic@{}", scale.label()), stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_tracks_iterations() {
        let j = LogisticRegression::with_iterations(5).job(DataScale::Tiny);
        assert_eq!(j.num_stages(), 7);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn gradient_shuffles_are_tiny() {
        let j = LogisticRegression::new().job(DataScale::Ds1);
        assert!(j.total_shuffle_mb() < 0.01 * j.total_input_mb());
    }

    #[test]
    fn every_iteration_reads_the_cached_features() {
        let j = LogisticRegression::new().job(DataScale::Ds1);
        assert_eq!(
            j.stages.iter().filter(|s| s.cached_read.is_some()).count(),
            10
        );
    }
}
