//! Terasort: full-volume shuffle with memory-hungry sort buffers.
//!
//! Every input byte is shuffled and re-written, and the reduce side
//! sorts with ~2.5× memory expansion, so Terasort couples strongly to
//! parallelism, executor memory, compression and serializer choices —
//! the classic stress test for shuffle-path configuration.

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The Terasort workload.
#[derive(Debug, Clone, Default)]
pub struct Terasort;

impl Terasort {
    /// Standard terasort.
    pub fn new() -> Self {
        Terasort
    }
}

impl Workload for Terasort {
    fn name(&self) -> &str {
        "terasort"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        JobSpec::new(
            &format!("terasort@{}", scale.label()),
            vec![
                StageSpec::input("ts-sample-map", input, 0.004)
                    .writes_shuffle(input)
                    .with_mem_expansion(1.4)
                    .with_skew(0.05),
                StageSpec::reduce("ts-sort", vec![0], input, 0.005)
                    .writes_output(input)
                    .with_mem_expansion(2.5)
                    .with_skew(0.05)
                    .with_partitioning(Partitioning::DefaultParallelism),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffles_full_volume() {
        let j = Terasort::new().job(DataScale::Ds1);
        assert_eq!(j.total_shuffle_mb(), j.total_input_mb());
    }

    #[test]
    fn sort_stage_is_memory_hungry() {
        let j = Terasort::new().job(DataScale::Ds1);
        assert!(j.stages[1].mem_expansion >= 2.0);
    }
}
