//! The workload registry.

use crate::{
    BayesClassifier, KMeans, LogisticRegression, Pagerank, SqlJoin, Terasort, Wordcount, Workload,
};

/// All seven workloads, boxed for uniform handling.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Wordcount::new()),
        Box::new(Terasort::new()),
        Box::new(Pagerank::new()),
        Box::new(BayesClassifier::new()),
        Box::new(KMeans::new()),
        Box::new(SqlJoin::new()),
        Box::new(LogisticRegression::new()),
    ]
}

/// The paper's Table I trio: Pagerank, Bayes, Wordcount — in the
/// table's column order.
pub fn table1_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Pagerank::new()),
        Box::new(BayesClassifier::new()),
        Box::new(Wordcount::new()),
    ]
}

/// Looks up a workload by its canonical name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seven_unique_names() {
        let all = all_workloads();
        assert_eq!(all.len(), 7);
        let mut names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn table1_order_matches_the_paper() {
        let names: Vec<String> = table1_workloads()
            .iter()
            .map(|w| w.name().to_owned())
            .collect();
        assert_eq!(names, ["pagerank", "bayes", "wordcount"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("kmeans").is_some());
        assert!(workload_by_name("nope").is_none());
    }
}
