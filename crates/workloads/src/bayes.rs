//! Naive-Bayes classifier training: CPU-heavy tokenization with
//! moderate shuffle and a cached feature matrix.
//!
//! Sits between Wordcount and Pagerank in configuration sensitivity:
//! the tokenize/vectorize pass is compute-bound (serializer and codec
//! choices matter), per-class aggregation shuffles ~20% of the input,
//! and the cached TF vector gives mild memory sensitivity — matching
//! Table I's middle column (17–25% re-tuning savings).

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The Naive-Bayes training workload.
#[derive(Debug, Clone)]
pub struct BayesClassifier {
    /// Fraction of input volume shuffled as term-class counts.
    pub shuffle_ratio: f64,
}

impl Default for BayesClassifier {
    fn default() -> Self {
        Self::new()
    }
}

impl BayesClassifier {
    /// Standard HiBench-like Bayes training.
    pub fn new() -> Self {
        BayesClassifier {
            shuffle_ratio: 0.20,
        }
    }
}

impl Workload for BayesClassifier {
    fn name(&self) -> &str {
        "bayes"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        let counts = input * self.shuffle_ratio;
        JobSpec::new(
            &format!("bayes@{}", scale.label()),
            vec![
                // Tokenize + vectorize: CPU heavy, caches the TF matrix.
                StageSpec::input("nb-tokenize", input, 0.022)
                    .cached()
                    .writes_output(input * 0.3)
                    .writes_shuffle(counts)
                    .with_mem_expansion(1.5)
                    .with_skew(0.2)
                    .with_partitioning(Partitioning::InputBlocks { block_mb: 64.0 }),
                // Aggregate term-class counts.
                StageSpec::reduce("nb-aggregate", vec![0], counts, 0.010)
                    .writes_shuffle(counts * 0.3)
                    .with_mem_expansion(1.8)
                    .with_skew(0.25),
                // Model estimation over the cached TF matrix.
                StageSpec::reduce("nb-estimate", vec![1], counts * 0.3, 0.014)
                    .reads_cached(0, input * 0.3)
                    .with_mem_expansion(1.6)
                    .with_skew(0.15),
                // Write the model.
                StageSpec::reduce("nb-model", vec![2], counts * 0.05, 0.004)
                    .writes_output(counts * 0.05)
                    .with_mem_expansion(1.1),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_stage_pipeline() {
        let j = BayesClassifier::new().job(DataScale::Ds1);
        assert_eq!(j.num_stages(), 4);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn tokenize_is_cpu_heaviest() {
        let j = BayesClassifier::new().job(DataScale::Ds1);
        let tok = &j.stages[0];
        assert!(j.stages.iter().all(|s| s.cpu_s_per_mb <= tok.cpu_s_per_mb));
    }

    #[test]
    fn shuffle_is_moderate() {
        let j = BayesClassifier::new().job(DataScale::Ds2);
        let ratio = j.total_shuffle_mb() / j.total_input_mb();
        assert!((0.1..0.5).contains(&ratio), "ratio {ratio}");
    }
}
