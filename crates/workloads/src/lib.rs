//! HiBench-like analytics workloads as DAG generators.
//!
//! The paper's Table I experiments use three workloads from "a popular
//! big data benchmark" (HiBench \[20\]): **Pagerank**, **Bayes
//! classifier** and **Wordcount**, each at three evolving input sizes
//! DS1 < DS2 < DS3. This crate models those three plus **Terasort**,
//! **K-means**, a **SQL join** and **logistic regression** — seven
//! workloads spanning the
//! bottleneck spectrum:
//!
//! | workload  | bottleneck            | config coupling |
//! |-----------|-----------------------|-----------------|
//! | Wordcount | input scan            | weak (paper: 0–3% re-tune saving) |
//! | Terasort  | shuffle + sort memory | strong          |
//! | Pagerank  | iterative cache + shuffle | strong, grows with input (paper: 8–56%) |
//! | Bayes     | CPU + moderate shuffle/cache | medium (paper: 17–25%) |
//! | K-means   | iterative CPU         | medium          |
//! | SQL join  | skewed shuffle join   | strong          |
//! | LogisticRegression | iterative ML (Ernest's niche) | medium |
//!
//! Every workload implements [`Workload`], producing a
//! [`simcluster::JobSpec`] for a given [`DataScale`].

pub mod bayes;
pub mod generator;
pub mod kmeans;
pub mod logistic;
pub mod pagerank;
pub mod scale;
pub mod sqljoin;
pub mod suite;
pub mod terasort;
pub mod wordcount;

pub use bayes::BayesClassifier;
pub use generator::{evolving_inputs, InputSpec};
pub use kmeans::KMeans;
pub use logistic::LogisticRegression;
pub use pagerank::Pagerank;
pub use scale::DataScale;
pub use sqljoin::SqlJoin;
pub use suite::{all_workloads, table1_workloads, workload_by_name};
pub use terasort::Terasort;
pub use wordcount::Wordcount;

use simcluster::JobSpec;

/// A workload: a named generator of physical execution plans.
pub trait Workload: Send + Sync {
    /// The workload's canonical name, e.g. `"pagerank"`.
    fn name(&self) -> &str;

    /// Builds the job DAG for the given input scale.
    fn job(&self, scale: DataScale) -> JobSpec;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_produces_valid_dags_at_every_scale() {
        for w in all_workloads() {
            for scale in [
                DataScale::Tiny,
                DataScale::Small,
                DataScale::Ds1,
                DataScale::Ds2,
                DataScale::Ds3,
            ] {
                let job = w.job(scale);
                assert!(
                    job.validate().is_ok(),
                    "{} @ {scale:?} produced a malformed DAG",
                    w.name()
                );
                assert!(job.total_input_mb() > 0.0);
            }
        }
    }

    #[test]
    fn job_names_embed_workload_and_scale() {
        let j = Pagerank::new().job(DataScale::Ds2);
        assert!(j.name.contains("pagerank"));
    }

    #[test]
    fn bigger_scales_mean_more_input() {
        for w in all_workloads() {
            let small = w.job(DataScale::Ds1).total_input_mb();
            let big = w.job(DataScale::Ds3).total_input_mb();
            assert!(big > small * 4.0, "{}: {small} vs {big}", w.name());
        }
    }
}
