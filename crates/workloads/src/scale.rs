//! Input-data scales, including the paper's evolving DS1/DS2/DS3 sizes.

use serde::{Deserialize, Serialize};

/// An input-data scale for a workload.
///
/// `Ds1`–`Ds3` are the paper's three evolving input sizes (Table I);
/// `Tiny`/`Small` are fast presets for tests and examples; `Custom`
/// gives an explicit size in MB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataScale {
    /// 512 MB — test-speed preset.
    Tiny,
    /// 4 GB — example-speed preset.
    Small,
    /// 8 GB — the paper's first evolving size.
    Ds1,
    /// 32 GB — the paper's second evolving size.
    Ds2,
    /// 128 GB — the paper's third evolving size.
    Ds3,
    /// Explicit input size in MB.
    Custom(f64),
}

impl DataScale {
    /// The scale's input volume in MB.
    pub fn input_mb(self) -> f64 {
        match self {
            DataScale::Tiny => 512.0,
            DataScale::Small => 4_096.0,
            DataScale::Ds1 => 8_192.0,
            DataScale::Ds2 => 32_768.0,
            DataScale::Ds3 => 131_072.0,
            DataScale::Custom(mb) => mb.max(1.0),
        }
    }

    /// A short label for job names, e.g. `"DS2"`.
    pub fn label(self) -> String {
        match self {
            DataScale::Tiny => "tiny".to_owned(),
            DataScale::Small => "small".to_owned(),
            DataScale::Ds1 => "DS1".to_owned(),
            DataScale::Ds2 => "DS2".to_owned(),
            DataScale::Ds3 => "DS3".to_owned(),
            DataScale::Custom(mb) => format!("{mb:.0}MB"),
        }
    }

    /// The paper's evolving-input sequence, in order.
    pub fn evolving() -> [DataScale; 3] {
        [DataScale::Ds1, DataScale::Ds2, DataScale::Ds3]
    }
}

impl std::fmt::Display for DataScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_strictly_increasing() {
        let sizes = [
            DataScale::Tiny,
            DataScale::Small,
            DataScale::Ds1,
            DataScale::Ds2,
            DataScale::Ds3,
        ];
        for w in sizes.windows(2) {
            assert!(w[0].input_mb() < w[1].input_mb());
        }
    }

    #[test]
    fn ds_sequence_grows_geometrically() {
        let [a, b, c] = DataScale::evolving();
        assert_eq!(b.input_mb() / a.input_mb(), 4.0);
        assert_eq!(c.input_mb() / b.input_mb(), 4.0);
    }

    #[test]
    fn custom_is_clamped_positive() {
        assert_eq!(DataScale::Custom(-5.0).input_mb(), 1.0);
        assert_eq!(DataScale::Custom(777.0).input_mb(), 777.0);
    }

    #[test]
    fn labels() {
        assert_eq!(DataScale::Ds1.label(), "DS1");
        assert_eq!(DataScale::Custom(100.0).label(), "100MB");
    }
}
