//! Wordcount: the canonical scan-bound two-stage workload.
//!
//! A map stage scans the corpus and pre-aggregates word counts with a
//! combiner (so only ~5% of the input volume is shuffled), then a small
//! reduce merges per-partition counts. Because almost all time goes to
//! reading the input — whose task count Spark derives from block splits,
//! not from any tunable — Wordcount is nearly insensitive to
//! configuration, which is exactly why the paper's Table I shows 0–3%
//! re-tuning savings for it.

use simcluster::{JobSpec, Partitioning, StageSpec};

use crate::scale::DataScale;
use crate::Workload;

/// The Wordcount workload.
#[derive(Debug, Clone, Default)]
pub struct Wordcount {
    /// Fraction of input volume surviving the map-side combiner.
    pub combine_ratio: f64,
}

impl Wordcount {
    /// Standard HiBench-like wordcount (5% combiner survival).
    pub fn new() -> Self {
        Wordcount {
            combine_ratio: 0.05,
        }
    }

    /// A variant with a different combiner survival ratio (used for
    /// transfer-learning experiments on workload "families").
    pub fn with_combine_ratio(ratio: f64) -> Self {
        Wordcount {
            combine_ratio: ratio.clamp(0.005, 1.0),
        }
    }
}

impl Workload for Wordcount {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn job(&self, scale: DataScale) -> JobSpec {
        let input = scale.input_mb();
        let shuffled = input * self.combine_ratio;
        JobSpec::new(
            &format!("wordcount@{}", scale.label()),
            vec![
                // HiBench-style 64 MB splits: even DS1 yields more map
                // tasks than the testbed has slots, so scan throughput
                // saturates at every scale.
                StageSpec::input("wc-map", input, 0.010)
                    .writes_shuffle(shuffled)
                    .with_mem_expansion(1.1)
                    .with_skew(0.1)
                    .with_partitioning(Partitioning::InputBlocks { block_mb: 64.0 }),
                StageSpec::reduce("wc-reduce", vec![0], shuffled, 0.006)
                    .writes_output(shuffled * 0.2)
                    .with_mem_expansion(1.3)
                    .with_skew(0.15),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_two_stages() {
        let j = Wordcount::new().job(DataScale::Ds1);
        assert_eq!(j.num_stages(), 2);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn shuffle_is_small_fraction_of_input() {
        let j = Wordcount::new().job(DataScale::Ds2);
        assert!(j.total_shuffle_mb() < 0.1 * j.total_input_mb());
    }

    #[test]
    fn variant_changes_shuffle_volume() {
        let base = Wordcount::new().job(DataScale::Ds1).total_shuffle_mb();
        let heavy = Wordcount::with_combine_ratio(0.5)
            .job(DataScale::Ds1)
            .total_shuffle_mb();
        assert!(heavy > 5.0 * base);
    }
}
