//! Failure flight recorder: bounded per-thread ring buffers of recent
//! events, dumped as a Chrome trace when something goes wrong.
//!
//! A JSONL sink records everything forever; a flight recorder records
//! the *last few thousand events per thread* all the time, cheaply,
//! and only writes them out when a degradation report, quarantine, or
//! budget exhaustion fires (or an operator asks via
//! `stune --flight-dump`). The result is a post-mortem
//! `flight_NNN_<reason>.json` loadable in `chrome://tracing` /
//! Perfetto, or summarized by `trace_summary`.
//!
//! Writer-side guarantees: each thread appends to its own ring, and a
//! write never blocks — if the ring's lock is momentarily held by a
//! dump snapshot, the event is counted as dropped instead of making
//! the instrumented thread wait. The disabled fast path of
//! [`crate::span`] is untouched: the recorder is just another
//! [`Sink`].
//!
//! ```no_run
//! let recorder = obs::flightrec::install(4096, "/tmp/flight");
//! // ... tuning work; on failure some component calls ...
//! let path = obs::flightrec::trigger_dump("quarantine");
//! # let _ = (recorder, path);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, TryLockError};

use crate::event::Event;
use crate::sink::{self, Sink};
use crate::trace;

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's ring within the recorder it last wrote to,
    /// keyed by recorder id so a reinstalled recorder gets fresh
    /// registrations.
    static LOCAL_RING: RefCell<Option<(u64, Arc<ThreadRing>)>> = const { RefCell::new(None) };
}

/// One thread's bounded buffer of recent events.
struct ThreadRing {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl ThreadRing {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ThreadRing {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
        })
    }

    /// Non-blocking append: contention (only ever from a concurrent
    /// dump snapshot) drops the event rather than stalling the
    /// instrumented thread.
    fn push(&self, event: &Event) {
        let mut guard = match self.buf.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if guard.len() == self.capacity {
            guard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        guard.push_back(event.clone());
    }

    fn snapshot(&self) -> Vec<Event> {
        let guard = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        guard.iter().cloned().collect()
    }
}

/// The flight recorder: a [`Sink`] keeping per-thread rings and
/// writing Chrome-trace dumps on demand.
pub struct FlightRecorder {
    id: u64,
    capacity_per_thread: usize,
    dump_dir: PathBuf,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    dump_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping `capacity_per_thread` recent events per
    /// writer thread, dumping into `dump_dir` (created on first dump).
    pub fn new(capacity_per_thread: usize, dump_dir: impl Into<PathBuf>) -> Arc<Self> {
        Arc::new(FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity_per_thread,
            dump_dir: dump_dir.into(),
            rings: Mutex::new(Vec::new()),
            dump_seq: AtomicU64::new(0),
        })
    }

    /// Where dumps are written.
    pub fn dump_dir(&self) -> &Path {
        &self.dump_dir
    }

    /// Events dropped across all rings (overwrites + contention).
    pub fn dropped(&self) -> u64 {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> u64 {
        self.dump_seq.load(Ordering::Relaxed)
    }

    fn ring_for_this_thread(&self) -> Arc<ThreadRing> {
        LOCAL_RING.with(|cell| {
            let mut slot = cell.borrow_mut();
            if let Some((id, ring)) = slot.as_ref() {
                if *id == self.id {
                    return Arc::clone(ring);
                }
            }
            let ring = ThreadRing::new(self.capacity_per_thread);
            self.rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            *slot = Some((self.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Merged snapshot of every thread's ring, in timestamp order.
    pub fn snapshot(&self) -> Vec<Event> {
        let rings: Vec<Arc<ThreadRing>> = {
            let guard = self.rings.lock().unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        let mut events: Vec<Event> = rings.iter().flat_map(|r| r.snapshot()).collect();
        events.sort_by_key(|e| e.ts_ns);
        events
    }

    /// Writes the current snapshot as `flight_NNN_<reason>.json`
    /// (Chrome trace format) into the dump directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors.
    pub fn dump(&self, reason: &str) -> io::Result<PathBuf> {
        let events = self.snapshot();
        std::fs::create_dir_all(&self.dump_dir)?;
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dump_dir
            .join(format!("flight_{seq:03}_{}.json", sanitize_reason(reason)));
        trace::write_chrome_trace(&path, &events)?;
        crate::metrics::registry().counter("obs.flight.dumps").inc();
        Ok(path)
    }
}

impl Sink for FlightRecorder {
    fn accept(&self, event: &Event) {
        self.ring_for_this_thread().push(event);
    }
}

/// Keeps dump reasons filename-safe.
fn sanitize_reason(reason: &str) -> String {
    let cleaned: String = reason
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "manual".to_string()
    } else {
        cleaned
    }
}

fn current() -> &'static Mutex<Option<Arc<FlightRecorder>>> {
    static CURRENT: OnceLock<Mutex<Option<Arc<FlightRecorder>>>> = OnceLock::new();
    CURRENT.get_or_init(|| Mutex::new(None))
}

/// Creates a recorder, installs it as an event sink, and registers it
/// as the process's dump target for [`trigger_dump`].
pub fn install(capacity_per_thread: usize, dump_dir: impl Into<PathBuf>) -> Arc<FlightRecorder> {
    let recorder = FlightRecorder::new(capacity_per_thread, dump_dir);
    sink::install(Arc::clone(&recorder) as Arc<dyn Sink>);
    set_dump_target(Arc::clone(&recorder));
    recorder
}

/// Registers `recorder` as the process's [`trigger_dump`] target
/// without installing it as a sink — for callers that route events to
/// it through a wrapper (e.g. a [`crate::SamplingSink`]).
pub fn set_dump_target(recorder: Arc<FlightRecorder>) {
    *current().lock().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
}

/// The process's current dump target, if a recorder is installed.
pub fn installed() -> Option<Arc<FlightRecorder>> {
    current().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Detaches the dump target (pair with [`crate::uninstall_all`],
/// which removes it from the sink fan-out).
pub fn uninstall() {
    *current().lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Dumps the current recorder, if any, returning the dump path.
/// Failure-path instrumentation calls this unconditionally; with no
/// recorder installed (or on I/O error) it is a silent no-op — the
/// flight recorder must never take the service down.
pub fn trigger_dump(reason: &str) -> Option<PathBuf> {
    installed().and_then(|recorder| recorder.dump(reason).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FieldValue};
    use crate::json;

    fn test_event(ts_ns: u64, name: &str) -> Event {
        Event {
            ts_ns,
            tid: 1,
            kind: EventKind::Instant,
            name: name.to_string(),
            span_id: 0,
            parent_id: 0,
            fields: vec![("i".to_string(), FieldValue::U64(ts_ns))],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "obs_flightrec_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let dir = temp_dir("ring");
        let recorder = FlightRecorder::new(3, &dir);
        for i in 0..10 {
            recorder.accept(&test_event(i, "e"));
        }
        let events = recorder.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_ns, 7);
        assert_eq!(recorder.dropped(), 7);
    }

    #[test]
    fn dump_writes_parseable_chrome_trace() {
        let dir = temp_dir("dump");
        let recorder = FlightRecorder::new(64, &dir);
        recorder.accept(&test_event(5, "alpha"));
        recorder.accept(&test_event(9, "beta"));
        let path = recorder.dump("unit test!").expect("dump");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "flight_000_unit_test_.json"
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&text).expect("valid JSON");
        let items = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(recorder.dumps(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_get_their_own_rings_and_merge_in_order() {
        let dir = temp_dir("threads");
        let recorder = FlightRecorder::new(16, &dir);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let recorder = &recorder;
                scope.spawn(move || {
                    for i in 0..8 {
                        recorder.accept(&test_event(t * 100 + i, "work"));
                    }
                });
            }
        });
        let events = recorder.snapshot();
        assert_eq!(events.len(), 32);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(
            recorder.rings.lock().unwrap().len(),
            4,
            "one ring per writer thread"
        );
    }

    #[test]
    fn trigger_dump_without_recorder_is_none() {
        // No install() in obs unit tests, so the process-global slot
        // is empty here.
        assert!(trigger_dump("nothing").is_none());
    }
}
