//! Trace export: JSON Lines persistence and a Chrome trace-event
//! (`chrome://tracing` / Perfetto) converter.

use std::io::{self, BufRead, Write};
use std::path::Path;

use crate::event::{Event, EventKind, FieldValue};
use crate::json;

/// Reads events from JSONL text (one event per line; blank lines
/// skipped).
///
/// # Errors
///
/// Returns the first malformed line's error with its line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let e = Event::from_json(line).map_err(|err| format!("line {}: {err}", i + 1))?;
        events.push(e);
    }
    Ok(events)
}

/// Reads events from a JSONL reader.
///
/// # Errors
///
/// Propagates I/O errors; malformed lines become `InvalidData`.
pub fn read_jsonl(reader: impl BufRead) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let e = Event::from_json(trimmed).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {err}", i + 1))
        })?;
        events.push(e);
    }
    Ok(events)
}

/// Reads events from a JSONL file.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn read_jsonl_file(path: impl AsRef<Path>) -> io::Result<Vec<Event>> {
    let file = std::fs::File::open(path)?;
    read_jsonl(io::BufReader::new(file))
}

fn write_args(out: &mut String, fields: &[(String, FieldValue)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, k);
        out.push(':');
        match v {
            FieldValue::I64(n) => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            FieldValue::U64(n) => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            FieldValue::F64(n) => json::write_f64(out, *n),
            FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            FieldValue::Str(s) => json::write_escaped(out, s),
        }
    }
    out.push('}');
}

/// Converts events to a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form), loadable in
/// `chrome://tracing` or Perfetto.
///
/// Span start/end become `B`/`E` duration events, instants become `i`,
/// and counter samples become `C` series.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match e.kind {
            EventKind::SpanStart => "B",
            EventKind::SpanEnd => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        };
        out.push_str("{\"name\":");
        json::write_escaped(&mut out, &e.name);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":",
                e.tid.max(1)
            ),
        );
        json::write_f64(&mut out, e.ts_ns as f64 / 1e3);
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.fields.is_empty() {
            write_args(&mut out, &e.fields);
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Writes [`chrome_trace`] output to `path`.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_chrome_trace(path: impl AsRef<Path>, events: &[Event]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace(events).as_bytes())?;
    file.flush()
}

/// Parses a Chrome trace-event document (as written by
/// [`chrome_trace`] / the flight recorder) back into [`Event`]s, so
/// `trace_summary` can analyze flight-recorder dumps.
///
/// The Chrome format drops span ids, so nesting is reconstructed from
/// the `B`/`E` bracketing per thread with fresh synthetic ids; an `E`
/// without a matching `B` (the ring may have evicted the start) gets a
/// synthetic id with no start partner. Timestamps convert back from
/// microseconds to nanoseconds.
///
/// # Errors
///
/// Returns a message describing the first malformed entry.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<Event>, String> {
    let doc = json::parse(text)?;
    let items = doc
        .get("traceEvents")
        .and_then(json::JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    let mut next_id: u64 = 1;
    // Per-tid stack of open synthetic span ids.
    let mut stacks: std::collections::BTreeMap<u64, Vec<u64>> = std::collections::BTreeMap::new();
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| format!("entry {i}: missing ph"))?;
        let kind = match ph {
            "B" => EventKind::SpanStart,
            "E" => EventKind::SpanEnd,
            "i" | "I" => EventKind::Instant,
            "C" => EventKind::Counter,
            // Metadata/flow/other phases aren't events we model.
            _ => continue,
        };
        let name = item
            .get("name")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| format!("entry {i}: missing name"))?
            .to_string();
        let ts_us = item
            .get("ts")
            .and_then(json::JsonValue::as_f64)
            .ok_or_else(|| format!("entry {i}: missing ts"))?;
        let tid = item
            .get("tid")
            .and_then(json::JsonValue::as_u64)
            .unwrap_or(1);
        let mut fields = Vec::new();
        if let Some(json::JsonValue::Object(args)) = item.get("args") {
            for (k, v) in args {
                let fv = match v {
                    json::JsonValue::Bool(b) => FieldValue::Bool(*b),
                    json::JsonValue::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                        FieldValue::I64(*n as i64)
                    }
                    json::JsonValue::Num(n) => FieldValue::F64(*n),
                    json::JsonValue::Str(s) => FieldValue::Str(s.clone()),
                    json::JsonValue::Null => FieldValue::F64(f64::NAN),
                    other => return Err(format!("entry {i}: unsupported arg {other:?}")),
                };
                fields.push((k.clone(), fv));
            }
        }
        let stack = stacks.entry(tid).or_default();
        let (span_id, parent_id) = match kind {
            EventKind::SpanStart => {
                let parent = stack.last().copied().unwrap_or(0);
                let id = next_id;
                next_id += 1;
                stack.push(id);
                (id, parent)
            }
            EventKind::SpanEnd => {
                let id = stack.pop().unwrap_or_else(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
                (id, stack.last().copied().unwrap_or(0))
            }
            EventKind::Instant | EventKind::Counter => (0, stack.last().copied().unwrap_or(0)),
        };
        events.push(Event {
            ts_ns: (ts_us * 1e3).round().max(0.0) as u64,
            tid,
            kind,
            name,
            span_id,
            parent_id,
            fields,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts_ns: 1_000,
                tid: 1,
                kind: EventKind::SpanStart,
                name: "outer".to_string(),
                span_id: 1,
                parent_id: 0,
                fields: vec![],
            },
            Event {
                ts_ns: 2_000,
                tid: 1,
                kind: EventKind::Instant,
                name: "tick".to_string(),
                span_id: 0,
                parent_id: 1,
                fields: vec![("i".to_string(), FieldValue::I64(3))],
            },
            Event {
                ts_ns: 9_000,
                tid: 1,
                kind: EventKind::SpanEnd,
                name: "outer".to_string(),
                span_id: 1,
                parent_id: 0,
                fields: vec![("dur_ns".to_string(), FieldValue::U64(8_000))],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_through_text() {
        let events = sample_events();
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].name, "outer");
        assert_eq!(back[2].field("dur_ns"), Some(&FieldValue::I64(8_000)));
    }

    #[test]
    fn chrome_trace_round_trips_through_parse() {
        let events = sample_events();
        let back = parse_chrome_trace(&chrome_trace(&events)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].kind, EventKind::SpanStart);
        assert_eq!(back[0].name, "outer");
        assert_eq!(back[0].ts_ns, 1_000);
        // Synthetic ids still pair the start with its end and parent
        // the instant under the open span.
        assert_eq!(back[2].kind, EventKind::SpanEnd);
        assert_eq!(back[2].span_id, back[0].span_id);
        assert_eq!(back[1].parent_id, back[0].span_id);
        assert_eq!(back[2].field("dur_ns"), Some(&FieldValue::I64(8_000)));
    }

    #[test]
    fn parse_chrome_trace_tolerates_unmatched_end() {
        // A ring-evicted start: E arrives with an empty stack.
        let doc = r#"{"traceEvents":[
            {"name":"orphan","ph":"E","pid":1,"tid":4,"ts":2.0},
            {"name":"next","ph":"B","pid":1,"tid":4,"ts":3.0},
            {"name":"next","ph":"E","pid":1,"tid":4,"ts":4.0}
        ]}"#;
        let back = parse_chrome_trace(doc).unwrap();
        assert_eq!(back.len(), 3);
        assert_ne!(back[0].span_id, 0);
        assert_eq!(back[1].span_id, back[2].span_id);
        assert_ne!(back[0].span_id, back[1].span_id);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let doc = chrome_trace(&sample_events());
        let v = json::parse(&doc).unwrap();
        let items = match v.get("traceEvents") {
            Some(json::JsonValue::Array(items)) => items,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(items.len(), 3);
        let phases: Vec<_> = items
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(phases, vec!["B", "i", "E"]);
        // ts is microseconds.
        assert_eq!(items[0].get("ts").unwrap().as_f64(), Some(1.0));
    }
}
