//! Head-based trace sampling.
//!
//! Under multi-tenant `tune_many` load a full trace is tens of
//! thousands of spans per tuning session; most of them describe
//! healthy, repetitive work. [`SamplingSink`] wraps any inner
//! [`Sink`] and forwards only 1-in-N spans — decided *at the head*
//! from the span id, so a span's start and end always travel
//! together — while anomalies (failed/censored trials, quarantine,
//! degradation, budget exhaustion) are always kept, as are counter
//! samples (they are already cheap and aggregate poorly when thinned).
//!
//! ```
//! let inner = obs::MemorySink::new(4096);
//! obs::install(obs::SamplingSink::new(
//!     inner.clone(),
//!     obs::SamplePolicy::one_in(8),
//! ));
//! // ... traced work ...
//! obs::uninstall_all();
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Event, EventKind, FieldValue};
use crate::sink::Sink;

/// Name substrings that mark an event as an anomaly regardless of the
/// sampling rate.
const ANOMALY_NAMES: [&str; 6] = [
    "fail",
    "timeout",
    "quarantin",
    "degraded",
    "budget_exhausted",
    "flight",
];

/// Head-based sampling decision: which events to keep.
#[derive(Debug, Clone, Copy)]
pub struct SamplePolicy {
    /// Keep one span in this many (1 = keep everything).
    pub one_in: u64,
}

impl SamplePolicy {
    /// Keeps one span in `n` (clamped to at least 1).
    pub fn one_in(n: u64) -> Self {
        SamplePolicy { one_in: n.max(1) }
    }

    /// Keeps everything.
    pub fn keep_all() -> Self {
        SamplePolicy::one_in(1)
    }

    /// Whether an event survives sampling.
    ///
    /// Spans are decided by `span_id % one_in` so both halves of a
    /// span agree; instants follow their enclosing span (root instants
    /// are kept — they are rare and usually deliberate markers);
    /// counters and anomalies are always kept.
    pub fn keep(&self, event: &Event) -> bool {
        if self.one_in <= 1 || event.kind == EventKind::Counter || is_anomaly(event) {
            return true;
        }
        let deciding_id = match event.kind {
            EventKind::SpanStart | EventKind::SpanEnd => event.span_id,
            _ => event.parent_id,
        };
        if deciding_id == 0 {
            return true;
        }
        deciding_id % self.one_in == 0
    }
}

/// Whether an event must bypass sampling: explicit failure fields
/// (`ok=false`, an `error`/`censored` marker) or a name naming a
/// failure-path mechanism.
pub fn is_anomaly(event: &Event) -> bool {
    for (k, v) in &event.fields {
        match (k.as_str(), v) {
            ("ok", FieldValue::Bool(false)) => return true,
            ("censored", FieldValue::Bool(true)) => return true,
            ("error", _) => return true,
            _ => {}
        }
    }
    ANOMALY_NAMES.iter().any(|m| event.name.contains(m))
}

/// A [`Sink`] decorator applying a [`SamplePolicy`] before its inner
/// sink sees the event.
pub struct SamplingSink {
    inner: Arc<dyn Sink>,
    policy: SamplePolicy,
    kept: AtomicU64,
    skipped: AtomicU64,
}

impl SamplingSink {
    /// Wraps `inner`, forwarding only events `policy` keeps.
    pub fn new(inner: Arc<dyn Sink>, policy: SamplePolicy) -> Arc<Self> {
        Arc::new(SamplingSink {
            inner,
            policy,
            kept: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        })
    }

    /// Events forwarded to the inner sink.
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Events dropped by the sampling decision.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }
}

impl Sink for SamplingSink {
    fn accept(&self, event: &Event) {
        if self.policy.keep(event) {
            self.kept.fetch_add(1, Ordering::Relaxed);
            self.inner.accept(event);
        } else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn span_pair(id: u64, name: &str) -> [Event; 2] {
        [
            Event {
                ts_ns: 1,
                tid: 1,
                kind: EventKind::SpanStart,
                name: name.to_string(),
                span_id: id,
                parent_id: 0,
                fields: vec![],
            },
            Event {
                ts_ns: 2,
                tid: 1,
                kind: EventKind::SpanEnd,
                name: name.to_string(),
                span_id: id,
                parent_id: 0,
                fields: vec![("dur_ns".to_string(), FieldValue::U64(1))],
            },
        ]
    }

    #[test]
    fn start_and_end_agree() {
        let policy = SamplePolicy::one_in(4);
        for id in 1..64u64 {
            let [start, end] = span_pair(id, "work");
            assert_eq!(policy.keep(&start), policy.keep(&end), "span {id}");
        }
    }

    #[test]
    fn one_in_n_keeps_roughly_a_fraction() {
        let sink = MemorySink::new(10_000);
        let sampler = SamplingSink::new(sink.clone(), SamplePolicy::one_in(10));
        for id in 1..=1000u64 {
            for e in span_pair(id, "trial") {
                sampler.accept(&e);
            }
        }
        assert_eq!(sampler.kept(), 200); // 100 spans × 2 events
        assert_eq!(sampler.skipped(), 1800);
    }

    #[test]
    fn anomalies_bypass_sampling() {
        let policy = SamplePolicy::one_in(1_000_000);
        let [_, mut end] = span_pair(3, "trial");
        end.fields.push(("ok".to_string(), FieldValue::Bool(false)));
        assert!(policy.keep(&end));

        let [start, _] = span_pair(7, "trial_failure");
        assert!(policy.keep(&start));

        let [start, _] = span_pair(7, "quarantine_sweep");
        assert!(policy.keep(&start));

        let censored = Event {
            ts_ns: 1,
            tid: 1,
            kind: EventKind::Instant,
            name: "trial_done".to_string(),
            span_id: 0,
            parent_id: 9,
            fields: vec![("censored".to_string(), FieldValue::Bool(true))],
        };
        assert!(policy.keep(&censored));
    }

    #[test]
    fn counters_and_root_instants_always_kept() {
        let policy = SamplePolicy::one_in(1_000_000);
        let counter = Event {
            ts_ns: 1,
            tid: 1,
            kind: EventKind::Counter,
            name: "queue_depth".to_string(),
            span_id: 0,
            parent_id: 3,
            fields: vec![],
        };
        assert!(policy.keep(&counter));
        let root_instant = Event {
            ts_ns: 1,
            tid: 1,
            kind: EventKind::Instant,
            name: "boot".to_string(),
            span_id: 0,
            parent_id: 0,
            fields: vec![],
        };
        assert!(policy.keep(&root_instant));
    }
}
