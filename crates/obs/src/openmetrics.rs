//! Prometheus/OpenMetrics text exposition for the metrics registry.
//!
//! [`render`] turns a [`RegistrySnapshot`] into the OpenMetrics text
//! format (`# TYPE` metadata, `_total` counter samples, cumulative
//! histogram `_bucket`/`_sum`/`_count` lines, trailing `# EOF`) that
//! Prometheus, VictoriaMetrics, or a plain `curl` can consume from the
//! [`crate::serve::MetricsServer`] scrape endpoint.
//!
//! The registry keys metrics by a flat string. Per-tenant (or otherwise
//! labeled) series use the [`labeled`] naming convention — the metric
//! name followed by a `{key="value"}` block with escaped values — which
//! this renderer splits back into family name + label set so one family
//! groups all of its series under a single `# TYPE` line:
//!
//! ```
//! let name = obs::labeled("slo.within_10pct_ratio", &[("tenant", "alice")]);
//! assert_eq!(name, "slo.within_10pct_ratio{tenant=\"alice\"}");
//! obs::registry().gauge(&name).set(0.9);
//! let text = obs::openmetrics::render(&obs::registry().snapshot());
//! assert!(text.contains("slo_within_10pct_ratio{tenant=\"alice\"} 0.9"));
//! ```
//!
//! Histograms record nanoseconds internally; the exposition renders
//! bucket bounds and sums in **seconds** (the Prometheus base unit for
//! time), keeping the factor-2 power-of-two bucket layout.

use std::fmt::Write as _;

use crate::metrics::{Histogram, HistogramSnapshot, Registry, RegistrySnapshot};

/// The scrape response content type for OpenMetrics text.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Builds a registry key carrying a label set: `name{k="v",...}` with
/// OpenMetrics-escaped values. Look the metric up under this full key;
/// [`render`] splits it back into family + labels at exposition time.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(&mut out, v);
        out.push('"');
    }
    out.push('}');
    out
}

/// Escapes a label value per the OpenMetrics text format: backslash,
/// double-quote, and newline.
fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Sanitizes a metric family name to `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a registry key into `(family, label_block)` where the label
/// block (possibly empty) includes its braces, e.g.
/// `slo.ratio{tenant="a"}` → `("slo_ratio", "{tenant=\"a\"}")`. Keys
/// whose brace block is malformed are sanitized wholesale.
fn split_key(key: &str) -> (String, String) {
    match key.find('{') {
        Some(brace) if key.ends_with('}') => (sanitize(&key[..brace]), key[brace..].to_string()),
        _ => (sanitize(key), String::new()),
    }
}

/// Formats an f64 sample value; non-finite values use the OpenMetrics
/// spellings `+Inf` / `-Inf` / `NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Emits one `# TYPE` line the first time a family appears.
fn type_line(out: &mut String, last_family: &mut String, family: &str, kind: &str) {
    if family != last_family {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        last_family.clear();
        last_family.push_str(family);
    }
}

/// Renders a snapshot in the OpenMetrics text format (ending with
/// `# EOF`). Counters become `<name>_total`, gauges plain samples, and
/// histograms cumulative `_bucket{le="..."}` series (bounds in seconds)
/// plus `_sum`/`_count`.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut last_family = String::new();

    for (key, v) in &snapshot.counters {
        let (family, labels) = split_key(key);
        // Respect names that already carry the `_total` suffix.
        let family = family
            .strip_suffix("_total")
            .map(str::to_string)
            .unwrap_or(family);
        type_line(&mut out, &mut last_family, &family, "counter");
        let _ = writeln!(out, "{family}_total{labels} {v}");
    }
    for (key, v) in &snapshot.gauges {
        let (family, labels) = split_key(key);
        type_line(&mut out, &mut last_family, &family, "gauge");
        let _ = writeln!(out, "{family}{labels} {}", fmt_value(*v));
    }
    for (key, h) in &snapshot.histograms {
        let (family, labels) = split_key(key);
        type_line(&mut out, &mut last_family, &family, "histogram");
        render_histogram(&mut out, &family, &labels, h);
    }
    out.push_str("# EOF\n");
    out
}

/// Renders the global [`crate::registry`].
pub fn render_registry(registry: &Registry) -> String {
    render(&registry.snapshot())
}

fn render_histogram(out: &mut String, family: &str, labels: &str, h: &HistogramSnapshot) {
    // `le` labels compose with any series labels: re-open the block.
    let with = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    // Only the buckets that actually accumulate counts are emitted
    // (any subset of cumulative bounds plus +Inf is a valid histogram);
    // the 64-bucket power-of-two layout would otherwise be 64 lines of
    // zeros per histogram.
    let mut cumulative = 0u64;
    for (idx, c) in h.buckets.iter().enumerate() {
        if *c == 0 {
            continue;
        }
        cumulative += c;
        let upper_s = Histogram::bucket_upper_ns(idx) as f64 / 1e9;
        let _ = writeln!(
            out,
            "{family}_bucket{} {cumulative}",
            with(&fmt_value(upper_s))
        );
    }
    let _ = writeln!(out, "{family}_bucket{} {}", with("+Inf"), h.count);
    let _ = writeln!(
        out,
        "{family}_sum{labels} {}",
        fmt_value(h.sum_ns as f64 / 1e9)
    );
    let _ = writeln!(out, "{family}_count{labels} {}", h.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_escapes_values() {
        assert_eq!(
            labeled("m", &[("tenant", "a\"b\\c\nd")]),
            "m{tenant=\"a\\\"b\\\\c\\nd\"}"
        );
        assert_eq!(
            labeled("m", &[("a", "1"), ("b", "2")]),
            "m{a=\"1\",b=\"2\"}"
        );
    }

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("service.tunings"), "service_tunings");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn golden_counter_gauge_histogram_rendering() {
        let reg = Registry::new();
        reg.counter("service.tunings").add(5);
        reg.counter(&labeled("slo.tuning_cost_cents", &[("tenant", "a\"x")]))
            .add(250);
        reg.gauge(&labeled("slo.within_10pct_ratio", &[("tenant", "alice")]))
            .set(0.9);
        reg.gauge("par.threads").set(f64::INFINITY);
        let h = reg.histogram("tuner.propose_s");
        h.record_ns(3); // bucket [2,4) → le 4ns
        h.record_ns(1000); // bucket [512,1024) → le 1024ns
        h.record_ns(1000);

        let text = render(&reg.snapshot());
        let expected = "\
# TYPE service_tunings counter
service_tunings_total 5
# TYPE slo_tuning_cost_cents counter
slo_tuning_cost_cents_total{tenant=\"a\\\"x\"} 250
# TYPE par_threads gauge
par_threads +Inf
# TYPE slo_within_10pct_ratio gauge
slo_within_10pct_ratio{tenant=\"alice\"} 0.9
# TYPE tuner_propose_s histogram
tuner_propose_s_bucket{le=\"0.000000004\"} 1
tuner_propose_s_bucket{le=\"0.000001024\"} 3
tuner_propose_s_bucket{le=\"+Inf\"} 3
tuner_propose_s_sum 0.000002003
tuner_propose_s_count 3
# EOF
";
        assert_eq!(text, expected);
    }

    #[test]
    fn one_type_line_per_family_of_labeled_series() {
        let reg = Registry::new();
        reg.gauge(&labeled("slo.ratio", &[("tenant", "a")]))
            .set(1.0);
        reg.gauge(&labeled("slo.ratio", &[("tenant", "b")]))
            .set(0.5);
        let text = render(&reg.snapshot());
        assert_eq!(text.matches("# TYPE slo_ratio gauge").count(), 1);
        assert!(text.contains("slo_ratio{tenant=\"a\"} 1\n"));
        assert!(text.contains("slo_ratio{tenant=\"b\"} 0.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_labeled() {
        let reg = Registry::new();
        let h = reg.histogram(&labeled("exec.batch_s", &[("stage", "s2")]));
        for _ in 0..4 {
            h.record_ns(10);
        }
        let text = render(&reg.snapshot());
        assert!(
            text.contains("exec_batch_s_bucket{stage=\"s2\",le=\"0.000000016\"} 4"),
            "{text}"
        );
        assert!(text.contains("exec_batch_s_bucket{stage=\"s2\",le=\"+Inf\"} 4"));
        assert!(text.contains("exec_batch_s_count{stage=\"s2\"} 4"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        let reg = Registry::new();
        assert_eq!(render(&reg.snapshot()), "# EOF\n");
    }
}
