//! A zero-dependency HTTP scrape endpoint for the metrics registry.
//!
//! [`MetricsServer::start`] binds a std [`TcpListener`] and answers
//! every request on a single background thread with the global
//! registry rendered as OpenMetrics text (see [`crate::openmetrics`]).
//! It speaks just enough HTTP/1.1 for Prometheus and `curl`:
//!
//! ```text
//! $ stune tune --workload join --metrics-addr 127.0.0.1:9464 &
//! $ curl -s http://127.0.0.1:9464/metrics
//! # TYPE service_tunings counter
//! service_tunings_total 3
//! ...
//! # EOF
//! ```
//!
//! Scraping is read-only and lock-light (one registry snapshot per
//! request), so a scrape racing a `tune_many` run never blocks the
//! tuner. Dropping the server (or calling
//! [`MetricsServer::shutdown`]) stops the thread gracefully.

use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::registry;
use crate::openmetrics;

/// A background thread serving the global registry over HTTP.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an
    /// ephemeral port) and starts serving scrapes.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (port in use, bad address).
    pub fn start(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let scrapes = Arc::clone(&scrapes);
            std::thread::Builder::new()
                .name("obs-metrics-http".to_string())
                .spawn(move || serve_loop(&listener, &stop, &scrapes))?
        };
        Ok(MetricsServer {
            addr,
            stop,
            scrapes,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the serving thread and waits for it to exit. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // The accept loop blocks in `accept`; a throwaway
            // connection wakes it so it can observe the stop flag.
            let _ = TcpStream::connect_timeout(&wake_addr(self.addr), Duration::from_secs(1));
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An address we can connect to in order to wake the accept loop:
/// wildcard binds (0.0.0.0 / ::) are reachable via loopback.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    if bound.ip().is_unspecified() {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), bound.port())
    } else {
        bound
    }
}

fn serve_loop(listener: &TcpListener, stop: &AtomicBool, scrapes: &AtomicU64) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        scrapes.fetch_add(1, Ordering::Relaxed);
        // A misbehaving client must not wedge the only serving thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = respond(stream);
    }
}

/// Reads the request head (discarded — every path serves metrics) and
/// writes one OpenMetrics response.
fn respond(mut stream: TcpStream) -> io::Result<()> {
    // Read until the blank line ending the request head, or give up
    // after 8 KiB — scrapers don't send bodies.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 8192 && !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(_) => break,
        }
    }
    let body = openmetrics::render(&registry().snapshot());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        openmetrics::CONTENT_TYPE,
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_openmetrics_and_shuts_down() {
        let mut server = MetricsServer::start("127.0.0.1:0").expect("bind");
        registry().counter("serve.test.hits").inc();

        let response = scrape(server.local_addr());
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("application/openmetrics-text"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.contains("serve_test_hits_total"), "{body}");
        assert!(body.ends_with("# EOF\n"));
        assert!(server.scrapes() >= 1);

        let addr = server.local_addr();
        server.shutdown();
        server.shutdown(); // idempotent
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn concurrent_scrapes_all_answered() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || scrape(addr)))
            .collect();
        for h in handles {
            let response = h.join().unwrap();
            assert!(response.contains("# EOF"));
        }
    }
}
