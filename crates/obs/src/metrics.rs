//! Process-wide metrics registry: counters, gauges, and fixed-bucket
//! histograms behind cheap atomic handles.
//!
//! Handles are `Arc`-backed: look a metric up once (a mutex-guarded
//! map access), then record on the hot path with plain atomic ops.
//! Histograms use 64 power-of-two buckets over nanoseconds, giving
//! factor-2 resolution from 1ns to ~584 years — enough for latency
//! quantiles without per-record allocation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float value.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

const BUCKETS: usize = 64;

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Fixed-bucket latency/size histogram over nanosecond-scaled values.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
                min_ns: AtomicU64::new(u64::MAX),
                max_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Bucket index for a raw value: floor(log2(v)) clamped to range.
    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Representative value (geometric midpoint) for a bucket.
    fn bucket_mid(idx: usize) -> f64 {
        let lo = (1u64 << idx) as f64;
        lo * 1.5
    }

    /// Records a raw nanosecond (or unitless) value.
    pub fn record_ns(&self, ns: u64) {
        let inner = &self.inner;
        inner.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
        inner.min_ns.fetch_min(ns, Ordering::Relaxed);
        inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a duration in seconds.
    pub fn record_secs(&self, secs: f64) {
        let ns = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9).min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.record_ns(ns);
    }

    /// Times `f`, records the elapsed wall-clock, and returns its result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_ns(start.elapsed().as_nanos() as u64);
        out
    }

    /// Exclusive upper bound (ns) of bucket `idx`: values in bucket
    /// `idx` satisfy `2^idx <= v < 2^(idx+1)` (the last bucket is
    /// unbounded).
    pub fn bucket_upper_ns(idx: usize) -> u64 {
        if idx >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (idx + 1)
        }
    }

    /// A consistent point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let counts: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum_ns = inner.sum_ns.load(Ordering::Relaxed);
        let min_ns = inner.min_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (idx, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return Self::bucket_mid(idx);
                }
            }
            Self::bucket_mid(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum_ns,
            min_ns: if count == 0 { 0 } else { min_ns },
            max_ns: inner.max_ns.load(Ordering::Relaxed),
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            buckets: counts,
        }
    }
}

/// Point-in-time histogram summary; quantiles are bucket-midpoint
/// estimates (factor-2 resolution).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Smallest sample (ns).
    pub min_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Estimated median (ns).
    pub p50_ns: f64,
    /// Estimated 95th percentile (ns).
    pub p95_ns: f64,
    /// Estimated 99th percentile (ns).
    pub p99_ns: f64,
    /// Raw per-bucket counts (power-of-two bounds; bucket `i` covers
    /// `[2^i, 2^(i+1))` ns — see [`Histogram::bucket_upper_ns`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Sum in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }
}

/// A named family of metrics. Obtain the process-global one with
/// [`registry`], or create isolated instances for tests.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the counter `name`; the handle is cheap to
    /// clone and use from any thread.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string())
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Snapshots every metric, names sorted.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
        };
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Emits the current value of every counter and gauge as
    /// [`crate::counter_sample`] events, so a trace file carries the
    /// final metric state alongside its spans. No-op while tracing is
    /// disabled.
    pub fn publish(&self) {
        if !crate::sink::is_enabled() {
            return;
        }
        let snap = self.snapshot();
        for (name, v) in &snap.counters {
            crate::event::counter_sample(name.clone(), *v as f64);
        }
        for (name, v) in &snap.gauges {
            crate::event::counter_sample(name.clone(), *v);
        }
    }

    /// Drops every registered metric (handles already held keep
    /// recording into detached storage).
    pub fn clear(&self) {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// The process-global registry used by instrumented crates.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// All metric values at one instant.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl fmt::Display for RegistrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, v) in &self.counters {
                writeln!(f, "  {name:<44} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, v) in &self.gauges {
                writeln!(f, "  {name:<44} {v:.4}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name:<44} n={:<7} mean={:<10} p50={:<10} p95={:<10} p99={:<10} total={}",
                    h.count,
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.p50_ns),
                    fmt_ns(h.p95_ns),
                    fmt_ns(h.p99_ns),
                    fmt_ns(h.sum_ns as f64),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("runs");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("runs").get(), 5);
        let g = reg.gauge("temp");
        g.set(1.25);
        assert_eq!(reg.gauge("temp").get(), 1.25);
    }

    #[test]
    fn histogram_quantiles_are_order_of_magnitude_right() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        // 90 fast samples at ~1us, 10 slow at ~1ms.
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1_000);
        assert_eq!(s.max_ns, 1_000_000);
        // p50 within factor-2 of 1us; p95/p99 within factor-2 of 1ms.
        assert!(s.p50_ns >= 500.0 && s.p50_ns <= 2_100.0, "p50={}", s.p50_ns);
        assert!(
            s.p95_ns >= 500_000.0 && s.p95_ns <= 2_100_000.0,
            "p95={}",
            s.p95_ns
        );
        assert!(s.p99_ns >= 500_000.0, "p99={}", s.p99_ns);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let reg = Registry::new();
        let s = reg.histogram("empty").snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.p99_ns, 0.0);
    }

    #[test]
    fn time_records_a_sample() {
        let reg = Registry::new();
        let h = reg.histogram("timed");
        let out = h.time(|| 7u32);
        assert_eq!(out, 7);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn snapshot_renders() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.gauge("b").set(2.0);
        reg.histogram("c").record_ns(10);
        let text = reg.snapshot().to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("histograms:"));
    }
}
