//! Structured tracing and metrics for the seamless-tuning service.
//!
//! Zero-dependency by design: instrumented crates (`seamless-core`,
//! `simcluster`, `bench`) emit spans and metric samples through this
//! crate, and pay a single relaxed atomic load per call site when no
//! sink is installed.
//!
//! Three pieces:
//!
//! * **Event bus** ([`span`], [`instant`], [`counter_sample`]) —
//!   structured [`Event`]s with monotonic timestamps and span
//!   nesting, fanned out to pluggable [`Sink`]s ([`MemorySink`] ring
//!   buffer, [`JsonlSink`] streaming writer, [`CountingSink`]).
//! * **Metrics registry** ([`registry`]) — counters, gauges, and
//!   fixed-bucket histograms with p50/p95/p99 snapshots behind cheap
//!   atomic handles.
//! * **Trace export** ([`chrome_trace`], [`read_jsonl_file`]) —
//!   Chrome trace-event JSON for `chrome://tracing` / Perfetto, and
//!   JSONL replay for offline analysis (`trace_summary`).
//!
//! # Example
//!
//! ```
//! let sink = obs::MemorySink::new(1024);
//! obs::install(sink.clone());
//! {
//!     let _outer = obs::span("stage");
//!     let _inner = obs::span("proposal").with("idx", 0i64);
//! }
//! obs::uninstall_all();
//! let events = sink.drain();
//! assert_eq!(events.len(), 4); // two starts, two ends
//! ```

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod trace;

pub use event::{
    counter_sample, current_span_id, current_tid, instant, now_ns, span, Event, EventKind,
    FieldValue, SpanGuard,
};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use sink::{
    flush_all, install, is_enabled, uninstall_all, CountingSink, JsonlSink, MemorySink, Sink,
};
pub use trace::{chrome_trace, parse_jsonl, read_jsonl, read_jsonl_file, write_chrome_trace};
