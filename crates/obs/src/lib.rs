//! Structured tracing and metrics for the seamless-tuning service.
//!
//! Zero-dependency by design: instrumented crates (`seamless-core`,
//! `simcluster`, `bench`) emit spans and metric samples through this
//! crate, and pay a single relaxed atomic load per call site when no
//! sink is installed.
//!
//! Three pieces:
//!
//! * **Event bus** ([`span`], [`instant`], [`counter_sample`]) —
//!   structured [`Event`]s with monotonic timestamps and span
//!   nesting, fanned out to pluggable [`Sink`]s ([`MemorySink`] ring
//!   buffer, [`JsonlSink`] streaming writer, [`CountingSink`]).
//! * **Metrics registry** ([`registry`]) — counters, gauges, and
//!   fixed-bucket histograms with p50/p95/p99 snapshots behind cheap
//!   atomic handles.
//! * **Trace export** ([`chrome_trace`], [`read_jsonl_file`]) —
//!   Chrome trace-event JSON for `chrome://tracing` / Perfetto, and
//!   JSONL replay for offline analysis (`trace_summary`).
//!
//! Live telemetry on top (PR 5):
//!
//! * **OpenMetrics exposition** ([`openmetrics`]) rendered from the
//!   registry and served by [`MetricsServer`], a zero-dep std-TCP
//!   scrape endpoint (`stune --metrics-addr`).
//! * **Flight recorder** ([`flightrec`]) — per-thread rings of recent
//!   events dumped as a Chrome trace on degradation / quarantine /
//!   budget exhaustion ([`flightrec::trigger_dump`]).
//! * **Head-based sampling** ([`SamplingSink`]) — 1-in-N spans with
//!   anomalies always kept, so tracing stays affordable under
//!   multi-tenant load.
//!
//! # Example
//!
//! ```
//! let sink = obs::MemorySink::new(1024);
//! obs::install(sink.clone());
//! {
//!     let _outer = obs::span("stage");
//!     let _inner = obs::span("proposal").with("idx", 0i64);
//! }
//! obs::uninstall_all();
//! let events = sink.drain();
//! assert_eq!(events.len(), 4); // two starts, two ends
//! ```

pub mod event;
pub mod flightrec;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod sample;
pub mod serve;
pub mod sink;
pub mod trace;

pub use event::{
    counter_sample, current_span_id, current_tid, instant, now_ns, span, Event, EventKind,
    FieldValue, SpanGuard,
};
pub use flightrec::FlightRecorder;
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use openmetrics::labeled;
pub use sample::{SamplePolicy, SamplingSink};
pub use serve::MetricsServer;
pub use sink::{
    flush_all, install, is_enabled, uninstall_all, CountingSink, JsonlSink, MemorySink, Sink,
};
pub use trace::{
    chrome_trace, parse_chrome_trace, parse_jsonl, read_jsonl, read_jsonl_file, write_chrome_trace,
};
