//! Minimal JSON reading/writing used by the JSONL sink, the Chrome
//! trace exporter, and trace replay. Kept in-crate so `obs` stays
//! zero-dependency and instrumented crates never pay for a JSON
//! library they don't otherwise need.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (floats subsume the integers we emit).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with key order preserved by sorting.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer view (rejects fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` in JSON number syntax (non-finite → `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the
/// first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        match v.get("a").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[2].as_str(), Some("x\n"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn number_formatting() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3");
        out.clear();
        write_f64(&mut out, 3.25);
        assert_eq!(out, "3.25");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
