//! Event sinks and the global dispatcher.
//!
//! Instrumented code calls [`crate::span`] / [`crate::instant`]
//! unconditionally; the cost when no sink is installed is one relaxed
//! atomic load. Installing a sink flips the global enable flag, and
//! every event is then fanned out to all installed sinks.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::event::Event;

/// Receives every dispatched event.
pub trait Sink: Send + Sync {
    /// Called once per event, possibly from multiple threads.
    fn accept(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    static SINKS: std::sync::OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = std::sync::OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Whether any sink is installed (the emit fast-path check).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a sink; events flow to it until [`uninstall_all`].
pub fn install(sink: Arc<dyn Sink>) {
    let mut guard = sinks().write().unwrap_or_else(|e| e.into_inner());
    guard.push(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes every installed sink (flushing each) and disables tracing.
pub fn uninstall_all() {
    let drained: Vec<Arc<dyn Sink>> = {
        let mut guard = sinks().write().unwrap_or_else(|e| e.into_inner());
        ENABLED.store(false, Ordering::Release);
        std::mem::take(&mut *guard)
    };
    for sink in &drained {
        sink.flush();
    }
}

/// Flushes all installed sinks.
pub fn flush_all() {
    let guard = sinks().read().unwrap_or_else(|e| e.into_inner());
    for sink in guard.iter() {
        sink.flush();
    }
}

/// Fans an event out to all installed sinks.
pub(crate) fn dispatch(event: Event) {
    let guard = sinks().read().unwrap_or_else(|e| e.into_inner());
    for sink in guard.iter() {
        sink.accept(&event);
    }
}

/// Bounded in-memory ring buffer of recent events.
pub struct MemorySink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl MemorySink {
    /// A ring buffer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(MemorySink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let guard = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        guard.iter().cloned().collect()
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut guard = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        guard.drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for MemorySink {
    fn accept(&self, event: &Event) {
        let mut guard = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if guard.len() == self.capacity {
            guard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            // Overwrites of unread events are data loss a live operator
            // should see: surface them in the metrics registry (and
            // therefore every scrape/snapshot), not just on this sink.
            crate::metrics::registry()
                .counter("obs.events.dropped")
                .inc();
        }
        guard.push_back(event.clone());
    }
}

/// Streams events as JSON Lines to a writer (typically a file), one
/// event per line — the format [`crate::trace::read_jsonl`] and the
/// `trace_summary` tool consume.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Arc<Self>> {
        let file = File::create(path)?;
        Ok(Arc::new(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        }))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Arc<Self> {
        Arc::new(JsonlSink {
            writer: Mutex::new(writer),
        })
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn accept(&self, event: &Event) {
        let line = event.to_json();
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Tracing must never take the service down: I/O errors drop
        // the event rather than panic.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.flush();
    }
}

/// Counts events without storing them — for overhead measurements and
/// smoke tests.
#[derive(Default)]
pub struct CountingSink {
    count: AtomicU64,
}

impl CountingSink {
    /// A fresh zeroed counter sink.
    pub fn new() -> Arc<Self> {
        Arc::new(CountingSink::default())
    }

    /// Events seen so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Sink for CountingSink {
    fn accept(&self, _event: &Event) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FieldValue};

    fn test_event(name: &str) -> Event {
        Event {
            ts_ns: 1,
            tid: 1,
            kind: EventKind::Instant,
            name: name.to_string(),
            span_id: 0,
            parent_id: 0,
            fields: vec![("k".to_string(), FieldValue::I64(1))],
        }
    }

    #[test]
    fn memory_sink_is_a_ring() {
        let sink = MemorySink::new(2);
        sink.accept(&test_event("a"));
        sink.accept(&test_event("b"));
        sink.accept(&test_event("c"));
        let events = sink.snapshot();
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.accept(&test_event("x"));
        sink.accept(&test_event("y"));
        let bytes = {
            let w = sink.writer.lock().unwrap();
            w.clone()
        };
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back = Event::from_json(lines[0]).unwrap();
        assert_eq!(back.name, "x");
    }

    #[test]
    fn counting_sink_counts() {
        let sink = CountingSink::new();
        sink.accept(&test_event("a"));
        sink.accept(&test_event("b"));
        assert_eq!(sink.count(), 2);
    }
}
