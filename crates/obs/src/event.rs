//! Structured events and spans.
//!
//! Every emission is an [`Event`]: span begin/end pairs carrying a
//! span id and parent id (so consumers can rebuild the nesting tree),
//! instants, and counter samples. Timestamps are monotonic nanoseconds
//! since the first observation in the process; thread ids are small
//! sequential integers assigned on first use per thread, so exported
//! traces stay readable.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::{self, JsonValue};
use crate::sink;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view of the value (note that JSONL parsing
    /// round-trips unsigned fields like `dur_ns` as [`FieldValue::I64`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::I64(v) if *v >= 0 => Some(*v as u64),
            FieldValue::U64(v) => Some(*v),
            FieldValue::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span_id` identifies it; `parent_id` its parent).
    SpanStart,
    /// The matching span closed; carries a `dur_ns` field.
    SpanEnd,
    /// A point-in-time marker.
    Instant,
    /// A numeric sample for a named counter series.
    Counter,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "span_start" => Some(EventKind::SpanStart),
            "span_end" => Some(EventKind::SpanEnd),
            "instant" => Some(EventKind::Instant),
            "counter" => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// One structured observation.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic nanoseconds since process trace epoch.
    pub ts_ns: u64,
    /// Sequential thread id (first thread to emit is 1).
    pub tid: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Span or marker name.
    pub name: String,
    /// Span id for start/end events, 0 otherwise.
    pub span_id: u64,
    /// Enclosing span id, 0 at top level.
    pub parent_id: u64,
    /// Attached key-value fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Field lookup by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes to a single JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_ns\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.ts_ns));
        out.push_str(",\"tid\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.tid));
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        json::write_escaped(&mut out, &self.name);
        if self.span_id != 0 {
            let _ =
                std::fmt::Write::write_fmt(&mut out, format_args!(",\"span\":{}", self.span_id));
        }
        if self.parent_id != 0 {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(",\"parent\":{}", self.parent_id),
            );
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(&mut out, k);
                out.push(':');
                match v {
                    FieldValue::I64(n) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
                    }
                    FieldValue::U64(n) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
                    }
                    FieldValue::F64(n) => json::write_f64(&mut out, *n),
                    FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                    FieldValue::Str(s) => json::write_escaped(&mut out, s),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line produced by [`Event::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed line.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let v = json::parse(line)?;
        let kind_str = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing kind".to_string())?;
        let kind =
            EventKind::parse(kind_str).ok_or_else(|| format!("unknown kind {kind_str:?}"))?;
        let mut fields = Vec::new();
        if let Some(JsonValue::Object(map)) = v.get("fields") {
            for (k, fv) in map {
                let fv = match fv {
                    JsonValue::Bool(b) => FieldValue::Bool(*b),
                    JsonValue::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                        FieldValue::I64(*n as i64)
                    }
                    JsonValue::Num(n) => FieldValue::F64(*n),
                    JsonValue::Str(s) => FieldValue::Str(s.clone()),
                    JsonValue::Null => FieldValue::F64(f64::NAN),
                    other => return Err(format!("unsupported field value {other:?}")),
                };
                fields.push((k.clone(), fv));
            }
        }
        Ok(Event {
            ts_ns: v
                .get("ts_ns")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "missing ts_ns".to_string())?,
            tid: v.get("tid").and_then(JsonValue::as_u64).unwrap_or(0),
            kind,
            name: v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "missing name".to_string())?
                .to_string(),
            span_id: v.get("span").and_then(JsonValue::as_u64).unwrap_or(0),
            parent_id: v.get("parent").and_then(JsonValue::as_u64).unwrap_or(0),
            fields,
        })
    }
}

fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    trace_epoch().elapsed().as_nanos() as u64
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's sequential trace id.
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The innermost open span's id on this thread (0 at top level).
pub fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for an open span. Emits `SpanEnd` (with a `dur_ns`
/// field) on drop. When tracing is disabled this is inert: creating
/// and dropping it touches a single relaxed atomic load.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    id: u64,
    start_ns: u64,
    fields: Vec<(String, FieldValue)>,
    name: &'static str,
}

impl SpanGuard {
    /// Whether this guard refers to a live (recorded) span.
    pub fn is_recording(&self) -> bool {
        self.id != 0
    }

    /// Attaches a field, reported on the span's end event.
    pub fn with(mut self, key: &str, value: impl Into<FieldValue>) -> Self {
        if self.id != 0 {
            self.fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Attaches a field in place (for fields known only mid-span).
    pub fn record(&mut self, key: &str, value: impl Into<FieldValue>) {
        if self.id != 0 {
            self.fields.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_ns = now_ns();
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop through any spans leaked by sibling guards dropped
            // out of order; normally this pops exactly our own id.
            while let Some(top) = stack.pop() {
                if top == self.id {
                    break;
                }
            }
            stack.last().copied().unwrap_or(0)
        });
        let mut fields = std::mem::take(&mut self.fields);
        fields.push((
            "dur_ns".to_string(),
            FieldValue::U64(end_ns - self.start_ns),
        ));
        sink::dispatch(Event {
            ts_ns: end_ns,
            tid: current_tid(),
            kind: EventKind::SpanEnd,
            name: self.name.to_string(),
            span_id: self.id,
            parent_id: parent,
            fields,
        });
    }
}

/// Opens a named span nested under the current thread's innermost
/// open span. Returns an inert guard when tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !sink::is_enabled() {
        return SpanGuard {
            id: 0,
            start_ns: 0,
            fields: Vec::new(),
            name,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let start_ns = now_ns();
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    sink::dispatch(Event {
        ts_ns: start_ns,
        tid: current_tid(),
        kind: EventKind::SpanStart,
        name: name.to_string(),
        span_id: id,
        parent_id: parent,
        fields: Vec::new(),
    });
    SpanGuard {
        id,
        start_ns,
        fields: Vec::new(),
        name,
    }
}

/// Emits a point-in-time marker with fields, attached to the current
/// span. No-op when tracing is disabled.
pub fn instant(name: impl Into<String>, fields: Vec<(String, FieldValue)>) {
    if !sink::is_enabled() {
        return;
    }
    sink::dispatch(Event {
        ts_ns: now_ns(),
        tid: current_tid(),
        kind: EventKind::Instant,
        name: name.into(),
        span_id: 0,
        parent_id: current_span_id(),
        fields,
    });
}

/// Emits a counter sample (`value` under key `"value"`). No-op when
/// tracing is disabled.
pub fn counter_sample(name: impl Into<String>, value: f64) {
    if !sink::is_enabled() {
        return;
    }
    sink::dispatch(Event {
        ts_ns: now_ns(),
        tid: current_tid(),
        kind: EventKind::Counter,
        name: name.into(),
        span_id: 0,
        parent_id: current_span_id(),
        fields: vec![("value".to_string(), FieldValue::F64(value))],
    });
}

/// Convenience for building a field list:
/// `fields![("k", 1i64), ("s", "text")]` — see [`instant`].
#[macro_export]
macro_rules! fields {
    ($(($k:expr, $v:expr)),* $(,)?) => {
        vec![$(($k.to_string(), $crate::event::FieldValue::from($v))),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_round_trip() {
        let e = Event {
            ts_ns: 12345,
            tid: 2,
            kind: EventKind::SpanEnd,
            name: "stage-1 \"cloud\"".to_string(),
            span_id: 7,
            parent_id: 3,
            fields: vec![
                ("dur_ns".to_string(), FieldValue::U64(999)),
                ("runtime_s".to_string(), FieldValue::F64(1.5)),
                ("ok".to_string(), FieldValue::Bool(true)),
                ("label".to_string(), FieldValue::Str("a\nb".to_string())),
            ],
        };
        let line = e.to_json();
        let back = Event::from_json(&line).unwrap();
        assert_eq!(back.ts_ns, 12345);
        assert_eq!(back.tid, 2);
        assert_eq!(back.kind, EventKind::SpanEnd);
        assert_eq!(back.name, e.name);
        assert_eq!(back.span_id, 7);
        assert_eq!(back.parent_id, 3);
        assert_eq!(back.field("dur_ns"), Some(&FieldValue::I64(999)));
        assert_eq!(back.field("runtime_s"), Some(&FieldValue::F64(1.5)));
        assert_eq!(back.field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(
            back.field("label"),
            Some(&FieldValue::Str("a\nb".to_string()))
        );
    }

    #[test]
    fn disabled_span_is_inert() {
        // No sink installed in this test process path → disabled.
        let g = span("noop");
        assert!(!g.is_recording() || crate::sink::is_enabled());
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
