//! Behavioural tests: every tunable knob must influence the simulator
//! in the direction its real Spark counterpart does. These are the
//! contracts the response surface is built from — if one breaks, the
//! tuning experiments stop meaning anything.

use confspace::spark::{names as sp, spark_space};
use confspace::Configuration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simcluster::{ClusterSpec, JobSpec, Partitioning, Simulator, SparkEnv, StageSpec};

fn base_cfg() -> Configuration {
    spark_space()
        .default_configuration()
        .with(sp::EXECUTOR_INSTANCES, 8i64)
        .with(sp::EXECUTOR_CORES, 2i64)
        .with(sp::EXECUTOR_MEMORY_MB, 6144i64)
        .with(sp::DEFAULT_PARALLELISM, 64i64)
}

/// Mean runtime over several seeds for a (cfg, job) pair on the testbed.
fn runtime(cfg: &Configuration, job: &JobSpec) -> f64 {
    let cluster = ClusterSpec::table1_testbed();
    let env = SparkEnv::resolve(&cluster, cfg).expect("layout fits");
    let sim = Simulator::dedicated();
    let mut total = 0.0;
    let n = 5;
    for seed in 0..n {
        total += sim
            .run(&env, job, &mut StdRng::seed_from_u64(seed))
            .expect("no crash")
            .runtime_s;
    }
    total / n as f64
}

fn shuffle_heavy_job() -> JobSpec {
    JobSpec::new(
        "shuffleheavy",
        vec![
            StageSpec::input("m", 4096.0, 0.003).writes_shuffle(4096.0),
            StageSpec::reduce("r", vec![0], 4096.0, 0.003)
                .with_partitioning(Partitioning::DefaultParallelism),
        ],
    )
}

fn skewed_job() -> JobSpec {
    JobSpec::new(
        "skewed",
        vec![StageSpec::input("m", 4096.0, 0.01).with_skew(0.8)],
    )
}

#[test]
fn speculation_tames_stragglers_on_skewed_stages() {
    let job = skewed_job();
    let off = base_cfg().with(sp::SPECULATION, false);
    let on = base_cfg()
        .with(sp::SPECULATION, true)
        .with(sp::SPECULATION_QUANTILE, 0.6)
        .with(sp::SPECULATION_MULTIPLIER, 1.3);
    // Average over many seeds: speculation caps straggled tasks.
    let cluster = ClusterSpec::table1_testbed();
    let sim = Simulator::dedicated();
    let mean = |cfg: &Configuration| -> f64 {
        let env = SparkEnv::resolve(&cluster, cfg).expect("fits");
        (0..30)
            .map(|s| {
                sim.run(&env, &job, &mut StdRng::seed_from_u64(s))
                    .expect("ok")
                    .runtime_s
            })
            .sum::<f64>()
            / 30.0
    };
    assert!(
        mean(&on) <= mean(&off) * 1.02,
        "speculation should not hurt skewed stages: on {} vs off {}",
        mean(&on),
        mean(&off)
    );
}

#[test]
fn locality_wait_reduces_remote_reads_with_few_executors() {
    // 2 executors on 4 nodes: half the input blocks are remote unless
    // the scheduler waits for local slots.
    let job = JobSpec::new("scan", vec![StageSpec::input("m", 8192.0, 0.004)]);
    let impatient = base_cfg()
        .with(sp::EXECUTOR_INSTANCES, 2i64)
        .with(sp::LOCALITY_WAIT_MS, 0i64);
    let patient = base_cfg()
        .with(sp::EXECUTOR_INSTANCES, 2i64)
        .with(sp::LOCALITY_WAIT_MS, 10000i64);
    assert!(
        runtime(&patient, &job) < runtime(&impatient, &job),
        "locality wait should pay off on h1 (disk >> network)"
    );
}

#[test]
fn bypass_merge_helps_small_reduce_counts() {
    // Few reduce partitions: the bypass path (no sort) should win.
    let job = shuffle_heavy_job();
    let low_parallelism = base_cfg().with(sp::DEFAULT_PARALLELISM, 32i64);
    let bypass_on = low_parallelism
        .clone()
        .with(sp::SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD, 200i64);
    let bypass_off = low_parallelism.with(sp::SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD, 0i64);
    assert!(
        runtime(&bypass_on, &job) < runtime(&bypass_off, &job),
        "bypassing the merge sort should help at 32 partitions"
    );
}

#[test]
fn more_in_flight_fetch_reduces_shuffle_waves() {
    let job = shuffle_heavy_job();
    let small = base_cfg().with(sp::REDUCER_MAX_SIZE_IN_FLIGHT_MB, 8i64);
    let large = base_cfg().with(sp::REDUCER_MAX_SIZE_IN_FLIGHT_MB, 192i64);
    assert!(
        runtime(&large, &job) < runtime(&small, &job),
        "larger in-flight windows should cut fetch latency"
    );
}

#[test]
fn tiny_shuffle_buffers_cost_flushes() {
    let job = shuffle_heavy_job();
    let tiny = base_cfg().with(sp::SHUFFLE_FILE_BUFFER_KB, 16i64);
    let roomy = base_cfg().with(sp::SHUFFLE_FILE_BUFFER_KB, 512i64);
    assert!(runtime(&roomy, &job) <= runtime(&tiny, &job));
}

#[test]
fn fair_scheduler_adds_small_overhead() {
    let job = shuffle_heavy_job();
    let fifo = base_cfg().with(sp::SCHEDULER_MODE, "FIFO");
    let fair = base_cfg().with(sp::SCHEDULER_MODE, "FAIR");
    let (tf, ta) = (runtime(&fifo, &job), runtime(&fair, &job));
    assert!(ta >= tf * 0.99, "FAIR should not be faster: {ta} vs {tf}");
    assert!(
        ta <= tf * 1.2,
        "FAIR overhead must stay small: {ta} vs {tf}"
    );
}

#[test]
fn zstd_trades_cpu_for_bytes_against_lz4() {
    // On a network-bound shuffle, zstd's better ratio should not lose
    // badly; the interesting contract is that the codec knob moves the
    // net/ser balance, which the metrics expose.
    let job = shuffle_heavy_job();
    let cluster = ClusterSpec::table1_testbed();
    let measure = |codec: &str| {
        let cfg = base_cfg().with(sp::IO_COMPRESSION_CODEC, codec);
        let env = SparkEnv::resolve(&cluster, &cfg).expect("fits");
        let r = Simulator::dedicated()
            .run(&env, &job, &mut StdRng::seed_from_u64(3))
            .expect("ok");
        let net: f64 = r.metrics.stages.iter().map(|s| s.net_s).sum();
        let ser: f64 = r.metrics.stages.iter().map(|s| s.ser_s).sum();
        (net, ser)
    };
    let (net_lz4, ser_lz4) = measure("lz4");
    let (net_zstd, ser_zstd) = measure("zstd");
    assert!(net_zstd < net_lz4, "zstd ships fewer bytes");
    assert!(ser_zstd > ser_lz4, "zstd burns more (de)compression CPU");
}

#[test]
fn dynamic_allocation_is_roughly_neutral_for_steady_jobs() {
    let job = shuffle_heavy_job();
    let on = base_cfg().with(sp::DYNAMIC_ALLOCATION, true);
    let off = base_cfg().with(sp::DYNAMIC_ALLOCATION, false);
    let (a, b) = (runtime(&on, &job), runtime(&off, &job));
    assert!(
        (a / b - 1.0).abs() < 0.35,
        "dynamic allocation should be mild on steady jobs: {a} vs {b}"
    );
}

#[test]
fn executor_memory_relieves_spill_on_sort() {
    let job = JobSpec::new(
        "bigsort",
        vec![
            StageSpec::input("m", 8192.0, 0.003).writes_shuffle(8192.0),
            StageSpec::reduce("sort", vec![0], 8192.0, 0.004)
                .with_mem_expansion(2.5)
                .with_partitioning(Partitioning::DefaultParallelism),
        ],
    );
    // Low parallelism concentrates each task's working set.
    let cramped = base_cfg()
        .with(sp::EXECUTOR_MEMORY_MB, 1536i64)
        .with(sp::DEFAULT_PARALLELISM, 16i64);
    let roomy = base_cfg()
        .with(sp::EXECUTOR_MEMORY_MB, 12288i64)
        .with(sp::DEFAULT_PARALLELISM, 16i64);
    let cluster = ClusterSpec::table1_testbed();
    let sim = Simulator::dedicated();
    let spill = |cfg: &Configuration| {
        let env = SparkEnv::resolve(&cluster, cfg).expect("fits");
        sim.run(&env, &job, &mut StdRng::seed_from_u64(4))
            .expect("ok")
            .metrics
            .spill_mb
    };
    assert!(
        spill(&cramped) > spill(&roomy),
        "bigger executors must spill less"
    );
}

#[test]
fn oversubscribed_cores_slow_cpu_bound_work() {
    let job = JobSpec::new("cpu", vec![StageSpec::input("m", 4096.0, 0.03)]);
    // 8 executors x 2 cores = 16 slots on 64 vCPUs (fine) vs
    // 8 executors x 16 cores = 128 slots on 64 vCPUs (2x oversubscribed).
    let fine = base_cfg();
    let oversub = base_cfg().with(sp::EXECUTOR_CORES, 16i64);
    let (a, b) = (runtime(&fine, &job), runtime(&oversub, &job));
    // Oversubscription adds contention; per-slot throughput drops, and
    // for CPU-bound scans the wall-clock should not improve much.
    assert!(
        b > a * 0.5,
        "2x oversubscription cannot double throughput: fine {a}, oversub {b}"
    );
}
