//! The simulated cloud instance catalog.
//!
//! A synthetic EC2-like offering: five families with distinct resource
//! ratios (general-purpose `m5`, compute-optimized `c5`, memory-optimized
//! `r5`, storage-dense `h1`, NVMe-IO `i3`) in four sizes. Absolute
//! numbers are loosely modelled on the 2018-era EC2 catalog the paper's
//! experiments ran on (their Table I testbed is 4 × `h1.4xlarge`); what
//! matters for reproduction is the *relative* structure: heterogeneous
//! CPU:memory:disk:network ratios and linear-ish pricing, which create
//! the family/size trade-offs cloud-configuration tuners must navigate.

use serde::{Deserialize, Serialize};

/// One rentable VM type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Family name, e.g. `"h1"`.
    pub family: String,
    /// Size name, e.g. `"4xlarge"`.
    pub size: String,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory in MiB.
    pub mem_mb: u64,
    /// Aggregate local-disk bandwidth in MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth in MB/s.
    pub net_mbps: f64,
    /// Relative single-core speed (1.0 = `m5` baseline).
    pub cpu_speed: f64,
    /// On-demand price in USD per hour.
    pub price_per_hour: f64,
}

impl InstanceType {
    /// Canonical `family.size` name, e.g. `"h1.4xlarge"`.
    pub fn name(&self) -> String {
        format!("{}.{}", self.family, self.size)
    }
}

impl std::fmt::Display for InstanceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.family, self.size)
    }
}

#[allow(clippy::too_many_arguments)] // a row constructor for the table below
fn inst(
    family: &str,
    size: &str,
    vcpus: u32,
    mem_gb: u64,
    disk_mbps: f64,
    net_mbps: f64,
    cpu_speed: f64,
    price: f64,
) -> InstanceType {
    InstanceType {
        family: family.to_owned(),
        size: size.to_owned(),
        vcpus,
        mem_mb: mem_gb * 1024,
        disk_mbps,
        net_mbps,
        cpu_speed,
        price_per_hour: price,
    }
}

/// Returns the full catalog (19 instance types; `h1` has no `large`).
pub fn all_instances() -> Vec<InstanceType> {
    vec![
        // m5 — general purpose: 4 GiB/vCPU, EBS-class disk.
        inst("m5", "large", 2, 8, 65.0, 95.0, 1.0, 0.096),
        inst("m5", "xlarge", 4, 16, 110.0, 155.0, 1.0, 0.192),
        inst("m5", "2xlarge", 8, 32, 180.0, 310.0, 1.0, 0.384),
        inst("m5", "4xlarge", 16, 64, 290.0, 590.0, 1.0, 0.768),
        // c5 — compute optimized: 2 GiB/vCPU, ~35% faster cores.
        inst("c5", "large", 2, 4, 65.0, 95.0, 1.35, 0.085),
        inst("c5", "xlarge", 4, 8, 110.0, 155.0, 1.35, 0.17),
        inst("c5", "2xlarge", 8, 16, 180.0, 310.0, 1.35, 0.34),
        inst("c5", "4xlarge", 16, 32, 290.0, 590.0, 1.35, 0.68),
        // r5 — memory optimized: 8 GiB/vCPU.
        inst("r5", "large", 2, 16, 65.0, 95.0, 1.0, 0.126),
        inst("r5", "xlarge", 4, 32, 110.0, 155.0, 1.0, 0.252),
        inst("r5", "2xlarge", 8, 64, 180.0, 310.0, 1.0, 0.504),
        inst("r5", "4xlarge", 16, 128, 290.0, 590.0, 1.0, 1.008),
        // h1 — storage dense: HDD arrays with very high sequential
        // throughput (the paper's Table I testbed).
        inst("h1", "xlarge", 4, 16, 600.0, 155.0, 0.95, 0.234),
        inst("h1", "2xlarge", 8, 32, 1100.0, 310.0, 0.95, 0.468),
        inst("h1", "4xlarge", 16, 64, 1900.0, 590.0, 0.95, 0.936),
        // i3 — NVMe IO: fast random IO, memory-heavy.
        inst("i3", "large", 2, 16, 450.0, 95.0, 1.05, 0.156),
        inst("i3", "xlarge", 4, 32, 850.0, 155.0, 1.05, 0.312),
        inst("i3", "2xlarge", 8, 64, 1500.0, 310.0, 1.05, 0.624),
        inst("i3", "4xlarge", 16, 128, 2600.0, 590.0, 1.05, 1.248),
    ]
}

/// Looks up an instance type by family and size.
pub fn lookup(family: &str, size: &str) -> Option<InstanceType> {
    all_instances()
        .into_iter()
        .find(|i| i.family == family && i.size == size)
}

/// The paper's Table I testbed node type, `h1.4xlarge`.
pub fn h1_4xlarge() -> InstanceType {
    lookup("h1", "4xlarge").expect("h1.4xlarge is in the catalog")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        let all = all_instances();
        assert_eq!(all.len(), 19);
        for family in ["m5", "c5", "r5", "i3"] {
            for size in ["large", "xlarge", "2xlarge", "4xlarge"] {
                assert!(lookup(family, size).is_some(), "missing {family}.{size}");
            }
        }
        assert!(lookup("h1", "large").is_none());
        assert!(lookup("h1", "4xlarge").is_some());
    }

    #[test]
    fn prices_scale_roughly_linearly_with_size() {
        for family in ["m5", "c5", "r5", "i3"] {
            let large = lookup(family, "large").unwrap();
            let x4 = lookup(family, "4xlarge").unwrap();
            let ratio = x4.price_per_hour / large.price_per_hour;
            assert!((7.0..=9.0).contains(&ratio), "{family}: {ratio}");
        }
    }

    #[test]
    fn families_have_distinct_ratios() {
        let m5 = lookup("m5", "xlarge").unwrap();
        let c5 = lookup("c5", "xlarge").unwrap();
        let r5 = lookup("r5", "xlarge").unwrap();
        let h1 = lookup("h1", "xlarge").unwrap();
        assert!(c5.mem_mb < m5.mem_mb && m5.mem_mb < r5.mem_mb);
        assert!(c5.cpu_speed > m5.cpu_speed);
        assert!(h1.disk_mbps > 3.0 * m5.disk_mbps);
    }

    #[test]
    fn testbed_matches_paper() {
        let t = h1_4xlarge();
        assert_eq!(t.vcpus, 16);
        assert_eq!(t.mem_mb, 64 * 1024);
        assert_eq!(t.name(), "h1.4xlarge");
    }
}
