//! A discrete-event simulator of a Spark-like DISC engine running on an
//! EC2-like cloud — Fig. 2 of *"Towards Seamless Configuration Tuning of
//! Big Data Analytics"* (ICDCS'19) made executable.
//!
//! The simulator is the substrate substituting for the paper's real
//! Spark-on-EMR testbed (see DESIGN.md §1): tuners interact with it
//! through exactly the interface they would have against a real cluster
//! — submit a configuration, observe a (noisy) runtime — while the
//! engine models the mechanisms that make the configuration→runtime
//! surface hard: executor layout feasibility, slot scheduling in waves,
//! shuffle volume vs. compression/serialization CPU trade-offs, unified
//! memory with spill/OOM cliffs, RDD caching with eviction, GC pressure,
//! data locality, stragglers/speculation, and co-location interference.
//!
//! # Example
//!
//! ```
//! use simcluster::cluster::ClusterSpec;
//! use simcluster::dag::{JobSpec, StageSpec};
//! use simcluster::engine::Simulator;
//! use simcluster::sparkenv::SparkEnv;
//! use rand::SeedableRng;
//!
//! let cluster = ClusterSpec::table1_testbed();
//! let config = confspace::spark::spark_space().default_configuration();
//! let env = SparkEnv::resolve(&cluster, &config).expect("layout fits");
//! let job = JobSpec::new(
//!     "wordcount",
//!     vec![
//!         StageSpec::input("map", 1024.0, 0.01).writes_shuffle(64.0),
//!         StageSpec::reduce("reduce", vec![0], 64.0, 0.005).writes_output(8.0),
//!     ],
//! );
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let result = Simulator::dedicated().run(&env, &job, &mut rng).expect("no crash");
//! assert!(result.runtime_s > 0.0);
//! ```

pub mod catalog;
pub mod cluster;
pub mod constants;
pub mod dag;
pub mod engine;
pub mod error;
pub mod interference;
pub mod metrics;
pub mod shared;
pub mod sparkenv;

pub use catalog::InstanceType;
pub use cluster::ClusterSpec;
pub use dag::{JobSpec, Partitioning, StageSpec};
pub use engine::Simulator;
pub use error::{FailureKind, SimError};
pub use interference::InterferenceModel;
pub use metrics::{ExecMetrics, SimResult, StageMetrics};
pub use shared::{run_shared, SharedOutcome, SharingPolicy, Submission};
pub use sparkenv::SparkEnv;
