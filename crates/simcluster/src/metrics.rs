//! Execution metrics — the telemetry a cloud provider "witnesses" for
//! every run (§IV: the raw material for characterization, similarity
//! and re-tuning detection).

use serde::{Deserialize, Serialize};

/// Per-stage timing/volume breakdown.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Stage name.
    pub name: String,
    /// Number of tasks run (including retries).
    pub tasks: u32,
    /// Wall-clock duration of the stage (s).
    pub duration_s: f64,
    /// Sum of task CPU time (s).
    pub cpu_s: f64,
    /// Sum of task disk-IO time (s).
    pub io_s: f64,
    /// Sum of task shuffle-network time (s).
    pub net_s: f64,
    /// Sum of GC time (s).
    pub gc_s: f64,
    /// Sum of (de)serialization + (de)compression time (s).
    pub ser_s: f64,
    /// Bytes spilled to disk (MB).
    pub spill_mb: f64,
    /// OOM task retries.
    pub oom_retries: u32,
    /// Fraction of cached reads served from memory (0 when no cache use).
    pub cache_hit_frac: f64,
}

/// Whole-job execution metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecMetrics {
    /// End-to-end wall-clock runtime (s).
    pub runtime_s: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageMetrics>,
    /// Total tasks across stages.
    pub total_tasks: u32,
    /// Total bytes read from stable storage (MB).
    pub input_mb: f64,
    /// Total logical shuffle volume (MB).
    pub shuffle_mb: f64,
    /// Total spilled (MB).
    pub spill_mb: f64,
    /// Total OOM retries.
    pub oom_retries: u32,
    /// Peak fraction of aggregate storage memory used by cached RDDs.
    pub peak_storage_frac: f64,
}

impl ExecMetrics {
    /// Sum of all task-time components (s): the denominator for the
    /// fraction accessors below.
    pub fn total_task_time_s(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.cpu_s + s.io_s + s.net_s + s.gc_s + s.ser_s)
            .sum()
    }

    /// Fraction of task time spent on CPU work.
    pub fn cpu_frac(&self) -> f64 {
        self.frac(|s| s.cpu_s)
    }

    /// Fraction of task time spent on disk IO.
    pub fn io_frac(&self) -> f64 {
        self.frac(|s| s.io_s)
    }

    /// Fraction of task time spent fetching shuffle data.
    pub fn net_frac(&self) -> f64 {
        self.frac(|s| s.net_s)
    }

    /// Fraction of task time spent in GC.
    pub fn gc_frac(&self) -> f64 {
        self.frac(|s| s.gc_s)
    }

    /// Fraction of task time spent (de)serializing / (de)compressing.
    pub fn ser_frac(&self) -> f64 {
        self.frac(|s| s.ser_s)
    }

    // Negated comparison so a NaN total (corrupt stage timings) also
    // takes the guard: `total <= 0.0` is false for NaN and would fall
    // through to a NaN division.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn frac(&self, f: impl Fn(&StageMetrics) -> f64) -> f64 {
        let total = self.total_task_time_s();
        if !(total > 0.0) {
            return 0.0;
        }
        self.stages.iter().map(f).sum::<f64>() / total
    }

    /// Whether every duration in the metrics is finite and
    /// non-negative. Poisoned telemetry (NaN from a crashed agent,
    /// negative durations from clock skew) must be rejected at
    /// ingestion time, not merely tolerated by the frac helpers.
    pub fn is_wellformed(&self) -> bool {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        ok(self.runtime_s)
            && ok(self.input_mb)
            && ok(self.shuffle_mb)
            && ok(self.spill_mb)
            && self.stages.iter().all(|s| {
                ok(s.duration_s)
                    && ok(s.cpu_s)
                    && ok(s.io_s)
                    && ok(s.net_s)
                    && ok(s.gc_s)
                    && ok(s.ser_s)
                    && ok(s.spill_mb)
            })
    }

    /// Mean cache hit fraction over stages that read cached data.
    pub fn cache_hit_frac(&self) -> f64 {
        let readers: Vec<&StageMetrics> = self
            .stages
            .iter()
            .filter(|s| s.cache_hit_frac > 0.0 || s.name.contains("iter"))
            .collect();
        if readers.is_empty() {
            return 1.0;
        }
        readers.iter().map(|s| s.cache_hit_frac).sum::<f64>() / readers.len() as f64
    }
}

/// The outcome of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// End-to-end runtime (s).
    pub runtime_s: f64,
    /// Dollar cost of the run (cluster price × runtime).
    pub cost_usd: f64,
    /// Detailed metrics.
    pub metrics: ExecMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ExecMetrics {
        ExecMetrics {
            runtime_s: 100.0,
            stages: vec![
                StageMetrics {
                    name: "map".into(),
                    cpu_s: 60.0,
                    io_s: 30.0,
                    net_s: 0.0,
                    gc_s: 5.0,
                    ser_s: 5.0,
                    ..Default::default()
                },
                StageMetrics {
                    name: "reduce".into(),
                    cpu_s: 40.0,
                    io_s: 10.0,
                    net_s: 40.0,
                    gc_s: 5.0,
                    ser_s: 5.0,
                    ..Default::default()
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = metrics();
        let sum = m.cpu_frac() + m.io_frac() + m.net_frac() + m.gc_frac() + m.ser_frac();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fractions_reflect_components() {
        let m = metrics();
        assert!((m.cpu_frac() - 100.0 / 200.0).abs() < 1e-9);
        assert!((m.net_frac() - 40.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = ExecMetrics::default();
        assert_eq!(m.cpu_frac(), 0.0);
        assert_eq!(m.cache_hit_frac(), 1.0);
    }

    #[test]
    fn nan_task_times_yield_zero_fractions() {
        let m = ExecMetrics {
            stages: vec![StageMetrics {
                name: "corrupt".into(),
                cpu_s: f64::NAN,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(m.total_task_time_s().is_nan());
        assert_eq!(m.cpu_frac(), 0.0, "NaN total must take the guard");
        assert_eq!(m.io_frac(), 0.0);
        assert_eq!(m.ser_frac(), 0.0);
    }

    #[test]
    fn wellformed_detects_poisoned_durations() {
        assert!(metrics().is_wellformed());
        let nan = ExecMetrics {
            runtime_s: f64::NAN,
            ..Default::default()
        };
        assert!(!nan.is_wellformed());
        let neg_stage = ExecMetrics {
            stages: vec![StageMetrics {
                name: "skew".into(),
                duration_s: -1.0,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert!(!neg_stage.is_wellformed());
        let inf = ExecMetrics {
            shuffle_mb: f64::INFINITY,
            ..Default::default()
        };
        assert!(!inf.is_wellformed());
    }

    #[test]
    fn negative_task_times_yield_zero_fractions() {
        let m = ExecMetrics {
            stages: vec![StageMetrics {
                name: "clock-skew".into(),
                cpu_s: -5.0,
                io_s: 2.0,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(m.cpu_frac(), 0.0);
        assert_eq!(m.net_frac(), 0.0);
    }
}
