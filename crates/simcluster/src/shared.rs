//! Cross-job scheduling on a shared cluster — the provider-side view.
//!
//! §II-A observes that tenants' measurements are taken while co-located
//! with other workloads, and §IV-D argues predictability "simplifies
//! the task of cloud provider's job scheduler". This module gives the
//! provider that scheduler: several tenants' jobs submitted to ONE
//! cluster, completed under either run-to-completion FIFO or
//! processor-sharing FAIR policies.
//!
//! The model is deliberately at job granularity: each job's *demand* is
//! its standalone simulated runtime on the full cluster, and the
//! policies redistribute wall-clock capacity across concurrently active
//! jobs (classic processor sharing). This captures the scheduling
//! trade-off that matters — short jobs stuck behind long ones — without
//! duplicating the task-level engine.

use rand::Rng;
use serde::{Deserialize, Serialize};

use confspace::Configuration;

use crate::cluster::ClusterSpec;
use crate::dag::JobSpec;
use crate::engine::Simulator;
use crate::error::FailureKind;
use crate::sparkenv::SparkEnv;

/// Cross-job scheduling policy of the shared cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SharingPolicy {
    /// Jobs run to completion in submission order.
    Fifo,
    /// All active jobs share the cluster equally (processor sharing).
    Fair,
}

/// One tenant's submission to the shared cluster.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Tenant label (reporting only).
    pub tenant: String,
    /// The job to run.
    pub job: JobSpec,
    /// The DISC configuration it runs with.
    pub config: Configuration,
}

/// Per-job outcome on the shared cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedJobOutcome {
    /// Tenant label.
    pub tenant: String,
    /// The job's standalone demand (runtime at full capacity), seconds.
    pub demand_s: f64,
    /// Wall-clock completion time on the shared cluster, seconds from
    /// the common submission instant.
    pub completion_s: f64,
    /// How the job failed, if it did (failed jobs occupy no capacity).
    pub failure: Option<FailureKind>,
}

/// The shared run's aggregate outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedOutcome {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<SharedJobOutcome>,
    /// Completion time of the last job (s).
    pub makespan_s: f64,
}

impl SharedOutcome {
    /// Mean completion time over successful jobs.
    pub fn mean_completion_s(&self) -> f64 {
        let ok: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.failure.is_none())
            .map(|j| j.completion_s)
            .collect();
        models_mean(&ok)
    }
}

fn models_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs a batch of submissions (all arriving at t = 0) on one cluster
/// under `policy`.
///
/// Demands come from the task-level engine (one standalone simulation
/// per job); completions follow the policy's capacity sharing.
pub fn run_shared<R: Rng + ?Sized>(
    cluster: &ClusterSpec,
    submissions: &[Submission],
    policy: SharingPolicy,
    sim: &Simulator,
    rng: &mut R,
) -> SharedOutcome {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    // Standalone demand per job. Each job's randomness is derived from
    // the base seed and its own identity, so demands do not depend on
    // submission order (policies can be compared on identical work).
    let base: u64 = rng.gen();
    let demands: Vec<(f64, Option<FailureKind>)> = submissions
        .iter()
        .map(|s| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.tenant.hash(&mut h);
            s.job.name.hash(&mut h);
            let mut jrng = rand::rngs::StdRng::seed_from_u64(base ^ h.finish());
            match SparkEnv::resolve(cluster, &s.config) {
                Err(f) => (0.0, Some(f)),
                Ok(env) => match sim.run(&env, &s.job, &mut jrng) {
                    Ok(r) => (r.runtime_s, None),
                    Err(f) => (0.0, Some(f)),
                },
            }
        })
        .collect();

    let completions = match policy {
        SharingPolicy::Fifo => fifo_completions(&demands),
        SharingPolicy::Fair => fair_completions(&demands),
    };

    let jobs: Vec<SharedJobOutcome> = submissions
        .iter()
        .zip(&demands)
        .zip(&completions)
        .map(|((s, (demand, failure)), &completion)| SharedJobOutcome {
            tenant: s.tenant.clone(),
            demand_s: *demand,
            completion_s: completion,
            failure: failure.clone(),
        })
        .collect();
    let makespan_s = jobs
        .iter()
        .filter(|j| j.failure.is_none())
        .map(|j| j.completion_s)
        .fold(0.0, f64::max);
    SharedOutcome { jobs, makespan_s }
}

fn fifo_completions(demands: &[(f64, Option<FailureKind>)]) -> Vec<f64> {
    let mut t = 0.0;
    demands
        .iter()
        .map(|(d, failure)| {
            if failure.is_some() {
                return t; // failed jobs vacate immediately
            }
            t += d;
            t
        })
        .collect()
}

/// Processor-sharing completions: all active jobs progress at rate
/// `1/K` where `K` is the number still running.
fn fair_completions(demands: &[(f64, Option<FailureKind>)]) -> Vec<f64> {
    let mut remaining: Vec<(usize, f64)> = demands
        .iter()
        .enumerate()
        .filter(|(_, (_, f))| f.is_none())
        .map(|(i, (d, _))| (i, *d))
        .collect();
    let mut completions = vec![0.0; demands.len()];
    let mut t = 0.0;
    while !remaining.is_empty() {
        let k = remaining.len() as f64;
        let (min_idx, &(_, min_rem)) = remaining
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .expect("non-empty");
        // The shortest remaining job finishes after k * min_rem wall time.
        let dt = k * min_rem;
        t += dt;
        for (_, r) in remaining.iter_mut() {
            *r -= min_rem;
        }
        let (job, _) = remaining.remove(min_idx);
        completions[job] = t;
        // Jobs that reached zero simultaneously complete now too.
        remaining.retain(|&(idx, r)| {
            if r <= 1e-12 {
                completions[idx] = t;
                false
            } else {
                true
            }
        });
    }
    completions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::StageSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn submission(tenant: &str, input_mb: f64) -> Submission {
        Submission {
            tenant: tenant.to_owned(),
            job: JobSpec::new(
                &format!("{tenant}-job"),
                vec![StageSpec::input("scan", input_mb, 0.01)],
            ),
            config: confspace::spark::spark_space()
                .default_configuration()
                .with(confspace::spark::names::EXECUTOR_INSTANCES, 8i64)
                .with(confspace::spark::names::EXECUTOR_CORES, 2i64)
                .with(confspace::spark::names::EXECUTOR_MEMORY_MB, 4096i64),
        }
    }

    fn run(policy: SharingPolicy, sizes: &[f64]) -> SharedOutcome {
        let cluster = ClusterSpec::table1_testbed();
        let subs: Vec<Submission> = sizes
            .iter()
            .enumerate()
            .map(|(i, &mb)| submission(&format!("t{i}"), mb))
            .collect();
        let mut rng = StdRng::seed_from_u64(8);
        run_shared(&cluster, &subs, policy, &Simulator::dedicated(), &mut rng)
    }

    #[test]
    fn fifo_completions_are_prefix_sums() {
        let out = run(SharingPolicy::Fifo, &[1024.0, 1024.0, 1024.0]);
        let c: Vec<f64> = out.jobs.iter().map(|j| j.completion_s).collect();
        assert!(c[0] < c[1] && c[1] < c[2]);
        assert!((c[2] - out.makespan_s).abs() < 1e-9);
        // Equal demands: completions are ~1x, 2x, 3x the demand.
        assert!(
            (c[1] / c[0] - 2.0).abs() < 0.3,
            "c = {c:?}, ratio = {}",
            c[1] / c[0]
        );
    }

    #[test]
    fn fair_helps_short_jobs_behind_a_long_one() {
        // One long job submitted first, four short ones behind it.
        let sizes = [16384.0, 512.0, 512.0, 512.0, 512.0];
        let fifo = run(SharingPolicy::Fifo, &sizes);
        let fair = run(SharingPolicy::Fair, &sizes);
        // Short jobs complete far earlier under FAIR.
        let fifo_short = fifo.jobs[1].completion_s;
        let fair_short = fair.jobs[1].completion_s;
        assert!(
            fair_short < fifo_short * 0.8,
            "fair {fair_short:.1} vs fifo {fifo_short:.1}"
        );
        // Mean completion improves under FAIR for this mix.
        assert!(fair.mean_completion_s() < fifo.mean_completion_s());
    }

    #[test]
    fn both_policies_preserve_total_work() {
        let sizes = [2048.0, 4096.0, 1024.0];
        let fifo = run(SharingPolicy::Fifo, &sizes);
        let fair = run(SharingPolicy::Fair, &sizes);
        // Makespan equals total demand under both (work conservation).
        let total: f64 = fifo.jobs.iter().map(|j| j.demand_s).sum();
        assert!((fifo.makespan_s - total).abs() / total < 1e-6);
        assert!((fair.makespan_s - total).abs() / total < 1e-6);
    }

    #[test]
    fn failed_jobs_occupy_no_capacity() {
        let cluster = ClusterSpec::table1_testbed();
        let mut subs = vec![submission("ok", 1024.0)];
        // A job whose executor cannot launch.
        let mut bad = submission("bad", 1024.0);
        bad.config = bad
            .config
            .with(confspace::spark::names::EXECUTOR_MEMORY_MB, 32768i64)
            .with(confspace::spark::names::EXECUTOR_INSTANCES, 48i64);
        // 32 GB heap * 1.1 fits in a 64 GB node, so force a true failure
        // with a tiny-node cluster instead.
        let tiny = ClusterSpec::new(crate::catalog::lookup("m5", "large").unwrap(), 2);
        subs.push(bad);
        let mut rng = StdRng::seed_from_u64(8);
        let out = run_shared(
            &tiny,
            &subs,
            SharingPolicy::Fifo,
            &Simulator::dedicated(),
            &mut rng,
        );
        assert!(out.jobs[1].failure.is_some());
        let _ = cluster;
    }
}
