//! Simulator error and failure types.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors constructing a simulation (before any task runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested instance family/size is not in the catalog.
    UnknownInstance(String),
    /// The job's stage DAG is malformed (cycle or dangling dependency).
    MalformedDag(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownInstance(n) => write!(f, "unknown instance type `{n}`"),
            SimError::MalformedDag(m) => write!(f, "malformed stage DAG: {m}"),
        }
    }
}

impl Error for SimError {}

/// Ways a simulated execution can fail — mirroring the "expensive failed
/// test execution" / crash modes §IV of the paper describes for
/// misconfigured deployments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The executor layout cannot be allocated on the cluster at all
    /// (an executor's memory or cores exceed a single node's).
    LaunchFailure {
        /// Human-readable reason.
        reason: String,
    },
    /// The driver ran out of memory tracking tasks/results.
    DriverOom,
    /// A stage's tasks kept failing with OOM after all retry attempts.
    ExecutorOomLoop {
        /// Stage that failed.
        stage: String,
    },
    /// Repeated shuffle-fetch timeouts aborted the job.
    FetchTimeout {
        /// Stage that failed.
        stage: String,
    },
    /// The trial was aborted by the execution harness after exhausting
    /// its retry budget (injected fault, panic, or poisoned telemetry).
    /// Observations carrying this kind are *censored*: the penalty
    /// runtime ranks them, but surrogates must not fit on it.
    TrialAborted {
        /// Human-readable reason from the last failed attempt.
        reason: String,
    },
    /// The trial exceeded its per-trial deadline (hang or permanent
    /// straggler) and was killed by the executor. Also censored.
    TrialTimeout,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::LaunchFailure { reason } => write!(f, "launch failure: {reason}"),
            FailureKind::DriverOom => write!(f, "driver out of memory"),
            FailureKind::ExecutorOomLoop { stage } => {
                write!(f, "stage `{stage}` aborted: executor OOM retry loop")
            }
            FailureKind::FetchTimeout { stage } => {
                write!(f, "stage `{stage}` aborted: shuffle fetch timeouts")
            }
            FailureKind::TrialAborted { reason } => {
                write!(f, "trial aborted after retries: {reason}")
            }
            FailureKind::TrialTimeout => write!(f, "trial exceeded its deadline"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::UnknownInstance("x.large".into());
        assert!(e.to_string().contains("x.large"));
        let f = FailureKind::ExecutorOomLoop {
            stage: "reduce".into(),
        };
        assert!(f.to_string().contains("reduce"));
    }
}
