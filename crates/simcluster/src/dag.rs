//! Job specifications: DAGs of stages, the physical execution plan of
//! §III-A / Fig. 2 of the paper (job → stages → tasks over partitions).

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Identifier of a stage within a job (its index in [`JobSpec::stages`]).
pub type StageId = usize;

/// How a stage's task count is determined.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partitioning {
    /// Input stage: one task per input block of the given size (MB) —
    /// Spark derives map-task counts from HDFS/S3 splits.
    InputBlocks {
        /// Split size in MB (128 for HDFS-style splits).
        block_mb: f64,
    },
    /// Task count follows `spark.default.parallelism`.
    DefaultParallelism,
    /// Task count follows `spark.sql.shuffle.partitions`.
    ShufflePartitions,
}

/// What a stage reads from a cached RDD produced by an earlier stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedRead {
    /// The stage whose cached output is read.
    pub source: StageId,
    /// Volume read (MB, uncompressed logical bytes).
    pub mb: f64,
}

/// One stage of the physical plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Human-readable name (e.g. `"pagerank-iter-3-join"`).
    pub name: String,
    /// Stages that must complete first (shuffle or narrow deps).
    pub deps: Vec<StageId>,
    /// How many tasks the stage runs.
    pub partitioning: Partitioning,
    /// Data read from stable storage (MB).
    pub input_mb: f64,
    /// Data fetched from parent stages' shuffle outputs (MB, logical).
    pub shuffle_read_mb: f64,
    /// Data written as shuffle output for children (MB, logical).
    pub shuffle_write_mb: f64,
    /// Final output written to stable storage (MB).
    pub output_mb: f64,
    /// CPU work per MB of data processed (seconds per MB on an m5 core).
    pub cpu_s_per_mb: f64,
    /// Peak working set per MB of per-task input (hash tables, sort
    /// buffers). 1.0 means streaming; sorts/joins are 2–4.
    pub mem_expansion: f64,
    /// Whether this stage's output RDD is cached for later stages.
    pub cache_output: bool,
    /// Read from a cached RDD (iterative workloads).
    pub cached_read: Option<CachedRead>,
    /// Task-size skew: 0 = perfectly even partitions; 1 ≈ heavy skew
    /// (Zipf-like key distribution).
    pub skew: f64,
}

impl StageSpec {
    /// Creates a minimal map-style stage reading `input_mb` from storage.
    pub fn input(name: &str, input_mb: f64, cpu_s_per_mb: f64) -> Self {
        StageSpec {
            name: name.to_owned(),
            deps: Vec::new(),
            partitioning: Partitioning::InputBlocks { block_mb: 128.0 },
            input_mb,
            shuffle_read_mb: 0.0,
            shuffle_write_mb: 0.0,
            output_mb: 0.0,
            cpu_s_per_mb,
            mem_expansion: 1.0,
            cache_output: false,
            cached_read: None,
            skew: 0.0,
        }
    }

    /// Creates a reduce-style stage fetching `shuffle_read_mb` from `deps`.
    pub fn reduce(name: &str, deps: Vec<StageId>, shuffle_read_mb: f64, cpu_s_per_mb: f64) -> Self {
        StageSpec {
            name: name.to_owned(),
            deps,
            partitioning: Partitioning::DefaultParallelism,
            input_mb: 0.0,
            shuffle_read_mb,
            shuffle_write_mb: 0.0,
            output_mb: 0.0,
            cpu_s_per_mb,
            mem_expansion: 1.5,
            cache_output: false,
            cached_read: None,
            skew: 0.0,
        }
    }

    /// Sets the shuffle output volume (builder style).
    #[must_use]
    pub fn writes_shuffle(mut self, mb: f64) -> Self {
        self.shuffle_write_mb = mb;
        self
    }

    /// Sets the stable-storage output volume (builder style).
    #[must_use]
    pub fn writes_output(mut self, mb: f64) -> Self {
        self.output_mb = mb;
        self
    }

    /// Marks the stage's output as cached (builder style).
    #[must_use]
    pub fn cached(mut self) -> Self {
        self.cache_output = true;
        self
    }

    /// Declares a cached-RDD read (builder style).
    #[must_use]
    pub fn reads_cached(mut self, source: StageId, mb: f64) -> Self {
        self.cached_read = Some(CachedRead { source, mb });
        self
    }

    /// Sets the memory expansion factor (builder style).
    #[must_use]
    pub fn with_mem_expansion(mut self, f: f64) -> Self {
        self.mem_expansion = f;
        self
    }

    /// Sets the skew factor (builder style).
    #[must_use]
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Sets the partitioning rule (builder style).
    #[must_use]
    pub fn with_partitioning(mut self, p: Partitioning) -> Self {
        self.partitioning = p;
        self
    }

    /// Total logical bytes this stage processes (MB).
    pub fn data_mb(&self) -> f64 {
        self.input_mb + self.shuffle_read_mb + self.cached_read.map_or(0.0, |c| c.mb)
    }
}

/// A job: a named DAG of stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (workload + scale, e.g. `"pagerank@DS2"`).
    pub name: String,
    /// The stages, in an order consistent with their dependencies.
    pub stages: Vec<StageSpec>,
}

impl JobSpec {
    /// Creates a job from stages.
    pub fn new(name: &str, stages: Vec<StageSpec>) -> Self {
        JobSpec {
            name: name.to_owned(),
            stages,
        }
    }

    /// Validates the DAG: dependency indices in range and strictly
    /// less than the dependent stage (topological storage order), and
    /// cached reads referencing caching stages.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedDag`] describing the first problem.
    pub fn validate(&self) -> Result<(), SimError> {
        for (i, s) in self.stages.iter().enumerate() {
            for &d in &s.deps {
                if d >= i {
                    return Err(SimError::MalformedDag(format!(
                        "stage {i} `{}` depends on later/self stage {d}",
                        s.name
                    )));
                }
            }
            if let Some(c) = s.cached_read {
                if c.source >= i {
                    return Err(SimError::MalformedDag(format!(
                        "stage {i} `{}` reads cache of later/self stage {}",
                        s.name, c.source
                    )));
                }
                if !self.stages[c.source].cache_output {
                    return Err(SimError::MalformedDag(format!(
                        "stage {i} `{}` reads cache of stage {} which does not cache",
                        s.name, c.source
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total bytes read from stable storage (MB).
    pub fn total_input_mb(&self) -> f64 {
        self.stages.iter().map(|s| s.input_mb).sum()
    }

    /// Total logical shuffle volume (MB).
    pub fn total_shuffle_mb(&self) -> f64 {
        self.stages.iter().map(|s| s.shuffle_read_mb).sum()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_job() -> JobSpec {
        JobSpec::new(
            "wc",
            vec![
                StageSpec::input("map", 1024.0, 0.01).writes_shuffle(100.0),
                StageSpec::reduce("reduce", vec![0], 100.0, 0.005).writes_output(10.0),
            ],
        )
    }

    #[test]
    fn valid_dag_passes() {
        assert!(two_stage_job().validate().is_ok());
    }

    #[test]
    fn forward_dep_is_rejected() {
        let mut j = two_stage_job();
        j.stages[0].deps = vec![1];
        assert!(j.validate().is_err());
    }

    #[test]
    fn self_dep_is_rejected() {
        let mut j = two_stage_job();
        j.stages[1].deps = vec![1];
        assert!(j.validate().is_err());
    }

    #[test]
    fn cached_read_must_reference_caching_stage() {
        let j = JobSpec::new(
            "bad",
            vec![
                StageSpec::input("a", 10.0, 0.01),
                StageSpec::reduce("b", vec![0], 0.0, 0.01).reads_cached(0, 10.0),
            ],
        );
        assert!(j.validate().is_err());
        let j = JobSpec::new(
            "good",
            vec![
                StageSpec::input("a", 10.0, 0.01).cached(),
                StageSpec::reduce("b", vec![0], 0.0, 0.01).reads_cached(0, 10.0),
            ],
        );
        assert!(j.validate().is_ok());
    }

    #[test]
    fn totals() {
        let j = two_stage_job();
        assert_eq!(j.total_input_mb(), 1024.0);
        assert_eq!(j.total_shuffle_mb(), 100.0);
        assert_eq!(j.num_stages(), 2);
    }

    #[test]
    fn data_mb_includes_cache() {
        let s = StageSpec::reduce("r", vec![0], 50.0, 0.01).reads_cached(0, 25.0);
        assert_eq!(s.data_mb(), 75.0);
    }
}
