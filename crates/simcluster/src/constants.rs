//! Calibration constants for the simulator, collected in one place
//! (DESIGN.md §7). Values are chosen so the *shape* of published results
//! holds: order-of-magnitude degradation for pathological configurations
//! (DAC's 89×, CherryPick's 12×), a few-percent noise floor, and
//! realistic CPU/IO/shuffle balances for the HiBench workloads.

/// Per-task launch/scheduling overhead added by the driver (seconds).
pub const TASK_OVERHEAD_S: f64 = 0.004;

/// Fixed per-stage scheduling overhead (DAG planning, task-set dispatch).
pub const STAGE_OVERHEAD_S: f64 = 0.08;

/// Fixed job submission overhead (driver startup amortized per job).
pub const JOB_OVERHEAD_S: f64 = 1.0;

/// JVM/executor memory overhead beyond the configured heap (fraction).
pub const EXECUTOR_MEM_OVERHEAD: f64 = 0.10;

/// CPU cost of serializing/deserializing one MB with the Java serializer
/// (seconds per MB on an m5 core).
pub const JAVA_SER_S_PER_MB: f64 = 0.011;

/// CPU cost of serializing/deserializing one MB with Kryo.
pub const KRYO_SER_S_PER_MB: f64 = 0.004;

/// Java serialization inflates on-wire/cached bytes by this factor
/// relative to Kryo (Kryo = 1.0).
pub const JAVA_SIZE_FACTOR: f64 = 1.6;

/// Compression ratios (compressed size / raw size) per codec.
pub fn codec_ratio(codec: &str) -> f64 {
    match codec {
        "zstd" => 0.33,
        "snappy" => 0.48,
        _ => 0.42, // lz4
    }
}

/// Compression CPU cost per raw MB (seconds, m5 core).
pub fn codec_cpu_s_per_mb(codec: &str) -> f64 {
    match codec {
        "zstd" => 0.0055,
        "snappy" => 0.0016,
        _ => 0.0019, // lz4
    }
}

/// Base GC overhead coefficient: fraction of CPU time lost to GC at
/// full heap pressure (scales quadratically with pressure).
pub const GC_COEFF: f64 = 0.9;

/// Multiplicative lognormal noise sigma on each task's duration.
pub const TASK_NOISE_SIGMA: f64 = 0.06;

/// Per-stage correlated noise sigma (JIT warmup, OS jitter).
pub const STAGE_NOISE_SIGMA: f64 = 0.025;

/// Spill amplification: every spilled MB costs a write + later re-read.
pub const SPILL_RW_FACTOR: f64 = 2.0;

/// Working set beyond this multiple of a task's execution memory
/// triggers an OOM (retry) instead of a spill.
pub const OOM_WORKING_SET_FACTOR: f64 = 8.0;

/// Maximum task retry attempts before the stage (and job) is aborted,
/// mirroring `spark.task.maxFailures`.
pub const MAX_TASK_FAILURES: u32 = 4;

/// Each OOM retry multiplies the task's elapsed time by this factor
/// (wasted attempt + relaunch).
pub const RETRY_TIME_FACTOR: f64 = 1.9;

/// Driver memory needed per task for bookkeeping (MB).
pub const DRIVER_MB_PER_TASK: f64 = 0.35;

/// Driver memory needed per stage for DAG/lineage state (MB).
pub const DRIVER_MB_PER_STAGE: f64 = 6.0;

/// Fraction of driver heap usable before the driver OOMs.
pub const DRIVER_USABLE_FRAC: f64 = 0.75;

/// Cached-partition recomputation cost factor: recomputing an evicted
/// MEMORY_ONLY partition costs this multiple of reading it from disk
/// (lineage re-execution re-runs upstream CPU work).
pub const RECOMPUTE_FACTOR: f64 = 3.0;

/// Reading a memory-cached partition costs this fraction of reading the
/// same bytes from local disk (memory bandwidth >> disk).
pub const MEM_READ_FACTOR: f64 = 0.04;

/// Probability scale for non-local task placement when executors cover
/// few nodes relative to data spread.
pub const REMOTE_READ_NET_FACTOR: f64 = 1.0;

/// Straggler model: probability a task is a straggler.
pub const STRAGGLER_PROB: f64 = 0.02;

/// Straggler slowdown multiplier range (uniform in [lo, hi]).
pub const STRAGGLER_SLOWDOWN: (f64, f64) = (2.0, 6.0);

/// Overhead of running a speculative copy (extra slot-seconds counted
/// toward contention, as a fraction of the original duration).
pub const SPECULATION_COPY_COST: f64 = 0.35;

/// Shuffle fetch round-trip latency per wave (seconds).
pub const FETCH_WAVE_LATENCY_S: f64 = 0.05;

/// Small-buffer shuffle write penalty coefficient (per halving of the
/// buffer below the 256 KiB knee).
pub const BUFFER_FLUSH_PENALTY: f64 = 0.10;

/// Sort/merge CPU cost per MB shuffled when the bypass-merge path is
/// NOT taken (seconds per MB).
pub const SORT_CPU_S_PER_MB: f64 = 0.0035;

/// Per-partition file overhead on the bypass path (seconds per reduce
/// partition per map task, amortized).
pub const BYPASS_FILE_OVERHEAD_S: f64 = 0.00002;

/// Network timeout below which bursty interference causes fetch
/// failures (seconds).
pub const FRAGILE_TIMEOUT_S: f64 = 60.0;

/// Probability a fetch wave fails when the timeout is fragile and
/// interference is active.
pub const FRAGILE_FETCH_FAIL_PROB: f64 = 0.25;

/// FAIR scheduler bookkeeping overhead multiplier on task overhead.
pub const FAIR_SCHED_OVERHEAD: f64 = 1.15;

/// Deserialized Java objects occupy this multiple of their raw on-disk
/// bytes when cached MEMORY_ONLY (object headers, pointers, boxing).
pub const CACHE_OBJ_FACTOR: f64 = 2.2;

/// Dynamic allocation executor spin-up penalty per stage (seconds) and
/// its idle-resource saving are modelled in the engine.
pub const DYN_ALLOC_SPINUP_S: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_tables_cover_all_codecs() {
        for c in ["lz4", "snappy", "zstd"] {
            assert!(codec_ratio(c) > 0.0 && codec_ratio(c) < 1.0);
            assert!(codec_cpu_s_per_mb(c) > 0.0);
        }
    }

    #[test]
    fn zstd_is_smaller_but_costlier_than_lz4() {
        assert!(codec_ratio("zstd") < codec_ratio("lz4"));
        assert!(codec_cpu_s_per_mb("zstd") > codec_cpu_s_per_mb("lz4"));
    }

    #[test]
    fn kryo_beats_java() {
        const { assert!(KRYO_SER_S_PER_MB < JAVA_SER_S_PER_MB) };
        const { assert!(JAVA_SIZE_FACTOR > 1.0) };
    }
}
