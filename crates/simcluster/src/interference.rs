//! Co-location interference: a two-state (calm/bursty) contention
//! process, temporally correlated across stages — the "transient
//! co-location with other resource-intensive workloads" of §II-A that
//! biases one-shot cloud-configuration measurements.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the interference process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Multiplier applied to task IO/network/CPU time while a burst is
    /// active (1.0 = no effect; 1.8 = heavy neighbours).
    pub burst_slowdown: f64,
    /// Probability of entering a burst at each stage boundary.
    pub p_enter: f64,
    /// Probability of leaving a burst at each stage boundary.
    pub p_exit: f64,
}

impl InterferenceModel {
    /// No interference at all (dedicated hardware).
    pub fn none() -> Self {
        InterferenceModel {
            burst_slowdown: 1.0,
            p_enter: 0.0,
            p_exit: 1.0,
        }
    }

    /// A lightly-shared cloud: occasional mild contention.
    pub fn light() -> Self {
        InterferenceModel {
            burst_slowdown: 1.15,
            p_enter: 0.08,
            p_exit: 0.5,
        }
    }

    /// A heavily-shared cloud: frequent strong contention bursts.
    pub fn heavy() -> Self {
        InterferenceModel {
            burst_slowdown: 1.8,
            p_enter: 0.25,
            p_exit: 0.3,
        }
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::light()
    }
}

/// The evolving state of the interference process during one run.
#[derive(Debug, Clone)]
pub struct InterferenceState {
    model: InterferenceModel,
    bursting: bool,
}

impl InterferenceState {
    /// Starts the process in the calm state.
    pub fn new(model: InterferenceModel) -> Self {
        InterferenceState {
            model,
            bursting: false,
        }
    }

    /// Advances the state machine one stage boundary and returns the
    /// contention multiplier for the next stage.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.bursting {
            if rng.gen::<f64>() < self.model.p_exit {
                self.bursting = false;
            }
        } else if rng.gen::<f64>() < self.model.p_enter {
            self.bursting = true;
        }
        if self.bursting {
            // Jitter the burst strength a little so bursts differ.
            let jitter = 0.9 + 0.2 * rng.gen::<f64>();
            1.0 + (self.model.burst_slowdown - 1.0) * jitter
        } else {
            1.0
        }
    }

    /// Whether a burst is currently active.
    pub fn is_bursting(&self) -> bool {
        self.bursting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_bursts() {
        let mut st = InterferenceState::new(InterferenceModel::none());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(st.step(&mut rng), 1.0);
        }
    }

    #[test]
    fn heavy_bursts_often_and_slows_down() {
        let mut st = InterferenceState::new(InterferenceModel::heavy());
        let mut rng = StdRng::seed_from_u64(2);
        let factors: Vec<f64> = (0..2000).map(|_| st.step(&mut rng)).collect();
        let bursty = factors.iter().filter(|&&f| f > 1.0).count();
        assert!(bursty > 400, "expected frequent bursts, got {bursty}/2000");
        assert!(factors.iter().all(|&f| (1.0..=2.0).contains(&f)));
    }

    #[test]
    fn bursts_are_temporally_correlated() {
        // With p_exit = 0.3 a burst should persist ~3.3 stages on average;
        // count transitions to verify correlation (not i.i.d.).
        let mut st = InterferenceState::new(InterferenceModel::heavy());
        let mut rng = StdRng::seed_from_u64(3);
        let states: Vec<bool> = (0..5000)
            .map(|_| {
                st.step(&mut rng);
                st.is_bursting()
            })
            .collect();
        let transitions = states.windows(2).filter(|w| w[0] != w[1]).count();
        let bursting = states.iter().filter(|&&b| b).count();
        // i.i.d. with the same marginal would transition ~2·p·(1-p)·n times.
        let p = bursting as f64 / states.len() as f64;
        let iid_transitions = 2.0 * p * (1.0 - p) * states.len() as f64;
        assert!(
            (transitions as f64) < 0.8 * iid_transitions,
            "transitions {transitions} vs iid {iid_transitions:.0}"
        );
    }
}
