//! Deriving a concrete executor/runtime layout from a Spark
//! configuration — including the crash semantics of infeasible layouts
//! (the "plausible but wrong" configurations behind the paper's 12×/89×
//! misconfiguration numbers).

use confspace::spark::names as sp;
use confspace::Configuration;
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::constants;
use crate::error::FailureKind;

/// The resolved execution environment for one job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparkEnv {
    /// The cluster the job runs on.
    pub cluster: ClusterSpec,
    /// Executors actually launched (possibly fewer than requested).
    pub executors: u32,
    /// Executors per node (ceil distribution).
    pub executors_per_node: u32,
    /// Task slots per executor.
    pub cores_per_executor: u32,
    /// Executor heap in MB.
    pub executor_mem_mb: f64,
    /// Driver heap in MB.
    pub driver_mem_mb: f64,
    /// Unified memory region per executor (MB): heap × memory.fraction.
    pub unified_mem_mb: f64,
    /// Storage sub-region per executor (MB), immune to eviction.
    pub storage_mem_mb: f64,
    /// The raw configuration (shuffle/serializer/… knobs read on demand).
    pub config: Configuration,
}

impl SparkEnv {
    /// Resolves a Spark configuration against a cluster.
    ///
    /// Mirrors YARN-style allocation: the requested executor count is
    /// capped by what fits (memory *and* cores per node); a layout where
    /// even a single executor cannot fit on a node is a launch failure —
    /// the crash mode an end-user debugging a "plausible but
    /// under-provisioned" setup hits (§IV).
    ///
    /// # Errors
    ///
    /// Returns [`FailureKind::LaunchFailure`] when no executor fits.
    pub fn resolve(cluster: &ClusterSpec, config: &Configuration) -> Result<Self, FailureKind> {
        let requested = config.int(sp::EXECUTOR_INSTANCES).max(1) as u32;
        let cores = config.int(sp::EXECUTOR_CORES).max(1) as u32;
        let exec_mem = config.int(sp::EXECUTOR_MEMORY_MB).max(256) as f64;
        let driver_mem = config.int(sp::DRIVER_MEMORY_MB).max(256) as f64;

        let node_mem = cluster.instance.mem_mb as f64;
        let node_cores = cluster.instance.vcpus;

        // Container footprint = heap + JVM overhead.
        let container_mb = exec_mem * (1.0 + constants::EXECUTOR_MEM_OVERHEAD);
        if container_mb > node_mem {
            return Err(FailureKind::LaunchFailure {
                reason: format!(
                    "executor container ({container_mb:.0} MB) exceeds node memory ({node_mem:.0} MB)"
                ),
            });
        }
        // YARN's DefaultResourceCalculator allocates containers by
        // memory only: vcores are *not* enforced, so requesting more
        // slots than physical vCPUs launches fine and runs with CPU
        // contention — one of the classic "plausible but slow" traps.
        let _ = node_cores;
        let by_mem = (node_mem / container_mb).floor() as u32;
        let fit_per_node = by_mem;
        if fit_per_node == 0 {
            return Err(FailureKind::LaunchFailure {
                reason: "no executor fits on any node".to_owned(),
            });
        }

        let max_executors = fit_per_node * cluster.nodes;
        let executors = requested.min(max_executors);
        let executors_per_node = executors.div_ceil(cluster.nodes);

        let mem_fraction = config.float(sp::MEMORY_FRACTION);
        let storage_fraction = config.float(sp::MEMORY_STORAGE_FRACTION);
        let unified = exec_mem * mem_fraction;

        Ok(SparkEnv {
            cluster: cluster.clone(),
            executors,
            executors_per_node,
            cores_per_executor: cores,
            executor_mem_mb: exec_mem,
            driver_mem_mb: driver_mem,
            unified_mem_mb: unified,
            storage_mem_mb: unified * storage_fraction,
            config: config.clone(),
        })
    }

    /// Total task slots across the cluster.
    pub fn total_slots(&self) -> u32 {
        self.executors * self.cores_per_executor
    }

    /// Aggregate storage memory (MB) available for cached RDDs.
    pub fn total_storage_mem_mb(&self) -> f64 {
        self.storage_mem_mb * f64::from(self.executors)
    }

    /// Execution memory available to one concurrently-running task (MB).
    ///
    /// Spark's unified model lets execution borrow from storage down to
    /// the storage-fraction floor when nothing is cached; we approximate
    /// with the execution share plus half the unprotected storage share.
    pub fn exec_mem_per_task_mb(&self, storage_in_use_frac: f64) -> f64 {
        let storage_frac = self.config.float(sp::MEMORY_STORAGE_FRACTION);
        let exec_share = self.unified_mem_mb * (1.0 - storage_frac);
        let borrowable =
            self.unified_mem_mb * storage_frac * (1.0 - storage_in_use_frac.clamp(0.0, 1.0));
        (exec_share + borrowable) / f64::from(self.cores_per_executor)
    }

    /// Effective CPU contention multiplier: >1 when executor slots
    /// oversubscribe the node's vCPUs.
    pub fn cpu_contention(&self) -> f64 {
        let slots_per_node = f64::from(self.executors_per_node * self.cores_per_executor);
        let vcpus = f64::from(self.cluster.instance.vcpus);
        (slots_per_node / vcpus).max(1.0)
    }

    /// Concurrently-running tasks per node when all slots are busy.
    pub fn busy_tasks_per_node(&self) -> f64 {
        f64::from(self.executors_per_node * self.cores_per_executor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::spark::spark_space;

    fn testbed() -> ClusterSpec {
        ClusterSpec::table1_testbed()
    }

    fn cfg() -> Configuration {
        spark_space().default_configuration()
    }

    #[test]
    fn default_layout_resolves() {
        let env = SparkEnv::resolve(&testbed(), &cfg()).unwrap();
        assert_eq!(env.executors, 2);
        assert_eq!(env.total_slots(), 2);
        assert!(env.unified_mem_mb > 0.0);
    }

    #[test]
    fn oversized_executor_memory_fails_launch() {
        let c = cfg().with(sp::EXECUTOR_MEMORY_MB, 32768i64); // > 64GB node after overhead? 32768*1.1=36GB < 64GB ok
        assert!(SparkEnv::resolve(&testbed(), &c).is_ok());
        // Shrink the node instead: m5.large has 8 GB.
        let small = ClusterSpec::new(crate::catalog::lookup("m5", "large").unwrap(), 4);
        let err = SparkEnv::resolve(&small, &c).unwrap_err();
        assert!(matches!(err, FailureKind::LaunchFailure { .. }));
    }

    #[test]
    fn oversized_cores_launch_with_contention() {
        // YARN does not enforce vcores: 8 cores on a 2-vCPU node
        // launches but runs 4x oversubscribed.
        let small = ClusterSpec::new(crate::catalog::lookup("m5", "large").unwrap(), 4);
        let c = cfg().with(sp::EXECUTOR_CORES, 8i64);
        let env = SparkEnv::resolve(&small, &c).unwrap();
        assert!(env.cpu_contention() >= 4.0);
    }

    #[test]
    fn executor_count_is_capped_by_node_memory() {
        let c = cfg()
            .with(sp::EXECUTOR_INSTANCES, 48i64)
            .with(sp::EXECUTOR_CORES, 4i64)
            .with(sp::EXECUTOR_MEMORY_MB, 8192i64);
        let env = SparkEnv::resolve(&testbed(), &c).unwrap();
        // h1.4xlarge: 64G/(8G*1.1) = 7 executors fit per node.
        assert_eq!(env.executors, 28);
        assert_eq!(env.executors_per_node, 7);
        assert_eq!(env.total_slots(), 112);
    }

    #[test]
    fn contention_kicks_in_when_oversubscribed() {
        // 7 executors/node by memory × 4 cores = 28 slots on 16 vCPUs.
        let c = cfg()
            .with(sp::EXECUTOR_INSTANCES, 28i64)
            .with(sp::EXECUTOR_CORES, 4i64)
            .with(sp::EXECUTOR_MEMORY_MB, 7168i64);
        let env = SparkEnv::resolve(&testbed(), &c).unwrap();
        assert!(env.cpu_contention() > 1.0);
    }

    #[test]
    fn exec_mem_per_task_shrinks_with_cached_data() {
        let env = SparkEnv::resolve(&testbed(), &cfg()).unwrap();
        let free = env.exec_mem_per_task_mb(0.0);
        let full = env.exec_mem_per_task_mb(1.0);
        assert!(free > full);
        assert!(full > 0.0);
    }

    #[test]
    fn storage_memory_scales_with_executors() {
        let c = cfg().with(sp::EXECUTOR_INSTANCES, 8i64);
        let env = SparkEnv::resolve(&testbed(), &c).unwrap();
        assert!((env.total_storage_mem_mb() - env.storage_mem_mb * 8.0).abs() < 1e-9);
    }
}
