//! The discrete-event execution engine.
//!
//! Simulates one job run: stages execute in dependency order; within a
//! stage, tasks are list-scheduled onto executor slots (a classic
//! earliest-free-slot event simulation). Each task's duration is built
//! from first-principles components — CPU, disk IO, shuffle fetch,
//! (de)serialization/(de)compression, GC, spill — each shaped by the
//! Spark configuration and the cluster's resources, so that the
//! configuration→runtime response surface has the structure real tuning
//! systems face: multimodal, constrained, input-size dependent and
//! noisy, with cliff-edge failure regions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::Rng;

use confspace::spark::names as sp;

use crate::constants as k;
use crate::dag::{JobSpec, Partitioning, StageSpec};
use crate::error::FailureKind;
use crate::interference::{InterferenceModel, InterferenceState};
use crate::metrics::{ExecMetrics, SimResult, StageMetrics};
use crate::sparkenv::SparkEnv;

/// Time unit used inside the event loop (microseconds).
type Micros = u64;

fn to_micros(s: f64) -> Micros {
    (s.max(0.0) * 1e6) as Micros
}

fn to_secs(us: Micros) -> f64 {
    us as f64 / 1e6
}

/// What a cached RDD looks like after a caching stage completes.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    /// Fraction of partitions resident in storage memory.
    mem_frac: f64,
    /// Fraction on local disk (MEMORY_AND_DISK overflow or DISK_ONLY).
    disk_frac: f64,
    /// Remaining fraction must be recomputed from lineage.
    lost_frac: f64,
}

/// The simulator: interference model + the run entry point.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    /// Co-location interference applied to this run.
    pub interference: InterferenceModel,
}

impl Simulator {
    /// A simulator on dedicated (interference-free) hardware.
    pub fn dedicated() -> Self {
        Simulator {
            interference: InterferenceModel::none(),
        }
    }

    /// A simulator with the given interference model.
    pub fn with_interference(interference: InterferenceModel) -> Self {
        Simulator { interference }
    }

    /// Runs `job` under `env`, consuming randomness from `rng`.
    ///
    /// The same `(env, job, rng seed)` triple always produces the same
    /// result.
    ///
    /// # Errors
    ///
    /// Returns a [`FailureKind`] when the run crashes (driver OOM,
    /// un-spillable executor OOM loops, repeated shuffle-fetch
    /// timeouts). Launch failures are returned by
    /// [`SparkEnv::resolve`], before this method is reached.
    ///
    /// # Panics
    ///
    /// Panics when the job's DAG is malformed (see
    /// [`JobSpec::validate`]); job construction is a programming step,
    /// not a tunable input.
    pub fn run<R: Rng + ?Sized>(
        &self,
        env: &SparkEnv,
        job: &JobSpec,
        rng: &mut R,
    ) -> Result<SimResult, FailureKind> {
        let _span = obs::span("sim.run").with("job", job.name.as_str());
        let reg = obs::registry();
        let result = reg
            .histogram("sim.step_s")
            .time(|| self.run_inner(env, job, rng));
        match &result {
            Ok(r) => {
                reg.counter("sim.runs").inc();
                reg.counter("sim.tasks")
                    .add(u64::from(r.metrics.total_tasks));
                if r.metrics.oom_retries > 0 {
                    reg.counter("sim.oom_retries")
                        .add(u64::from(r.metrics.oom_retries));
                }
                reg.histogram("sim.sim_runtime_s").record_secs(r.runtime_s);
                reg.gauge("sim.cpu_frac").set(r.metrics.cpu_frac());
                reg.gauge("sim.io_frac").set(r.metrics.io_frac());
                reg.gauge("sim.net_frac").set(r.metrics.net_frac());
                reg.gauge("sim.gc_frac").set(r.metrics.gc_frac());
            }
            Err(kind) => {
                reg.counter("sim.failures").inc();
                obs::instant(
                    "sim.failure",
                    obs::fields![("job", job.name.as_str()), ("kind", format!("{kind:?}"))],
                );
            }
        }
        result
    }

    fn run_inner<R: Rng + ?Sized>(
        &self,
        env: &SparkEnv,
        job: &JobSpec,
        rng: &mut R,
    ) -> Result<SimResult, FailureKind> {
        job.validate().expect("job DAG must be well-formed");

        let cfg = &env.config;
        let inst = &env.cluster.instance;
        let nodes = f64::from(env.cluster.nodes);

        // ---- Driver feasibility -------------------------------------
        let planned_tasks: f64 = job
            .stages
            .iter()
            .map(|s| self.task_count(env, s) as f64)
            .sum();
        let driver_need = planned_tasks * k::DRIVER_MB_PER_TASK
            + job.stages.len() as f64 * k::DRIVER_MB_PER_STAGE;
        if driver_need > env.driver_mem_mb * k::DRIVER_USABLE_FRAC {
            return Err(FailureKind::DriverOom);
        }

        // ---- Config-derived factors ---------------------------------
        let serializer = cfg.str(sp::SERIALIZER);
        let (ser_s_per_mb, ser_size) = if serializer == "kryo" {
            let buf = cfg.int(sp::KRYO_BUFFER_MAX_MB) as f64;
            // Tiny kryo buffers force chunked serialization.
            let pen = if buf < 16.0 {
                1.0 + 0.15 * (16.0 - buf) / 16.0
            } else {
                1.0
            };
            (k::KRYO_SER_S_PER_MB * pen, 1.0)
        } else {
            (k::JAVA_SER_S_PER_MB, k::JAVA_SIZE_FACTOR)
        };
        let codec = cfg.str(sp::IO_COMPRESSION_CODEC);
        let codec_ratio = k::codec_ratio(codec);
        let codec_cpu = k::codec_cpu_s_per_mb(codec);
        let shuffle_compress = cfg.bool(sp::SHUFFLE_COMPRESS);
        let spill_compress = cfg.bool(sp::SHUFFLE_SPILL_COMPRESS);
        let rdd_compress = cfg.bool(sp::RDD_COMPRESS);
        let storage_level = cfg.str(sp::STORAGE_LEVEL).to_owned();
        let buffer_kb = cfg.int(sp::SHUFFLE_FILE_BUFFER_KB) as f64;
        let buffer_penalty = 1.0 + k::BUFFER_FLUSH_PENALTY * ((256.0 / buffer_kb).log2()).max(0.0);
        let max_in_flight = cfg.int(sp::REDUCER_MAX_SIZE_IN_FLIGHT_MB) as f64;
        let bypass_threshold = cfg.int(sp::SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD);
        let reduce_parallelism = cfg.int(sp::DEFAULT_PARALLELISM).max(1);
        let locality_wait_s = cfg.int(sp::LOCALITY_WAIT_MS) as f64 / 1000.0;
        let speculation = cfg.bool(sp::SPECULATION);
        let spec_mult = cfg.float(sp::SPECULATION_MULTIPLIER);
        let net_timeout_s = cfg.int(sp::NETWORK_TIMEOUT_S) as f64;
        let dyn_alloc = cfg.bool(sp::DYNAMIC_ALLOCATION);
        let task_overhead = if cfg.str(sp::SCHEDULER_MODE) == "FAIR" {
            k::TASK_OVERHEAD_S * k::FAIR_SCHED_OVERHEAD
        } else {
            k::TASK_OVERHEAD_S
        };

        // ---- Run stages in DAG order --------------------------------
        let mut interference = InterferenceState::new(self.interference);
        let mut stage_end: Vec<Micros> = Vec::with_capacity(job.stages.len());
        let mut cache: Vec<Option<CacheEntry>> = vec![None; job.stages.len()];
        let mut storage_used_mb = 0.0f64;
        let mut peak_storage_frac = 0.0f64;
        let mut stage_metrics: Vec<StageMetrics> = Vec::with_capacity(job.stages.len());
        let mut total_tasks: u32 = 0;
        let mut total_spill = 0.0f64;
        let mut total_oom: u32 = 0;

        let storage_total = env.total_storage_mem_mb().max(1.0);

        for (i, stage) in job.stages.iter().enumerate() {
            let start: Micros = stage.deps.iter().map(|&d| stage_end[d]).max().unwrap_or(0);

            let contention = interference.step(rng);
            let bursting = interference.is_bursting();

            let ntasks = self.task_count(env, stage).max(1);

            // Dynamic allocation: idle executors are released for small
            // stages, easing per-node contention, at a spin-up cost.
            let (executors, spinup) = if dyn_alloc {
                let needed = (ntasks as u32).div_ceil(env.cores_per_executor).max(1);
                (needed.min(env.executors), k::DYN_ALLOC_SPINUP_S)
            } else {
                (env.executors, 0.0)
            };
            let slots = (executors * env.cores_per_executor).max(1) as usize;
            let execs_per_node = (f64::from(executors) / nodes).ceil().max(1.0);
            let conc_per_node = (execs_per_node * f64::from(env.cores_per_executor))
                .min((ntasks as f64 / nodes).ceil().max(1.0));

            // Bandwidth shares, degraded by co-location bursts.
            let disk_bw = (inst.disk_mbps / conc_per_node / contention).max(1.0);
            let net_bw = (inst.net_mbps / conc_per_node / contention).max(1.0);
            let cpu_speed = inst.cpu_speed / env.cpu_contention() / contention.sqrt();

            // Locality: executors covering few nodes leave data remote.
            let covered = (f64::from(executors)).min(nodes);
            let p_remote_base = 1.0 - covered / nodes;
            let wait_effect = 1.0 - (-locality_wait_s / 3.0).exp();
            let p_remote = p_remote_base * (1.0 - wait_effect);
            // Waiting for a local slot only costs time when data would
            // otherwise be remote, and a local slot usually frees well
            // before the full wait elapses.
            let wait_delay = if ntasks as u32 > slots as u32 {
                p_remote_base * wait_effect * locality_wait_s.min(1.0) * 0.1
            } else {
                0.0
            };

            // Memory budget per concurrent task.
            let storage_in_use = (storage_used_mb / storage_total).clamp(0.0, 1.0);
            let avail_mb = env.exec_mem_per_task_mb(storage_in_use).max(8.0);

            // Cached-read servicing plan.
            let cached_plan = stage.cached_read.map(|cr| {
                let entry = cache[cr.source].unwrap_or(CacheEntry {
                    mem_frac: 0.0,
                    disk_frac: 0.0,
                    lost_frac: 1.0,
                });
                (cr.mb, entry)
            });

            // ---- Per-task durations ---------------------------------
            // Skewed task weights, normalized to sum = ntasks.
            let mut weights: Vec<f64> = (0..ntasks)
                .map(|_| {
                    if stage.skew <= 0.0 {
                        1.0
                    } else {
                        let z: f64 = -(1.0 - rng.gen::<f64>()).ln(); // Exp(1)
                        (1.0 - stage.skew) + stage.skew * z
                    }
                })
                .collect();
            let wsum: f64 = weights.iter().sum();
            for w in weights.iter_mut() {
                *w *= ntasks as f64 / wsum.max(1e-12);
            }

            let input_pt = stage.input_mb / ntasks as f64;
            let sread_pt = stage.shuffle_read_mb / ntasks as f64;
            let swrite_pt = stage.shuffle_write_mb / ntasks as f64;
            let out_pt = stage.output_mb / ntasks as f64;
            let cread_pt = cached_plan.map_or(0.0, |(mb, _)| mb / ntasks as f64);

            let mut sm = StageMetrics {
                name: stage.name.clone(),
                ..Default::default()
            };

            let mut durations: Vec<f64> = Vec::with_capacity(ntasks);
            let mut median_est = 0.0f64;
            let mut oom_failed_stage = false;

            for (t, &w) in weights.iter().enumerate() {
                let data_pt = (input_pt + sread_pt + cread_pt) * w;

                // CPU work.
                let mut cpu = data_pt * stage.cpu_s_per_mb / cpu_speed;

                // Serialization / compression CPU.
                let mut ser = (sread_pt + swrite_pt) * w * ser_s_per_mb / cpu_speed;
                if shuffle_compress {
                    ser += (sread_pt + swrite_pt) * w * ser_size * codec_cpu / cpu_speed;
                }

                // Disk IO: input reads (possibly remote), output +
                // shuffle writes.
                let remote = rng.gen::<f64>() < p_remote;
                let read_bw = if remote {
                    disk_bw.min(net_bw) * k::REMOTE_READ_NET_FACTOR
                } else {
                    disk_bw
                };
                let mut io = input_pt * w / read_bw;
                let phys_write =
                    swrite_pt * w * ser_size * if shuffle_compress { codec_ratio } else { 1.0 };
                io += phys_write / disk_bw * buffer_penalty;
                io += out_pt * w / disk_bw;

                // Shuffle write path: sort vs bypass.
                if swrite_pt > 0.0 {
                    if reduce_parallelism <= bypass_threshold {
                        io += reduce_parallelism as f64 * k::BYPASS_FILE_OVERHEAD_S;
                    } else {
                        cpu += swrite_pt * w * k::SORT_CPU_S_PER_MB / cpu_speed
                            * (reduce_parallelism as f64).log2().max(1.0)
                            / 8.0;
                    }
                }

                // Shuffle fetch over the network.
                let phys_read =
                    sread_pt * w * ser_size * if shuffle_compress { codec_ratio } else { 1.0 };
                let mut net = phys_read / net_bw;
                if phys_read > 0.0 {
                    let waves = (phys_read / max_in_flight).ceil().max(1.0);
                    net += waves * k::FETCH_WAVE_LATENCY_S;
                }

                // Cached reads.
                if let Some((_, entry)) = cached_plan {
                    let bytes = cread_pt * w;
                    let mem_bytes = bytes * entry.mem_frac;
                    let disk_bytes = bytes * entry.disk_frac;
                    let lost_bytes = bytes * entry.lost_frac;
                    io += mem_bytes * k::MEM_READ_FACTOR / disk_bw;
                    let disk_phys = if rdd_compress {
                        ser += disk_bytes * codec_cpu / cpu_speed;
                        disk_bytes * codec_ratio
                    } else {
                        disk_bytes
                    };
                    io += disk_phys / disk_bw * ser_size;
                    ser += disk_bytes * ser_s_per_mb / cpu_speed;
                    // Lost partitions: recompute from lineage.
                    io += lost_bytes * k::RECOMPUTE_FACTOR / disk_bw;
                    cpu += lost_bytes * stage.cpu_s_per_mb * k::RECOMPUTE_FACTOR / cpu_speed;
                }

                // Memory pressure: spill or OOM.
                let ws = data_pt * stage.mem_expansion;
                let mut retries = 0u32;
                if ws > avail_mb * k::OOM_WORKING_SET_FACTOR {
                    retries = k::MAX_TASK_FAILURES;
                    oom_failed_stage = true;
                } else if ws > avail_mb {
                    let spill = ws - avail_mb;
                    let phys_spill = if spill_compress {
                        ser += spill * codec_cpu / cpu_speed;
                        spill * codec_ratio
                    } else {
                        spill
                    };
                    io += phys_spill * k::SPILL_RW_FACTOR / disk_bw;
                    sm.spill_mb += spill;
                }

                // GC pressure grows with working-set-to-heap ratio.
                let pressure = (ws / avail_mb).min(1.0);
                let gc_mult = if serializer == "java" { 1.25 } else { 1.0 };
                let gc = k::GC_COEFF * pressure * pressure * (cpu + ser) * gc_mult;

                let mut dur = cpu + ser + io + net + gc + task_overhead + wait_delay;

                // Stragglers and speculation.
                if rng.gen::<f64>() < k::STRAGGLER_PROB {
                    let (lo, hi) = k::STRAGGLER_SLOWDOWN;
                    let slow = lo + (hi - lo) * rng.gen::<f64>();
                    let straggled = dur * slow;
                    if speculation && t > 0 && median_est > 0.0 {
                        let cap = median_est * spec_mult + median_est;
                        dur = straggled.min(cap.max(dur)) + dur * k::SPECULATION_COPY_COST;
                    } else {
                        dur = straggled;
                    }
                }

                // OOM retries re-run the task.
                if retries > 0 {
                    dur *= k::RETRY_TIME_FACTOR.powi(retries as i32);
                    sm.oom_retries += retries;
                }

                // Task-level noise.
                let noise = lognormal(rng, k::TASK_NOISE_SIGMA);
                dur *= noise;

                // Running median estimate for speculation capping.
                median_est = if t == 0 {
                    dur
                } else {
                    0.9 * median_est + 0.1 * dur
                };

                sm.cpu_s += cpu;
                sm.io_s += io;
                sm.net_s += net;
                sm.gc_s += gc;
                sm.ser_s += ser;
                durations.push(dur);
            }

            if oom_failed_stage {
                return Err(FailureKind::ExecutorOomLoop {
                    stage: stage.name.clone(),
                });
            }

            // Fragile network timeouts under interference bursts.
            let mut fetch_penalty = 1.0;
            if stage.shuffle_read_mb > 0.0
                && net_timeout_s < k::FRAGILE_TIMEOUT_S
                && bursting
                && rng.gen::<f64>() < k::FRAGILE_FETCH_FAIL_PROB
            {
                fetch_penalty = 2.0;
                if rng.gen::<f64>() < 0.3 * k::FRAGILE_FETCH_FAIL_PROB {
                    return Err(FailureKind::FetchTimeout {
                        stage: stage.name.clone(),
                    });
                }
            }

            // ---- List-schedule tasks onto slots ----------------------
            let duration_s = schedule(&durations, slots);
            let stage_noise = lognormal(rng, k::STAGE_NOISE_SIGMA);
            let wall = (duration_s * fetch_penalty + k::STAGE_OVERHEAD_S + spinup) * stage_noise;

            sm.tasks = ntasks as u32;
            sm.duration_s = wall;
            total_tasks += ntasks as u32;
            total_spill += sm.spill_mb;
            total_oom += sm.oom_retries;

            // ---- Cache this stage's output ---------------------------
            if stage.cache_output {
                let entry = self.cache_insert(
                    &storage_level,
                    stage,
                    rdd_compress,
                    codec_ratio,
                    storage_total,
                    &mut storage_used_mb,
                );
                cache[i] = Some(entry);
                peak_storage_frac = peak_storage_frac.max(storage_used_mb / storage_total);
            }

            if let Some((_, entry)) = cached_plan {
                sm.cache_hit_frac = entry.mem_frac;
            }

            stage_metrics.push(sm);
            stage_end.push(start + to_micros(wall));
        }

        let runtime_s = to_secs(stage_end.iter().copied().max().unwrap_or(0)) + k::JOB_OVERHEAD_S;
        let cost_usd = env.cluster.cost_for(runtime_s);

        Ok(SimResult {
            runtime_s,
            cost_usd,
            metrics: ExecMetrics {
                runtime_s,
                stages: stage_metrics,
                total_tasks,
                input_mb: job.total_input_mb(),
                shuffle_mb: job.total_shuffle_mb(),
                spill_mb: total_spill,
                oom_retries: total_oom,
                peak_storage_frac,
            },
        })
    }

    /// Number of tasks a stage runs under `env`'s configuration.
    pub fn task_count(&self, env: &SparkEnv, stage: &StageSpec) -> usize {
        match stage.partitioning {
            Partitioning::InputBlocks { block_mb } => {
                ((stage.input_mb / block_mb).ceil() as usize).max(1)
            }
            Partitioning::DefaultParallelism => {
                env.config.int(sp::DEFAULT_PARALLELISM).max(1) as usize
            }
            Partitioning::ShufflePartitions => {
                env.config.int(sp::SHUFFLE_PARTITIONS).max(1) as usize
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn cache_insert(
        &self,
        storage_level: &str,
        stage: &StageSpec,
        rdd_compress: bool,
        codec_ratio: f64,
        storage_total: f64,
        storage_used_mb: &mut f64,
    ) -> CacheEntry {
        let raw = stage.output_mb.max(stage.data_mb() * 0.5);
        match storage_level {
            "DISK_ONLY" => CacheEntry {
                mem_frac: 0.0,
                disk_frac: 1.0,
                lost_frac: 0.0,
            },
            level => {
                let mem_size = raw * k::CACHE_OBJ_FACTOR;
                let free = (storage_total - *storage_used_mb).max(0.0);
                let mem_frac = (free / mem_size).clamp(0.0, 1.0);
                *storage_used_mb += mem_size * mem_frac;
                let overflow = 1.0 - mem_frac;
                if level == "MEMORY_AND_DISK" {
                    let _ = rdd_compress && codec_ratio > 0.0; // disk bytes shrink; read path accounts for it
                    CacheEntry {
                        mem_frac,
                        disk_frac: overflow,
                        lost_frac: 0.0,
                    }
                } else {
                    // MEMORY_ONLY: evicted partitions are recomputed.
                    CacheEntry {
                        mem_frac,
                        disk_frac: 0.0,
                        lost_frac: overflow,
                    }
                }
            }
        }
    }
}

/// List-schedules task `durations` (seconds) onto `slots` identical
/// slots, returning the makespan in seconds. Earliest-free-slot
/// assignment — the event-driven core of the simulator.
fn schedule(durations: &[f64], slots: usize) -> f64 {
    let slots = slots.max(1);
    if durations.is_empty() {
        return 0.0;
    }
    let mut heap: BinaryHeap<Reverse<Micros>> = (0..slots).map(|_| Reverse(0)).collect();
    let mut makespan: Micros = 0;
    for &d in durations {
        let Reverse(free) = heap.pop().expect("heap is never empty");
        let end = free + to_micros(d);
        makespan = makespan.max(end);
        heap.push(Reverse(end));
    }
    to_secs(makespan)
}

/// Multiplicative lognormal noise with unit median.
fn lognormal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::dag::StageSpec;
    use confspace::spark::spark_space;
    use confspace::Configuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env(cfg: Configuration) -> SparkEnv {
        SparkEnv::resolve(&ClusterSpec::table1_testbed(), &cfg).unwrap()
    }

    fn decent_cfg() -> Configuration {
        spark_space()
            .default_configuration()
            .with(sp::EXECUTOR_INSTANCES, 8i64)
            .with(sp::EXECUTOR_CORES, 4i64)
            .with(sp::EXECUTOR_MEMORY_MB, 8192i64)
            .with(sp::DEFAULT_PARALLELISM, 64i64)
    }

    fn simple_job(input_mb: f64) -> JobSpec {
        JobSpec::new(
            "wc",
            vec![
                StageSpec::input("map", input_mb, 0.012).writes_shuffle(input_mb * 0.05),
                StageSpec::reduce("reduce", vec![0], input_mb * 0.05, 0.006)
                    .writes_output(input_mb * 0.01),
            ],
        )
    }

    #[test]
    fn schedule_is_makespan() {
        // 4 tasks of 1s on 2 slots -> 2s.
        assert!((schedule(&[1.0, 1.0, 1.0, 1.0], 2) - 2.0).abs() < 1e-6);
        // Long pole dominates.
        assert!((schedule(&[5.0, 1.0, 1.0], 4) - 5.0).abs() < 1e-6);
        assert_eq!(schedule(&[], 4), 0.0);
    }

    #[test]
    fn run_is_deterministic_under_seed() {
        let e = env(decent_cfg());
        let j = simple_job(4096.0);
        let sim = Simulator::dedicated();
        let a = sim.run(&e, &j, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = sim.run(&e, &j, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.runtime_s, b.runtime_s);
    }

    #[test]
    fn more_input_takes_longer() {
        let e = env(decent_cfg());
        let sim = Simulator::dedicated();
        let small = sim
            .run(&e, &simple_job(1024.0), &mut StdRng::seed_from_u64(1))
            .unwrap();
        let big = sim
            .run(&e, &simple_job(16384.0), &mut StdRng::seed_from_u64(1))
            .unwrap();
        assert!(big.runtime_s > small.runtime_s * 2.0);
    }

    #[test]
    fn more_slots_is_faster_for_parallel_work() {
        let sim = Simulator::dedicated();
        let j = simple_job(8192.0);
        let slow_cfg = decent_cfg()
            .with(sp::EXECUTOR_INSTANCES, 1i64)
            .with(sp::EXECUTOR_CORES, 1i64);
        let slow = sim
            .run(&env(slow_cfg), &j, &mut StdRng::seed_from_u64(2))
            .unwrap();
        let fast = sim
            .run(&env(decent_cfg()), &j, &mut StdRng::seed_from_u64(2))
            .unwrap();
        assert!(
            slow.runtime_s > fast.runtime_s * 3.0,
            "slow {} vs fast {}",
            slow.runtime_s,
            fast.runtime_s
        );
    }

    #[test]
    fn tiny_memory_with_huge_working_set_ooms() {
        let sim = Simulator::dedicated();
        let j = JobSpec::new(
            "sortish",
            vec![StageSpec::input("m", 2048.0, 0.01)
                .with_mem_expansion(4.0)
                .with_partitioning(Partitioning::DefaultParallelism)],
        );
        let cfg = decent_cfg()
            .with(sp::EXECUTOR_MEMORY_MB, 512i64)
            .with(sp::DEFAULT_PARALLELISM, 4i64)
            .with(sp::MEMORY_FRACTION, 0.3);
        let res = sim.run(&env(cfg), &j, &mut StdRng::seed_from_u64(3));
        assert!(
            matches!(res, Err(FailureKind::ExecutorOomLoop { .. })),
            "expected OOM, got {res:?}"
        );
    }

    #[test]
    fn moderate_pressure_spills_instead_of_oom() {
        let sim = Simulator::dedicated();
        let j = JobSpec::new(
            "sortish",
            vec![StageSpec::input("m", 2048.0, 0.01)
                .with_mem_expansion(2.0)
                .with_partitioning(Partitioning::DefaultParallelism)],
        );
        let cfg = decent_cfg()
            .with(sp::EXECUTOR_MEMORY_MB, 2048i64)
            .with(sp::DEFAULT_PARALLELISM, 8i64);
        let res = sim
            .run(&env(cfg), &j, &mut StdRng::seed_from_u64(4))
            .unwrap();
        assert!(res.metrics.spill_mb > 0.0);
    }

    #[test]
    fn driver_oom_with_huge_parallelism_small_driver() {
        let sim = Simulator::dedicated();
        let j = simple_job(1024.0);
        let cfg = decent_cfg()
            .with(sp::DEFAULT_PARALLELISM, 1024i64)
            .with(sp::DRIVER_MEMORY_MB, 512i64);
        // 1024 tasks * 0.35MB = 358MB < 512*0.75=384 -> survives; crank stages.
        let mut stages = vec![StageSpec::input("m", 1024.0, 0.01).writes_shuffle(50.0)];
        for i in 1..40 {
            stages.push(
                StageSpec::reduce(&format!("r{i}"), vec![i - 1], 50.0, 0.005).writes_shuffle(50.0),
            );
        }
        let big = JobSpec::new("deep", stages);
        let res = sim.run(&env(cfg), &big, &mut StdRng::seed_from_u64(5));
        assert!(matches!(res, Err(FailureKind::DriverOom)), "{res:?}");
        let _ = j;
    }

    #[test]
    fn compression_reduces_network_time_for_shuffle_heavy() {
        let sim = Simulator::dedicated();
        let j = JobSpec::new(
            "shuffleheavy",
            vec![
                StageSpec::input("m", 2048.0, 0.002).writes_shuffle(2048.0),
                StageSpec::reduce("r", vec![0], 2048.0, 0.002),
            ],
        );
        let on = decent_cfg().with(sp::SHUFFLE_COMPRESS, true);
        let off = decent_cfg().with(sp::SHUFFLE_COMPRESS, false);
        let ron = sim
            .run(&env(on), &j, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let roff = sim
            .run(&env(off), &j, &mut StdRng::seed_from_u64(6))
            .unwrap();
        let net_on: f64 = ron.metrics.stages.iter().map(|s| s.net_s).sum();
        let net_off: f64 = roff.metrics.stages.iter().map(|s| s.net_s).sum();
        assert!(net_on < net_off, "net {net_on} !< {net_off}");
    }

    #[test]
    fn kryo_beats_java_on_ser_time() {
        let sim = Simulator::dedicated();
        let j = JobSpec::new(
            "shuffleheavy",
            vec![
                StageSpec::input("m", 2048.0, 0.002).writes_shuffle(1024.0),
                StageSpec::reduce("r", vec![0], 1024.0, 0.002),
            ],
        );
        let kryo = decent_cfg().with(sp::SERIALIZER, "kryo");
        let java = decent_cfg().with(sp::SERIALIZER, "java");
        let rk = sim
            .run(&env(kryo), &j, &mut StdRng::seed_from_u64(8))
            .unwrap();
        let rj = sim
            .run(&env(java), &j, &mut StdRng::seed_from_u64(8))
            .unwrap();
        let ser_k: f64 = rk.metrics.stages.iter().map(|s| s.ser_s).sum();
        let ser_j: f64 = rj.metrics.stages.iter().map(|s| s.ser_s).sum();
        assert!(ser_k < ser_j);
    }

    #[test]
    fn cached_reads_hit_memory_when_it_fits() {
        let sim = Simulator::dedicated();
        let j = JobSpec::new(
            "iter",
            vec![
                StageSpec::input("load", 512.0, 0.01)
                    .cached()
                    .writes_output(512.0),
                StageSpec::reduce("iter-1", vec![0], 0.0, 0.01).reads_cached(0, 512.0),
            ],
        );
        let cfg = decent_cfg()
            .with(sp::EXECUTOR_MEMORY_MB, 16384i64)
            .with(sp::MEMORY_STORAGE_FRACTION, 0.6);
        let res = sim
            .run(&env(cfg), &j, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert!(
            res.metrics.stages[1].cache_hit_frac > 0.99,
            "hit {}",
            res.metrics.stages[1].cache_hit_frac
        );
    }

    #[test]
    fn cache_eviction_hurts_memory_only() {
        let sim = Simulator::dedicated();
        let big = 20000.0; // 20 GB cached >> storage memory
        let mk = |level: &str| {
            let j = JobSpec::new(
                "iter",
                vec![
                    StageSpec::input("load", big, 0.005)
                        .cached()
                        .writes_output(big),
                    StageSpec::reduce("iter-1", vec![0], 0.0, 0.005).reads_cached(0, big),
                ],
            );
            let cfg = decent_cfg()
                .with(sp::EXECUTOR_MEMORY_MB, 4096i64)
                .with(sp::STORAGE_LEVEL, level);
            sim.run(&env(cfg), &j, &mut StdRng::seed_from_u64(10))
                .unwrap()
        };
        let mem_only = mk("MEMORY_ONLY");
        let mem_disk = mk("MEMORY_AND_DISK");
        assert!(
            mem_only.runtime_s > mem_disk.runtime_s,
            "recompute ({}) should cost more than disk overflow ({})",
            mem_only.runtime_s,
            mem_disk.runtime_s
        );
    }

    #[test]
    fn interference_slows_runs_down() {
        let e = env(decent_cfg());
        let j = simple_job(8192.0);
        let calm = Simulator::dedicated();
        let noisy = Simulator::with_interference(crate::interference::InterferenceModel::heavy());
        let mut tot_calm = 0.0;
        let mut tot_noisy = 0.0;
        for s in 0..10u64 {
            tot_calm += calm
                .run(&e, &j, &mut StdRng::seed_from_u64(s))
                .unwrap()
                .runtime_s;
            tot_noisy += noisy
                .run(&e, &j, &mut StdRng::seed_from_u64(s))
                .map(|r| r.runtime_s)
                .unwrap_or(1e4);
        }
        assert!(tot_noisy > tot_calm);
    }

    #[test]
    fn cost_tracks_price_and_runtime() {
        let e = env(decent_cfg());
        let j = simple_job(2048.0);
        let r = Simulator::dedicated()
            .run(&e, &j, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let expected = e.cluster.cost_for(r.runtime_s);
        assert!((r.cost_usd - expected).abs() < 1e-12);
    }

    #[test]
    fn metrics_components_are_positive() {
        let e = env(decent_cfg());
        let j = simple_job(4096.0);
        let r = Simulator::dedicated()
            .run(&e, &j, &mut StdRng::seed_from_u64(12))
            .unwrap();
        assert_eq!(r.metrics.stages.len(), 2);
        assert!(r.metrics.cpu_frac() > 0.0);
        assert!(r.metrics.io_frac() > 0.0);
        assert!(r.metrics.total_tasks > 0);
    }
}
