//! Virtual cluster specifications.

use serde::{Deserialize, Serialize};

use confspace::cloud::names as cloud_names;
use confspace::Configuration;

use crate::catalog::{self, InstanceType};
use crate::error::SimError;

/// A provisioned virtual cluster: one instance type × a node count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// The node VM type.
    pub instance: InstanceType,
    /// Number of worker nodes.
    pub nodes: u32,
}

impl ClusterSpec {
    /// Creates a cluster of `nodes` × `instance`.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0`.
    pub fn new(instance: InstanceType, nodes: u32) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterSpec { instance, nodes }
    }

    /// Builds a cluster from a cloud-layer [`Configuration`] (the
    /// `cloud.*` parameters of [`confspace::cloud::cloud_space`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownInstance`] when the family/size pair is
    /// not in the catalog.
    pub fn from_config(cfg: &Configuration) -> Result<Self, SimError> {
        let family = cfg.str(cloud_names::INSTANCE_FAMILY);
        let size = cfg.str(cloud_names::INSTANCE_SIZE);
        let nodes = cfg.int(cloud_names::NODE_COUNT) as u32;
        let instance = catalog::lookup(family, size)
            .ok_or_else(|| SimError::UnknownInstance(format!("{family}.{size}")))?;
        Ok(ClusterSpec::new(instance, nodes.max(1)))
    }

    /// The paper's Table I testbed: 4 × h1.4xlarge.
    pub fn table1_testbed() -> Self {
        ClusterSpec::new(catalog::h1_4xlarge(), 4)
    }

    /// Total virtual CPUs across the cluster.
    pub fn total_vcpus(&self) -> u32 {
        self.instance.vcpus * self.nodes
    }

    /// Total memory in MiB across the cluster.
    pub fn total_mem_mb(&self) -> u64 {
        self.instance.mem_mb * u64::from(self.nodes)
    }

    /// Cluster price in USD per hour.
    pub fn price_per_hour(&self) -> f64 {
        self.instance.price_per_hour * f64::from(self.nodes)
    }

    /// Cost in USD of running the cluster for `seconds`.
    pub fn cost_for(&self, seconds: f64) -> f64 {
        self.price_per_hour() * seconds / 3600.0
    }
}

impl std::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x {}", self.nodes, self.instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confspace::cloud::cloud_space;

    #[test]
    fn testbed_totals() {
        let c = ClusterSpec::table1_testbed();
        assert_eq!(c.total_vcpus(), 64);
        assert_eq!(c.total_mem_mb(), 256 * 1024);
        assert!((c.price_per_hour() - 4.0 * 0.936).abs() < 1e-9);
    }

    #[test]
    fn from_config_uses_cloud_params() {
        let cfg = cloud_space().default_configuration();
        let c = ClusterSpec::from_config(&cfg).unwrap();
        assert_eq!(c, ClusterSpec::table1_testbed());
    }

    #[test]
    fn from_config_rejects_unknown_instance() {
        let cfg = confspace::Configuration::new()
            .with(confspace::cloud::names::INSTANCE_FAMILY, "z9")
            .with(confspace::cloud::names::INSTANCE_SIZE, "large")
            .with(confspace::cloud::names::NODE_COUNT, 2i64);
        assert!(ClusterSpec::from_config(&cfg).is_err());
    }

    #[test]
    fn cost_is_linear_in_time() {
        let c = ClusterSpec::table1_testbed();
        assert!((c.cost_for(3600.0) - c.price_per_hour()).abs() < 1e-9);
        assert!((c.cost_for(1800.0) - c.price_per_hour() / 2.0).abs() < 1e-9);
    }
}
