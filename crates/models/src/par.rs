//! Scoped-thread data parallelism for the model-fitting hot paths.
//!
//! The tuning service refits surrogates on every proposal, so the
//! fit/predict loops are provider-side overhead that scales with tenant
//! traffic (§IV). This module gives the model crates a tiny, dependency
//! -light fork/join layer over `crossbeam::thread::scope`:
//!
//! * [`par_map`] — order-preserving parallel map over a slice;
//! * [`par_chunks`] — order-preserving parallel flat-map over contiguous
//!   chunks (lets workers reuse per-chunk scratch buffers);
//! * [`num_threads`] — worker count from `available_parallelism`, with a
//!   `SEAMLESS_THREADS` environment override.
//!
//! Every function has a sequential fallback for tiny inputs or a single
//! worker, and both helpers take an explicit thread count variant
//! (`*_threads`) so equivalence tests can pin the fan-out. Callers are
//! responsible for keeping results deterministic: closures must be pure
//! functions of their input (seed-split RNGs, no shared mutable state),
//! and both helpers return results in input order regardless of the
//! thread count.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "SEAMLESS_THREADS";

/// The process-wide worker count: `SEAMLESS_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Resolved once and cached (the hot paths call this per fit).
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| threads_from(std::env::var(THREADS_ENV).ok().as_deref()))
}

/// Pure resolution logic behind [`num_threads`], separated for tests.
pub(crate) fn threads_from(env: Option<&str>) -> usize {
    if let Some(v) = env {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel map with the process-wide thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(items, num_threads(), f)
}

/// Parallel map with an explicit thread count. Results are returned in
/// input order; with `threads <= 1` (or fewer than two items) this is a
/// plain sequential map, and both paths call `f` on items in the same
/// order within each contiguous chunk.
pub fn par_map_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let per_chunk: Vec<Vec<R>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move |_| c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    })
    .expect("scope itself cannot fail");
    per_chunk.into_iter().flatten().collect()
}

/// Parallel flat-map over contiguous chunks, with the process-wide
/// thread count. `f` receives whole chunks (at least `min_chunk` items
/// each, except possibly the last) so it can amortize per-chunk scratch
/// allocations; the concatenated output preserves input order.
pub fn par_chunks<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    par_chunks_threads(items, num_threads(), min_chunk, f)
}

/// Parallel chunked flat-map with an explicit thread count. Inputs
/// smaller than two chunks (or `threads <= 1`) run sequentially as one
/// chunk.
pub fn par_chunks_threads<T, R, F>(items: &[T], threads: usize, min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let min_chunk = min_chunk.max(1);
    let threads = threads.max(1).min(items.len() / min_chunk);
    if threads <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(threads).max(min_chunk);
    let f = &f;
    let per_chunk: Vec<Vec<R>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move |_| f(c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_chunks worker panicked"))
            .collect()
    })
    .expect("scope itself cannot fail");
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map_threads(&items, threads, |x| x * x), expect);
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        assert_eq!(par_map_threads::<u32, u32, _>(&[], 8, |x| *x), vec![]);
        assert_eq!(par_map_threads(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn par_chunks_matches_flat_map() {
        let items: Vec<i64> = (0..131).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 16] {
            let got =
                par_chunks_threads(&items, threads, 10, |c| c.iter().map(|x| x * 3).collect());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn par_chunks_respects_min_chunk_sequentially() {
        // 8 items with min_chunk 100 => single sequential chunk.
        let seen = std::sync::atomic::AtomicUsize::new(0);
        let got = par_chunks_threads(&[1u8; 8][..], 8, 100, |c| {
            seen.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            c.to_vec()
        });
        assert_eq!(got.len(), 8);
        assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn env_override_parses() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 12 ")), 12);
        // Invalid values fall back to the machine's parallelism (>= 1).
        assert!(threads_from(Some("zero")) >= 1);
        assert!(threads_from(Some("0")) >= 1);
        assert!(threads_from(None) >= 1);
    }
}
