//! CART regression trees — the model family behind Wang et al.'s Spark
//! tuner (regression trees) and the building block of PARIS-style
//! random forests.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::stats::mean;

/// Hyperparameters for tree induction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    /// Number of candidate features per split (`None` = all —
    /// plain CART; `Some(m)` = random-subspace splits for forests).
    pub feature_subsample: Option<usize>,
    /// Maximum split thresholds evaluated per feature (quantile grid).
    pub max_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_leaf: 3,
            feature_subsample: None,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        dim: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    root: Node,
    dims: usize,
}

impl RegressionTree {
    /// Fits a tree on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        params: TreeParams,
        rng: &mut R,
    ) -> Self {
        assert!(!x.is_empty(), "tree needs at least one sample");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let idx: Vec<usize> = (0..x.len()).collect();
        let dims = x[0].len();
        let root = build(x, y, &idx, params, params.max_depth, rng);
        RegressionTree { root, dims }
    }

    /// Predicts the target at `q`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.dims, "query dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split {
                    dim,
                    threshold,
                    left,
                    right,
                } => {
                    node = if q[*dim] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Tree depth (leaves at depth 0 for a stump).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn build<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    params: TreeParams,
    depth_left: usize,
    rng: &mut R,
) -> Node {
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    let leaf_value = mean(&ys);
    if depth_left == 0 || idx.len() < 2 * params.min_leaf {
        return Node::Leaf(leaf_value);
    }
    let sse_before = sse(&ys, leaf_value);
    if sse_before <= 1e-12 {
        return Node::Leaf(leaf_value);
    }

    let dims = x[0].len();
    let mut features: Vec<usize> = (0..dims).collect();
    if let Some(m) = params.feature_subsample {
        features.shuffle(rng);
        features.truncate(m.clamp(1, dims));
    }

    let mut best: Option<(usize, f64, f64)> = None; // (dim, threshold, sse)
    for &dim in &features {
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][dim]).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let step = (vals.len() - 1).div_ceil(params.max_thresholds).max(1);
        for w in (0..vals.len() - 1).step_by(step) {
            let thr = 0.5 * (vals[w] + vals[w + 1]);
            let (mut ls, mut lc, mut rs, mut rc) = (0.0, 0usize, 0.0, 0usize);
            let (mut lss, mut rss) = (0.0, 0.0);
            for &i in idx {
                if x[i][dim] <= thr {
                    ls += y[i];
                    lss += y[i] * y[i];
                    lc += 1;
                } else {
                    rs += y[i];
                    rss += y[i] * y[i];
                    rc += 1;
                }
            }
            if lc < params.min_leaf || rc < params.min_leaf {
                continue;
            }
            let split_sse = (lss - ls * ls / lc as f64) + (rss - rs * rs / rc as f64);
            if best.as_ref().is_none_or(|b| split_sse < b.2) {
                best = Some((dim, thr, split_sse));
            }
        }
    }

    match best {
        Some((dim, thr, split_sse)) if split_sse < sse_before - 1e-12 => {
            let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| x[i][dim] <= thr);
            Node::Split {
                dim,
                threshold: thr,
                left: Box::new(build(x, y, &li, params, depth_left - 1, rng)),
                right: Box::new(build(x, y, &ri, params, depth_left - 1, rng)),
            }
        }
        _ => Node::Leaf(leaf_value),
    }
}

fn sse(ys: &[f64], m: f64) -> f64 {
    ys.iter().map(|y| (y - m) * (y - m)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 0 for x<0.5, 10 for x>=0.5
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] < 0.5 { 0.0 } else { 10.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(1);
        let t = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert!((t.predict(&[0.2]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[0.8]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(2);
        let t = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(t.depth() <= 1);
    }

    #[test]
    fn constant_target_yields_stump() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 10];
        let mut rng = StdRng::seed_from_u64(3);
        let t = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[99.0]), 3.0);
    }

    #[test]
    fn splits_on_the_informative_dimension() {
        // dim 0 is noise, dim 1 carries the signal.
        let mut rng = StdRng::seed_from_u64(4);
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 7) as f64 / 7.0, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| v[1] * 5.0).collect();
        let t = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert!((t.predict(&[0.3, 0.0]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[0.3, 1.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_leaf_is_respected() {
        let (x, y) = step_data();
        let mut rng = StdRng::seed_from_u64(5);
        let t = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                min_leaf: 25, // 40 samples can't split into two 25s
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert_eq!(t.depth(), 0);
    }
}
