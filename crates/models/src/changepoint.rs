//! Change-point detection over runtime streams — the machinery behind
//! "accurately defining the need for workload re-tuning" (§V-D).
//!
//! Three detectors are provided:
//!
//! * [`FixedThreshold`] — the naive fixed-percentage rule the paper
//!   criticizes ("likely to lead to re-tuning either too frequently or
//!   too late");
//! * [`PageHinkley`] — sequential drift detection on the running mean;
//! * [`Cusum`] — two-sided cumulative-sum detection.

/// A sequential detector over a stream of runtime observations.
pub trait ChangeDetector {
    /// Feeds one observation; returns `true` when a change is signalled.
    fn update(&mut self, value: f64) -> bool;

    /// Resets the detector (after re-tuning completes).
    fn reset(&mut self);

    /// The detector's display name.
    fn name(&self) -> &'static str;
}

/// Fixed percentage threshold over a frozen baseline: signals when a
/// value exceeds `baseline × (1 + pct)`. The baseline is the mean of
/// the first `warmup` observations — exactly the kind of rigid
/// heuristic §V-D warns about.
#[derive(Debug, Clone)]
pub struct FixedThreshold {
    pct: f64,
    warmup: usize,
    seen: usize,
    baseline_sum: f64,
    baseline: Option<f64>,
}

impl FixedThreshold {
    /// Creates the detector with relative threshold `pct` (e.g. 0.2 =
    /// +20%) and a `warmup`-sample baseline.
    pub fn new(pct: f64, warmup: usize) -> Self {
        FixedThreshold {
            pct,
            warmup: warmup.max(1),
            seen: 0,
            baseline_sum: 0.0,
            baseline: None,
        }
    }
}

impl ChangeDetector for FixedThreshold {
    fn update(&mut self, value: f64) -> bool {
        match self.baseline {
            None => {
                self.seen += 1;
                self.baseline_sum += value;
                if self.seen >= self.warmup {
                    self.baseline = Some(self.baseline_sum / self.seen as f64);
                }
                false
            }
            Some(b) => value > b * (1.0 + self.pct),
        }
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.baseline_sum = 0.0;
        self.baseline = None;
    }

    fn name(&self) -> &'static str {
        "fixed-threshold"
    }
}

/// Page–Hinkley test: signals when the cumulative deviation of the
/// stream above its running mean exceeds `lambda`, with slack `delta`.
///
/// # Example
///
/// ```
/// use models::{ChangeDetector, PageHinkley};
///
/// let mut detector = PageHinkley::new(1.0, 50.0);
/// for _ in 0..20 {
///     assert!(!detector.update(100.0)); // stationary: quiet
/// }
/// let fired = (0..20).any(|_| detector.update(140.0));
/// assert!(fired, "a sustained +40% shift must be detected");
/// ```
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    n: usize,
    mean: f64,
    cum: f64,
    cum_min: f64,
}

impl PageHinkley {
    /// Creates the detector. `delta` is the tolerated drift per sample
    /// (in target units), `lambda` the alarm threshold.
    pub fn new(delta: f64, lambda: f64) -> Self {
        PageHinkley {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            cum_min: 0.0,
        }
    }
}

impl ChangeDetector for PageHinkley {
    fn update(&mut self, value: f64) -> bool {
        self.n += 1;
        self.mean += (value - self.mean) / self.n as f64;
        self.cum += value - self.mean - self.delta;
        self.cum_min = self.cum_min.min(self.cum);
        self.cum - self.cum_min > self.lambda
    }

    fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.cum_min = 0.0;
    }

    fn name(&self) -> &'static str {
        "page-hinkley"
    }
}

/// Two-sided CUSUM with reference value `k` and decision interval `h`,
/// both expressed relative to a warmup-estimated baseline mean.
#[derive(Debug, Clone)]
pub struct Cusum {
    k: f64,
    h: f64,
    warmup: usize,
    seen: usize,
    baseline_sum: f64,
    baseline: Option<f64>,
    s_hi: f64,
    s_lo: f64,
}

impl Cusum {
    /// Creates the detector: `k` = slack per sample and `h` = alarm
    /// threshold, both as *fractions* of the baseline mean; `warmup`
    /// samples estimate the baseline.
    pub fn new(k: f64, h: f64, warmup: usize) -> Self {
        Cusum {
            k,
            h,
            warmup: warmup.max(1),
            seen: 0,
            baseline_sum: 0.0,
            baseline: None,
            s_hi: 0.0,
            s_lo: 0.0,
        }
    }
}

impl ChangeDetector for Cusum {
    fn update(&mut self, value: f64) -> bool {
        match self.baseline {
            None => {
                self.seen += 1;
                self.baseline_sum += value;
                if self.seen >= self.warmup {
                    self.baseline = Some(self.baseline_sum / self.seen as f64);
                }
                false
            }
            Some(b) => {
                let z = (value - b) / b.max(1e-12);
                self.s_hi = (self.s_hi + z - self.k).max(0.0);
                self.s_lo = (self.s_lo - z - self.k).max(0.0);
                self.s_hi > self.h || self.s_lo > self.h
            }
        }
    }

    fn reset(&mut self) {
        self.seen = 0;
        self.baseline_sum = 0.0;
        self.baseline = None;
        self.s_hi = 0.0;
        self.s_lo = 0.0;
    }

    fn name(&self) -> &'static str {
        "cusum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(d: &mut dyn ChangeDetector, values: &[f64]) -> Option<usize> {
        for (i, &v) in values.iter().enumerate() {
            if d.update(v) {
                return Some(i);
            }
        }
        None
    }

    fn shift_stream() -> Vec<f64> {
        let mut v = vec![100.0; 30];
        v.extend(vec![150.0; 30]);
        v
    }

    #[test]
    fn all_detectors_catch_a_big_shift() {
        let stream = shift_stream();
        let mut ft = FixedThreshold::new(0.2, 5);
        let mut ph = PageHinkley::new(1.0, 60.0);
        let mut cs = Cusum::new(0.05, 1.0, 5);
        assert!(feed(&mut ft, &stream).is_some());
        assert!(feed(&mut ph, &stream).is_some());
        assert!(feed(&mut cs, &stream).is_some());
    }

    #[test]
    fn detectors_stay_quiet_on_stationary_stream() {
        let stream = vec![
            100.0, 101.0, 99.0, 100.5, 99.5, 100.2, 99.8, 100.0, 100.1, 99.9,
        ];
        let mut ph = PageHinkley::new(1.0, 60.0);
        let mut cs = Cusum::new(0.05, 1.0, 3);
        assert_eq!(feed(&mut ph, &stream), None);
        assert_eq!(feed(&mut cs, &stream), None);
    }

    #[test]
    fn fixed_threshold_fires_on_single_spike_false_positive() {
        // The paper's §V-D complaint: a one-off spike triggers the
        // fixed rule even though nothing changed.
        let mut stream = vec![100.0; 10];
        stream.push(130.0); // transient noise spike
        stream.extend(vec![100.0; 10]);
        let mut ft = FixedThreshold::new(0.2, 5);
        let mut cs = Cusum::new(0.1, 1.5, 5);
        assert!(feed(&mut ft, &stream).is_some(), "fixed rule fires");
        assert_eq!(feed(&mut cs, &stream), None, "cusum absorbs the spike");
    }

    #[test]
    fn reset_restores_initial_state() {
        let stream = shift_stream();
        let mut ph = PageHinkley::new(1.0, 60.0);
        assert!(feed(&mut ph, &stream).is_some());
        ph.reset();
        assert_eq!(
            feed(&mut ph, &[150.0; 10]),
            None,
            "new regime is the new normal"
        );
    }

    #[test]
    fn gradual_drift_is_caught_by_page_hinkley() {
        let stream: Vec<f64> = (0..80).map(|i| 100.0 + i as f64 * 1.5).collect();
        let mut ph = PageHinkley::new(0.5, 40.0);
        assert!(feed(&mut ph, &stream).is_some());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            FixedThreshold::new(0.1, 3).name(),
            PageHinkley::new(0.1, 1.0).name(),
            Cusum::new(0.1, 1.0, 3).name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
