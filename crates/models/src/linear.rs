//! Linear models: ridge regression with feature standardization, and
//! the Ernest performance model (Venkataraman et al., NSDI'16) for
//! machine-scale extrapolation (§II-A).

use crate::linalg::{ridge_solve, LinalgError, Matrix};
use crate::stats::{mean, std_dev};

/// Ridge regression with an intercept and standardized features.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
}

impl RidgeRegression {
    /// Fits `y ≈ w·standardize(x) + b` with L2 penalty `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] when the normal equations are singular
    /// (only with `lambda == 0` and collinear features).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Self, LinalgError> {
        assert!(!x.is_empty(), "ridge needs at least one sample");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let d = x[0].len();
        let x_mean: Vec<f64> = (0..d)
            .map(|j| mean(&x.iter().map(|r| r[j]).collect::<Vec<_>>()))
            .collect();
        let x_std: Vec<f64> = (0..d)
            .map(|j| std_dev(&x.iter().map(|r| r[j]).collect::<Vec<_>>()).max(1e-9))
            .collect();
        let y_mean = mean(y);
        let xs: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(j, v)| (v - x_mean[j]) / x_std[j])
                    .collect()
            })
            .collect();
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let xm = Matrix::from_rows(&xs);
        let weights = ridge_solve(&xm, &yc, lambda.max(1e-9))?;
        Ok(RidgeRegression {
            weights,
            intercept: y_mean,
            x_mean,
            x_std,
        })
    }

    /// Predicts the target at `q`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn predict(&self, q: &[f64]) -> f64 {
        assert_eq!(q.len(), self.weights.len(), "query dimension mismatch");
        self.intercept
            + q.iter()
                .enumerate()
                .map(|(j, v)| self.weights[j] * (v - self.x_mean[j]) / self.x_std[j])
                .sum::<f64>()
    }

    /// The fitted (standardized-space) weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// The Ernest model: runtime of a scale-out analytics job as
///
/// `t(m, s) = θ₀ + θ₁·(s/m) + θ₂·log(m) + θ₃·m`
///
/// where `m` is the machine count and `s` the data scale: fixed
/// overhead, perfectly-parallel work, tree-aggregation depth, and
/// per-machine coordination cost. Accurate for ML-style jobs; §II-A
/// notes (via CherryPick) its poor adaptivity to other job types — our
/// E5/E9 experiments reproduce exactly that contrast.
#[derive(Debug, Clone)]
pub struct ErnestModel {
    theta: Vec<f64>,
}

impl ErnestModel {
    /// The model's feature map.
    pub fn features(machines: f64, scale: f64) -> Vec<f64> {
        let m = machines.max(1.0);
        vec![1.0, scale / m, m.ln(), m]
    }

    /// Fits θ on observations of `(machines, scale) → runtime`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] when the design matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths mismatch.
    pub fn fit(obs: &[(f64, f64)], runtimes: &[f64]) -> Result<Self, LinalgError> {
        assert!(!obs.is_empty(), "Ernest needs at least one observation");
        assert_eq!(obs.len(), runtimes.len(), "length mismatch");
        let rows: Vec<Vec<f64>> = obs.iter().map(|&(m, s)| Self::features(m, s)).collect();
        let xm = Matrix::from_rows(&rows);
        let theta = ridge_solve(&xm, runtimes, 1e-6)?;
        Ok(ErnestModel { theta })
    }

    /// Predicted runtime at `(machines, scale)`.
    pub fn predict(&self, machines: f64, scale: f64) -> f64 {
        Self::features(machines, scale)
            .iter()
            .zip(&self.theta)
            .map(|(f, t)| f * t)
            .sum()
    }

    /// The fitted coefficients `[θ₀, θ₁, θ₂, θ₃]`.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_fits_linear_function() {
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let m = RidgeRegression::fit(&x, &y, 1e-6).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            // A hair of ridge shrinkage is expected.
            assert!((m.predict(xi) - yi).abs() < 1e-3);
        }
    }

    #[test]
    fn ernest_recovers_scaling_law() {
        // Ground truth: t = 10 + 100*s/m + 2*ln(m) + 0.5*m
        let truth = |m: f64, s: f64| 10.0 + 100.0 * s / m + 2.0 * m.ln() + 0.5 * m;
        let obs: Vec<(f64, f64)> = vec![
            (1.0, 1.0),
            (2.0, 1.0),
            (4.0, 1.0),
            (8.0, 1.0),
            (2.0, 2.0),
            (4.0, 4.0),
            (8.0, 2.0),
            (16.0, 4.0),
        ];
        let y: Vec<f64> = obs.iter().map(|&(m, s)| truth(m, s)).collect();
        let model = ErnestModel::fit(&obs, &y).unwrap();
        // Extrapolate beyond the training machine counts.
        let pred = model.predict(32.0, 4.0);
        let actual = truth(32.0, 4.0);
        assert!(
            (pred - actual).abs() / actual < 0.05,
            "pred {pred} vs {actual}"
        );
    }

    #[test]
    fn ernest_features_shape() {
        let f = ErnestModel::features(4.0, 2.0);
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 0.5);
    }

    #[test]
    fn ridge_weights_accessible() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 1.0, 2.0];
        let m = RidgeRegression::fit(&x, &y, 1e-6).unwrap();
        assert_eq!(m.weights().len(), 1);
        assert!(m.weights()[0] > 0.0);
    }
}
