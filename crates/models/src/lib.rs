//! Surrogate models and statistics for configuration tuning.
//!
//! Implements, from scratch, every model family the paper's surveyed
//! tuning systems rely on:
//!
//! * [`gp`] — Gaussian-process regression with squared-exponential /
//!   Matérn-5/2 kernels (CherryPick's Bayesian optimization, §II-A) and
//!   Duvenaud-style additive kernels (§V-A), plus Expected-Improvement
//!   and confidence-bound acquisition;
//! * [`tree`] / [`forest`] — CART regression trees (Wang et al.) and
//!   bagged random forests (PARIS);
//! * [`linear`] — ridge regression and the Ernest machine-scaling model;
//! * [`cluster`] — k-medoids workload clustering (AROMA) and k-NN
//!   similarity retrieval;
//! * [`changepoint`] — Page–Hinkley / CUSUM drift detectors and the
//!   fixed-threshold baseline (§V-D re-tuning detection);
//! * [`linalg`] — the small dense linear algebra (Cholesky, ridge
//!   solves) the above need;
//! * [`par`] — scoped-thread fork/join helpers the fitting hot paths
//!   fan out over (`SEAMLESS_THREADS` overrides the worker count);
//! * [`stats`] — shared statistics helpers.

pub mod changepoint;
pub mod cluster;
pub mod forest;
pub mod gp;
pub mod linalg;
pub mod linear;
pub mod par;
pub mod stats;
pub mod tree;

pub use changepoint::{ChangeDetector, Cusum, FixedThreshold, PageHinkley};
pub use cluster::{k_medoids, k_nearest, Clustering};
pub use forest::{ForestParams, RandomForest};
pub use gp::{
    expected_improvement, lower_confidence_bound, FitKind, GpFitCache, GpRegressor, Kernel,
};
pub use linalg::{ridge_solve, LinalgError, Matrix};
pub use linear::{ErnestModel, RidgeRegression};
pub use tree::{RegressionTree, TreeParams};
