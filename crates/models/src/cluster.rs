//! Workload clustering: k-medoids (PAM), AROMA's mechanism for grouping
//! jobs by resource signature before transferring tuning models (§II-B,
//! §V-B), plus k-nearest-neighbour retrieval for similarity search.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::stats::dist;

/// The result of a k-medoids clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Indices of the medoid points, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster assignment for each input point (index into `medoids`).
    pub assignment: Vec<usize>,
    /// Total within-cluster distance.
    pub cost: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// The members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs PAM-style k-medoids on `points`.
///
/// Random medoid initialization, then alternate (a) assignment to the
/// nearest medoid and (b) greedy medoid swaps while the total cost
/// improves, up to `max_iters` rounds.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let points = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let clustering = models::k_medoids(&points, 2, 10, &mut rng);
/// assert_eq!(clustering.assignment[0], clustering.assignment[1]);
/// assert_ne!(clustering.assignment[0], clustering.assignment[2]);
/// ```
///
/// # Panics
///
/// Panics when `k == 0` or `k > points.len()`.
pub fn k_medoids<R: Rng + ?Sized>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> Clustering {
    assert!(k >= 1 && k <= points.len(), "need 1 <= k <= n");
    let n = points.len();
    let mut medoids: Vec<usize> = (0..n).collect();
    medoids.shuffle(rng);
    medoids.truncate(k);

    let assign = |medoids: &[usize]| -> (Vec<usize>, f64) {
        let mut total = 0.0;
        let assignment = points
            .iter()
            .map(|p| {
                let (c, d) = medoids
                    .iter()
                    .enumerate()
                    .map(|(c, &m)| (c, dist(p, &points[m])))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("k >= 1");
                total += d;
                c
            })
            .collect();
        (assignment, total)
    };

    let (mut assignment, mut cost) = assign(&medoids);
    for _ in 0..max_iters {
        let mut improved = false;
        for c in 0..k {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[c] = cand;
                let (a, cst) = assign(&trial);
                if cst + 1e-12 < cost {
                    medoids = trial;
                    assignment = a;
                    cost = cst;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    Clustering {
        medoids,
        assignment,
        cost,
    }
}

/// Indices of the `k` nearest neighbours of `query` in `points`
/// (ascending distance).
pub fn k_nearest(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| dist(&points[a], query).total_cmp(&dist(&points[b], query)));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let c = k_medoids(&pts, 2, 20, &mut rng);
        assert_eq!(c.k(), 2);
        // All points in the first blob share a cluster, disjoint from
        // the second blob's cluster.
        let first = c.assignment[0];
        assert!(c.assignment[..10].iter().all(|&a| a == first));
        assert!(c.assignment[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn k_equals_n_gives_zero_cost() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(4);
        let c = k_medoids(&pts, 3, 10, &mut rng);
        assert!(c.cost < 1e-12);
    }

    #[test]
    fn members_partition_the_points() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let c = k_medoids(&pts, 2, 20, &mut rng);
        let total: usize = (0..c.k()).map(|i| c.members(i).len()).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn knn_orders_by_distance() {
        let pts = vec![vec![0.0], vec![10.0], vec![1.0], vec![5.0]];
        let nn = k_nearest(&pts, &[0.9], 2);
        assert_eq!(nn, vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "need 1 <= k <= n")]
    fn k_zero_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = k_medoids(&[vec![0.0]], 0, 5, &mut rng);
    }
}
