//! Bagged random forests — PARIS's model family for VM-type selection
//! (§II-A): bootstrap resampling + random-subspace CART trees, with an
//! ensemble-spread uncertainty estimate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par;
use crate::stats::{mean, std_dev};
use crate::tree::{RegressionTree, TreeParams};

/// Hyperparameters for forest induction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsampling defaults to √d).
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 30,
            tree: TreeParams::default(),
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits a forest on `(x, y)` with bootstrap resampling.
    ///
    /// Trees are induced in parallel over [`par::num_threads`] scoped
    /// workers. Each tree gets its own seed split off the master RNG up
    /// front, so the fitted forest depends only on the seed — not on
    /// the thread count or interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        params: ForestParams,
        rng: &mut R,
    ) -> Self {
        Self::fit_threads(x, y, params, rng, par::num_threads())
    }

    /// [`RandomForest::fit`] with an explicit worker count
    /// (equivalence tests pin this; `1` is a fully sequential fit).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_threads<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        params: ForestParams,
        rng: &mut R,
        threads: usize,
    ) -> Self {
        assert!(!x.is_empty(), "forest needs at least one sample");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let d = x[0].len();
        let subsample = params
            .tree
            .feature_subsample
            .unwrap_or_else(|| ((d as f64).sqrt().ceil() as usize).max(1));
        let tree_params = TreeParams {
            feature_subsample: Some(subsample),
            ..params.tree
        };
        let n = x.len();
        let seeds: Vec<u64> = (0..params.n_trees.max(1)).map(|_| rng.next_u64()).collect();
        let trees = par::par_map_threads(&seeds, threads, |&seed| {
            let mut tree_rng = StdRng::seed_from_u64(seed);
            let (bx, by): (Vec<Vec<f64>>, Vec<f64>) = (0..n)
                .map(|_| {
                    let i = tree_rng.gen_range(0..n);
                    (x[i].clone(), y[i])
                })
                .unzip();
            RegressionTree::fit(&bx, &by, tree_params, &mut tree_rng)
        });
        RandomForest { trees }
    }

    /// Ensemble-mean prediction at `q`.
    pub fn predict(&self, q: &[f64]) -> f64 {
        mean(&self.tree_predictions(q))
    }

    /// Ensemble mean and spread (standard deviation across trees) —
    /// a cheap uncertainty proxy for acquisition functions.
    pub fn predict_with_std(&self, q: &[f64]) -> (f64, f64) {
        let preds = self.tree_predictions(q);
        (mean(&preds), std_dev(&preds))
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    fn tree_predictions(&self, q: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / (n - 1) as f64, (i % 5) as f64 / 4.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0] - 0.5).powi(2) * 10.0).collect();
        (x, y)
    }

    #[test]
    fn forest_fits_a_smooth_function_roughly() {
        let (x, y) = quadratic_data(80);
        let mut rng = StdRng::seed_from_u64(1);
        let f = RandomForest::fit(&x, &y, ForestParams::default(), &mut rng);
        assert!((f.predict(&[0.5, 0.0]) - 0.0).abs() < 0.5);
        assert!((f.predict(&[0.0, 0.0]) - 2.5).abs() < 1.0);
    }

    #[test]
    fn spread_is_larger_off_distribution() {
        let (x, y) = quadratic_data(60);
        let mut rng = StdRng::seed_from_u64(2);
        let f = RandomForest::fit(&x, &y, ForestParams::default(), &mut rng);
        let (_, s_on) = f.predict_with_std(&[0.5, 0.5]);
        let (_, s_edge) = f.predict_with_std(&[0.98, 0.98]);
        // Not guaranteed pointwise, but edges extrapolate across trees.
        assert!(s_edge >= 0.0 && s_on >= 0.0);
        assert_eq!(f.len(), 30);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = quadratic_data(40);
        let fa = RandomForest::fit(
            &x,
            &y,
            ForestParams::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let fb = RandomForest::fit(
            &x,
            &y,
            ForestParams::default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(fa.predict(&[0.3, 0.3]), fb.predict(&[0.3, 0.3]));
    }
}
