//! Gaussian-process regression — the surrogate behind CherryPick-style
//! Bayesian optimization (§II-A), plus Duvenaud-style *additive* kernels
//! (§V-A: interpretable, per-dimension decomposable models).

use crate::linalg::{LinalgError, Matrix};
use crate::par;
use crate::stats::{mean, normal_cdf, normal_pdf, std_dev};

/// Covariance kernels over `[0,1]^d` feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Squared-exponential (RBF): smooth, infinitely differentiable.
    SquaredExp {
        /// Shared length scale across dimensions.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
    /// Matérn 5/2: the standard choice for performance surfaces
    /// (CherryPick uses Matérn).
    Matern52 {
        /// Shared length scale across dimensions.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
    /// First-order additive kernel (Duvenaud et al.): a sum of
    /// one-dimensional squared-exponential kernels — each dimension
    /// contributes independently, making the model decomposable and
    /// far more data-efficient in high dimensions when interactions
    /// are weak.
    Additive {
        /// Shared 1-D length scale.
        length_scale: f64,
        /// Signal variance (split evenly across dimensions).
        variance: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel at a pair of points.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel dimension mismatch");
        match *self {
            Kernel::SquaredExp {
                length_scale,
                variance,
            } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = (x - y) / length_scale;
                        d * d
                    })
                    .sum();
                variance * (-0.5 * d2).exp()
            }
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = (x - y) / length_scale;
                        d * d
                    })
                    .sum();
                let r = d2.sqrt();
                let s5 = 5f64.sqrt();
                variance * (1.0 + s5 * r + 5.0 * d2 / 3.0) * (-s5 * r).exp()
            }
            Kernel::Additive {
                length_scale,
                variance,
            } => {
                let d = a.len().max(1) as f64;
                let sum: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let r = (x - y) / length_scale;
                        (-0.5 * r * r).exp()
                    })
                    .sum();
                variance * sum / d
            }
        }
    }

    /// Same kernel with a different length scale (hyperparameter search).
    #[must_use]
    pub fn with_length_scale(self, ls: f64) -> Kernel {
        match self {
            Kernel::SquaredExp { variance, .. } => Kernel::SquaredExp {
                length_scale: ls,
                variance,
            },
            Kernel::Matern52 { variance, .. } => Kernel::Matern52 {
                length_scale: ls,
                variance,
            },
            Kernel::Additive { variance, .. } => Kernel::Additive {
                length_scale: ls,
                variance,
            },
        }
    }
}

/// A fitted Gaussian-process regressor (zero-mean prior on standardized
/// targets).
///
/// # Example
///
/// ```
/// use models::{GpRegressor, Kernel};
///
/// let x = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let y = vec![1.0, 0.2, 1.1];
/// let gp = GpRegressor::fit(
///     &x, &y,
///     Kernel::Matern52 { length_scale: 0.4, variance: 1.0 },
///     1e-4,
/// ).expect("kernel matrix is positive definite");
/// let (mean, std) = gp.predict(&[0.25]);
/// assert!(std >= 0.0);
/// assert!(mean < 1.2);
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: Kernel,
    noise: f64,
    x: Vec<Vec<f64>>,
    chol: Matrix,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    lml: f64,
}

/// Length-scale grid searched by [`GpRegressor::fit_auto`].
const LS_GRID: [f64; 5] = [0.1, 0.2, 0.4, 0.8, 1.6];
/// Noise grid searched per length scale (the grid is ls-major: grid
/// point `g` is `(LS_GRID[g / 3], NOISE_GRID[g % 3])`).
const NOISE_GRID: [f64; 3] = [1e-4, 1e-2, 5e-2];

/// Target standardization shared by every fitting path:
/// `(mean, std, standardized targets)`.
fn standardize(y: &[f64]) -> (f64, f64, Vec<f64>) {
    let y_mean = mean(y);
    let y_std = std_dev(y).max(1e-9);
    let ys = y.iter().map(|v| (v - y_mean) / y_std).collect();
    (y_mean, y_std, ys)
}

/// Kernel Gram matrix of `x` — *without* the observation-noise
/// diagonal, so one build can serve every noise grid point.
fn kernel_gram(x: &[Vec<f64>], kernel: Kernel) -> Matrix {
    let n = x.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.eval(&x[i], &x[j]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
    }
    k
}

/// GP weights and log marginal likelihood from an existing Cholesky
/// factor of the noisy kernel matrix: `(alpha, lml)`.
fn gp_weights(chol: &Matrix, ys: &[f64]) -> (Vec<f64>, f64) {
    let n = chol.rows();
    let z = chol.solve_lower(ys);
    let alpha = chol.solve_lower_transpose(&z);
    let data_fit: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
    let log_det: f64 = (0..n).map(|i| chol[(i, i)].ln()).sum();
    let lml = -0.5 * data_fit - log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    (alpha, lml)
}

/// Factorizes `gram + (noise + 1e-8)·I` and solves for the GP weights.
fn factorize(
    gram: &Matrix,
    noise: f64,
    ys: &[f64],
) -> Result<(Matrix, Vec<f64>, f64), LinalgError> {
    let mut k = gram.clone();
    for i in 0..k.rows() {
        k[(i, i)] += noise + 1e-8;
    }
    let chol = k.cholesky()?;
    let (alpha, lml) = gp_weights(&chol, ys);
    Ok((chol, alpha, lml))
}

/// Factorizes the whole `fit_auto` grid, building each length scale's
/// Gram matrix once and refactorizing per noise level (5 builds instead
/// of 15). Length scales fan out over `threads` scoped workers; the
/// returned vector is in deterministic ls-major grid order regardless
/// of the thread count. `None` marks grid points whose kernel matrix is
/// not positive definite.
#[allow(clippy::type_complexity)]
fn grid_factorize(
    x: &[Vec<f64>],
    ys: &[f64],
    base: Kernel,
    threads: usize,
) -> Vec<Option<(Matrix, Vec<f64>, f64)>> {
    par::par_map_threads(&LS_GRID, threads, |&ls| {
        let kernel = base.with_length_scale(ls);
        let gram = kernel_gram(x, kernel);
        NOISE_GRID.map(|noise| factorize(&gram, noise, ys).ok())
    })
    .into_iter()
    .flatten()
    .collect()
}

impl GpRegressor {
    /// Fits a GP with the given kernel and observation-noise variance
    /// (in standardized-target units).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] when the kernel matrix is numerically
    /// singular (e.g. duplicate points with zero noise).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: Kernel, noise: f64) -> Result<Self, LinalgError> {
        assert!(!x.is_empty(), "GP needs at least one observation");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let (y_mean, y_std, ys) = standardize(y);
        let (chol, alpha, lml) = factorize(&kernel_gram(x, kernel), noise, &ys)?;
        Ok(GpRegressor {
            kernel,
            noise,
            x: x.to_vec(),
            chol,
            alpha,
            y_mean,
            y_std,
            lml,
        })
    }

    /// Fits a GP selecting length scale and noise by maximizing the log
    /// marginal likelihood over a small grid — the pragmatic
    /// hyperparameter treatment CherryPick-style tuners use.
    ///
    /// The grid is evaluated in parallel ([`par::num_threads`] scoped
    /// workers, one Gram matrix per length scale shared across noise
    /// levels); the selected model is identical to a sequential scan of
    /// the grid regardless of the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_auto(x: &[Vec<f64>], y: &[f64], base: Kernel) -> Self {
        Self::fit_auto_threads(x, y, base, par::num_threads())
    }

    /// [`GpRegressor::fit_auto`] with an explicit worker count
    /// (equivalence tests pin this; `1` is a fully sequential fit).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_auto_threads(x: &[Vec<f64>], y: &[f64], base: Kernel, threads: usize) -> Self {
        GpFitCache::default().refit_full(x, y, base, threads)
    }

    /// Posterior predictive mean and standard deviation at `q`.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let n = self.x.len();
        let mut kstar = vec![0.0; n];
        let mut v = vec![0.0; n];
        self.predict_into(q, &mut kstar, &mut v)
    }

    /// Batched posterior prediction: one `(mean, std)` per query row,
    /// reusing the `kstar` / solve scratch buffers across queries
    /// instead of allocating two vectors per call. Results are
    /// identical to calling [`GpRegressor::predict`] per query.
    pub fn predict_batch(&self, qs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = self.x.len();
        let mut kstar = vec![0.0; n];
        let mut v = vec![0.0; n];
        qs.iter()
            .map(|q| self.predict_into(q, &mut kstar, &mut v))
            .collect()
    }

    /// Prediction kernel shared by [`GpRegressor::predict`] and
    /// [`GpRegressor::predict_batch`]: same operations, caller-owned
    /// scratch.
    fn predict_into(&self, q: &[f64], kstar: &mut [f64], v: &mut [f64]) -> (f64, f64) {
        let n = self.x.len();
        for (slot, xi) in kstar.iter_mut().zip(&self.x) {
            *slot = self.kernel.eval(xi, q);
        }
        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // Forward substitution (the same operations `solve_lower` runs,
        // writing into the scratch buffer instead of a fresh vector).
        for i in 0..n {
            let mut sum = kstar[i];
            for (j, &vj) in v.iter().enumerate().take(i) {
                sum -= self.chol[(i, j)] * vj;
            }
            v[i] = sum / self.chol[(i, i)];
        }
        let kss = self.kernel.eval(q, q) + self.noise;
        let var = (kss - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean_std * self.y_std + self.y_mean, var.sqrt() * self.y_std)
    }

    /// The fit's log marginal likelihood (standardized-target units).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the training set is empty (never true for a fitted GP).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Which path a cached `fit_auto` took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitKind {
    /// Full grid refit: O(n³) per grid point.
    Full,
    /// Incremental update of cached factors: O(n²) per grid point.
    Incremental,
}

/// Incremental surrogate cache for the `fit_auto` grid.
///
/// A Bayesian-optimization loop refits its GP on every proposal, but
/// between consecutive proposals the history usually only *grows* by
/// the point just evaluated. This cache keeps the Cholesky factor of
/// every `(length scale, noise)` grid point; when the new training set
/// extends the cached one, each factor is grown with
/// [`Matrix::cholesky_append`] in O(n²) instead of refactorized in
/// O(n³), and hyperparameter selection reruns over the updated factors.
///
/// Invalidation rule: a different base kernel, or a history that shrank
/// or diverged from the cached prefix, triggers a full refit (which
/// also repopulates the cache).
///
/// Both paths produce bit-for-bit the model an uncached
/// [`GpRegressor::fit_auto`] would select: appended rows reproduce the
/// exact arithmetic of a from-scratch factorization, and selection
/// scans the grid in the same order.
#[derive(Debug, Clone, Default)]
pub struct GpFitCache {
    state: Option<CacheState>,
}

#[derive(Debug, Clone)]
struct CacheState {
    base: Kernel,
    x: Vec<Vec<f64>>,
    /// One factor per grid point in ls-major order; `None` when that
    /// grid point's kernel matrix is not positive definite.
    chols: Vec<Option<Matrix>>,
}

impl GpFitCache {
    /// An empty cache (first fit is always [`FitKind::Full`]).
    pub fn new() -> Self {
        GpFitCache::default()
    }

    /// Drops any cached state.
    pub fn clear(&mut self) {
        self.state = None;
    }

    /// Number of training points the cached factors cover.
    pub fn cached_points(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.x.len())
    }

    /// Cached [`GpRegressor::fit_auto`]: incremental when the training
    /// set extends the cached one under the same base kernel, full grid
    /// refit otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_auto(&mut self, x: &[Vec<f64>], y: &[f64], base: Kernel) -> (GpRegressor, FitKind) {
        self.fit_auto_threads(x, y, base, par::num_threads())
    }

    /// [`GpFitCache::fit_auto`] with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_auto_threads(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        base: Kernel,
        threads: usize,
    ) -> (GpRegressor, FitKind) {
        assert!(!x.is_empty(), "GP needs at least one observation");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let hit = self
            .state
            .as_ref()
            .is_some_and(|s| s.base == base && x.len() >= s.x.len() && x[..s.x.len()] == s.x[..]);
        if !hit {
            return (self.refit_full(x, y, base, threads), FitKind::Full);
        }

        let state = self.state.as_mut().expect("hit implies cached state");
        let n_old = state.x.len();
        let new_points = &x[n_old..];
        if !new_points.is_empty() {
            // Grow every factor by the appended points; length scales
            // fan out in parallel, noise levels share each new kernel
            // row (its off-diagonal entries don't involve the noise).
            let chols = std::mem::take(&mut state.chols);
            let mut it = chols.into_iter();
            let items: Vec<(f64, Vec<Option<Matrix>>)> = LS_GRID
                .iter()
                .map(|&ls| (ls, (&mut it).take(NOISE_GRID.len()).collect()))
                .collect();
            let grown = par::par_map_threads(&items, threads, |(ls, group)| {
                let kernel = base.with_length_scale(*ls);
                let mut group = group.clone();
                for (p, q) in new_points.iter().enumerate() {
                    let j = n_old + p;
                    let row: Vec<f64> = x[..j].iter().map(|xi| kernel.eval(xi, q)).collect();
                    let kqq = kernel.eval(q, q);
                    for (slot, &noise) in group.iter_mut().zip(&NOISE_GRID) {
                        *slot = slot
                            .take()
                            .and_then(|chol| chol.cholesky_append(&row, kqq + (noise + 1e-8)).ok());
                    }
                }
                group
            });
            state.chols = grown.into_iter().flatten().collect();
            state.x = x.to_vec();
        }

        // Re-run hyperparameter selection over the grown factors (the
        // weights must be recomputed even for old points: target
        // standardization depends on the full `y`).
        let (y_mean, y_std, ys) = standardize(y);
        let mut best: Option<(usize, Vec<f64>, f64)> = None;
        for (g, slot) in state.chols.iter().enumerate() {
            if let Some(chol) = slot {
                let (alpha, lml) = gp_weights(chol, &ys);
                if best.as_ref().is_none_or(|b| lml > b.2) {
                    best = Some((g, alpha, lml));
                }
            }
        }
        let gp = match best {
            Some((g, alpha, lml)) => GpRegressor {
                kernel: base.with_length_scale(LS_GRID[g / NOISE_GRID.len()]),
                noise: NOISE_GRID[g % NOISE_GRID.len()],
                x: x.to_vec(),
                chol: state.chols[g].clone().expect("best slot is Some"),
                alpha,
                y_mean,
                y_std,
                lml,
            },
            None => GpRegressor::fit(x, y, base.with_length_scale(1.0), 1.0)
                .expect("regularized GP fit cannot fail"),
        };
        (gp, FitKind::Incremental)
    }

    /// Full grid fit; repopulates the cache as a side effect.
    fn refit_full(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        base: Kernel,
        threads: usize,
    ) -> GpRegressor {
        assert!(!x.is_empty(), "GP needs at least one observation");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let (y_mean, y_std, ys) = standardize(y);
        let fits = grid_factorize(x, &ys, base, threads);
        let mut chols: Vec<Option<Matrix>> = Vec::with_capacity(fits.len());
        let mut best: Option<(usize, Vec<f64>, f64)> = None;
        for (g, slot) in fits.into_iter().enumerate() {
            match slot {
                Some((chol, alpha, lml)) => {
                    if best.as_ref().is_none_or(|b| lml > b.2) {
                        best = Some((g, alpha, lml));
                    }
                    chols.push(Some(chol));
                }
                None => chols.push(None),
            }
        }
        let gp = match best {
            Some((g, alpha, lml)) => GpRegressor {
                kernel: base.with_length_scale(LS_GRID[g / NOISE_GRID.len()]),
                noise: NOISE_GRID[g % NOISE_GRID.len()],
                x: x.to_vec(),
                chol: chols[g].clone().expect("best slot is Some"),
                alpha,
                y_mean,
                y_std,
                lml,
            },
            None => GpRegressor::fit(x, y, base.with_length_scale(1.0), 1.0)
                .expect("regularized GP fit cannot fail"),
        };
        self.state = Some(CacheState {
            base,
            x: x.to_vec(),
            chols,
        });
        gp
    }
}

/// Expected improvement *below* `best` (minimization), from a posterior
/// `(mean, std)`.
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    // The erf approximation in normal_cdf has ~1.5e-7 absolute error,
    // which can drive the sum slightly negative for very negative z;
    // EI is non-negative by definition, so clamp.
    ((best - mean) * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
}

/// Lower confidence bound `mean − beta·std` (minimization).
pub fn lower_confidence_bound(mean: f64, std: f64, beta: f64) -> f64 {
    mean - beta * std
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn gp_interpolates_training_points_with_low_noise() {
        let x = grid_1d(6);
        let y: Vec<f64> = x.iter().map(|v| (6.0 * v[0]).sin()).collect();
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            1e-6,
        )
        .unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-3, "at {xi:?}: {m} vs {yi}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = vec![1.0, 1.2];
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::Matern52 {
                length_scale: 0.2,
                variance: 1.0,
            },
            1e-6,
        )
        .unwrap();
        let (_, s_near) = gp.predict(&[0.05]);
        let (_, s_far) = gp.predict(&[0.9]);
        assert!(s_far > 3.0 * s_near, "near {s_near}, far {s_far}");
    }

    #[test]
    fn matern_and_se_agree_at_zero_distance() {
        let se = Kernel::SquaredExp {
            length_scale: 0.5,
            variance: 2.0,
        };
        let m52 = Kernel::Matern52 {
            length_scale: 0.5,
            variance: 2.0,
        };
        let p = [0.3, 0.7];
        assert!((se.eval(&p, &p) - 2.0).abs() < 1e-12);
        assert!((m52.eval(&p, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kernels_decay_with_distance() {
        for k in [
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            Kernel::Matern52 {
                length_scale: 0.3,
                variance: 1.0,
            },
            Kernel::Additive {
                length_scale: 0.3,
                variance: 1.0,
            },
        ] {
            let near = k.eval(&[0.0, 0.0], &[0.05, 0.0]);
            let far = k.eval(&[0.0, 0.0], &[0.9, 0.9]);
            assert!(near > far, "{k:?}");
        }
    }

    #[test]
    fn additive_kernel_sees_partial_match() {
        // Points matching in one of two dims keep half the similarity;
        // a product kernel (SE) would decay multiplicatively.
        let add = Kernel::Additive {
            length_scale: 0.1,
            variance: 1.0,
        };
        let a = [0.0, 0.0];
        let b = [0.0, 1.0]; // matches in dim 0 only
        assert!(add.eval(&a, &b) > 0.45);
    }

    #[test]
    fn fit_auto_picks_reasonable_model() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let gp = GpRegressor::fit_auto(
            &x,
            &y,
            Kernel::Matern52 {
                length_scale: 1.0,
                variance: 1.0,
            },
        );
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.1, "predicted {m}");
    }

    #[test]
    fn ei_prefers_low_mean_and_high_uncertainty() {
        let best = 1.0;
        let certain_bad = expected_improvement(2.0, 0.01, best);
        let uncertain_bad = expected_improvement(2.0, 2.0, best);
        let certain_good = expected_improvement(0.5, 0.01, best);
        assert!(uncertain_bad > certain_bad);
        assert!(certain_good > certain_bad);
        assert!(expected_improvement(0.5, 0.0, best) > 0.0);
    }

    #[test]
    fn lcb_is_mean_minus_beta_std() {
        assert!((lower_confidence_bound(1.0, 0.5, 2.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_with_noise_still_fit() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            1e-2,
        )
        .unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.05);
    }
}
