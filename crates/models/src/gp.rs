//! Gaussian-process regression — the surrogate behind CherryPick-style
//! Bayesian optimization (§II-A), plus Duvenaud-style *additive* kernels
//! (§V-A: interpretable, per-dimension decomposable models).

use crate::linalg::{LinalgError, Matrix};
use crate::stats::{mean, normal_cdf, normal_pdf, std_dev};

/// Covariance kernels over `[0,1]^d` feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Squared-exponential (RBF): smooth, infinitely differentiable.
    SquaredExp {
        /// Shared length scale across dimensions.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
    /// Matérn 5/2: the standard choice for performance surfaces
    /// (CherryPick uses Matérn).
    Matern52 {
        /// Shared length scale across dimensions.
        length_scale: f64,
        /// Signal variance.
        variance: f64,
    },
    /// First-order additive kernel (Duvenaud et al.): a sum of
    /// one-dimensional squared-exponential kernels — each dimension
    /// contributes independently, making the model decomposable and
    /// far more data-efficient in high dimensions when interactions
    /// are weak.
    Additive {
        /// Shared 1-D length scale.
        length_scale: f64,
        /// Signal variance (split evenly across dimensions).
        variance: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel at a pair of points.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel dimension mismatch");
        match *self {
            Kernel::SquaredExp {
                length_scale,
                variance,
            } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = (x - y) / length_scale;
                        d * d
                    })
                    .sum();
                variance * (-0.5 * d2).exp()
            }
            Kernel::Matern52 {
                length_scale,
                variance,
            } => {
                let d2: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let d = (x - y) / length_scale;
                        d * d
                    })
                    .sum();
                let r = d2.sqrt();
                let s5 = 5f64.sqrt();
                variance * (1.0 + s5 * r + 5.0 * d2 / 3.0) * (-s5 * r).exp()
            }
            Kernel::Additive {
                length_scale,
                variance,
            } => {
                let d = a.len().max(1) as f64;
                let sum: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| {
                        let r = (x - y) / length_scale;
                        (-0.5 * r * r).exp()
                    })
                    .sum();
                variance * sum / d
            }
        }
    }

    /// Same kernel with a different length scale (hyperparameter search).
    #[must_use]
    pub fn with_length_scale(self, ls: f64) -> Kernel {
        match self {
            Kernel::SquaredExp { variance, .. } => Kernel::SquaredExp {
                length_scale: ls,
                variance,
            },
            Kernel::Matern52 { variance, .. } => Kernel::Matern52 {
                length_scale: ls,
                variance,
            },
            Kernel::Additive { variance, .. } => Kernel::Additive {
                length_scale: ls,
                variance,
            },
        }
    }
}

/// A fitted Gaussian-process regressor (zero-mean prior on standardized
/// targets).
///
/// # Example
///
/// ```
/// use models::{GpRegressor, Kernel};
///
/// let x = vec![vec![0.0], vec![0.5], vec![1.0]];
/// let y = vec![1.0, 0.2, 1.1];
/// let gp = GpRegressor::fit(
///     &x, &y,
///     Kernel::Matern52 { length_scale: 0.4, variance: 1.0 },
///     1e-4,
/// ).expect("kernel matrix is positive definite");
/// let (mean, std) = gp.predict(&[0.25]);
/// assert!(std >= 0.0);
/// assert!(mean < 1.2);
/// ```
#[derive(Debug, Clone)]
pub struct GpRegressor {
    kernel: Kernel,
    noise: f64,
    x: Vec<Vec<f64>>,
    chol: Matrix,
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    lml: f64,
}

impl GpRegressor {
    /// Fits a GP with the given kernel and observation-noise variance
    /// (in standardized-target units).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError`] when the kernel matrix is numerically
    /// singular (e.g. duplicate points with zero noise).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], kernel: Kernel, noise: f64) -> Result<Self, LinalgError> {
        assert!(!x.is_empty(), "GP needs at least one observation");
        assert_eq!(x.len(), y.len(), "X and y length mismatch");
        let y_mean = mean(y);
        let y_std = std_dev(y).max(1e-9);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let n = x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(&x[i], &x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += noise + 1e-8;
        }
        let chol = k.cholesky()?;
        let z = chol.solve_lower(&ys);
        let alpha = chol.solve_lower_transpose(&z);

        // log marginal likelihood (standardized units).
        let data_fit: f64 = ys.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let log_det: f64 = (0..n).map(|i| chol[(i, i)].ln()).sum();
        let lml = -0.5 * data_fit - log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GpRegressor {
            kernel,
            noise,
            x: x.to_vec(),
            chol,
            alpha,
            y_mean,
            y_std,
            lml,
        })
    }

    /// Fits a GP selecting length scale and noise by maximizing the log
    /// marginal likelihood over a small grid — the pragmatic
    /// hyperparameter treatment CherryPick-style tuners use.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit_auto(x: &[Vec<f64>], y: &[f64], base: Kernel) -> Self {
        let mut best: Option<GpRegressor> = None;
        for &ls in &[0.1, 0.2, 0.4, 0.8, 1.6] {
            for &noise in &[1e-4, 1e-2, 5e-2] {
                if let Ok(gp) = GpRegressor::fit(x, y, base.with_length_scale(ls), noise) {
                    let better = best.as_ref().is_none_or(|b| gp.lml > b.lml);
                    if better {
                        best = Some(gp);
                    }
                }
            }
        }
        best.unwrap_or_else(|| {
            // Fall back to a heavily-regularized fit, which cannot fail
            // for sane inputs.
            GpRegressor::fit(x, y, base.with_length_scale(1.0), 1.0)
                .expect("regularized GP fit cannot fail")
        })
    }

    /// Posterior predictive mean and standard deviation at `q`.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, q)).collect();
        let mean_std: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = self.chol.solve_lower(&kstar);
        let kss = self.kernel.eval(q, q) + self.noise;
        let var = (kss - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean_std * self.y_std + self.y_mean, var.sqrt() * self.y_std)
    }

    /// The fit's log marginal likelihood (standardized-target units).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the training set is empty (never true for a fitted GP).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Expected improvement *below* `best` (minimization), from a posterior
/// `(mean, std)`.
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    // The erf approximation in normal_cdf has ~1.5e-7 absolute error,
    // which can drive the sum slightly negative for very negative z;
    // EI is non-negative by definition, so clamp.
    ((best - mean) * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
}

/// Lower confidence bound `mean − beta·std` (minimization).
pub fn lower_confidence_bound(mean: f64, std: f64, beta: f64) -> f64 {
    mean - beta * std
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn gp_interpolates_training_points_with_low_noise() {
        let x = grid_1d(6);
        let y: Vec<f64> = x.iter().map(|v| (6.0 * v[0]).sin()).collect();
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            1e-6,
        )
        .unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = gp.predict(xi);
            assert!((m - yi).abs() < 1e-3, "at {xi:?}: {m} vs {yi}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = vec![1.0, 1.2];
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::Matern52 {
                length_scale: 0.2,
                variance: 1.0,
            },
            1e-6,
        )
        .unwrap();
        let (_, s_near) = gp.predict(&[0.05]);
        let (_, s_far) = gp.predict(&[0.9]);
        assert!(s_far > 3.0 * s_near, "near {s_near}, far {s_far}");
    }

    #[test]
    fn matern_and_se_agree_at_zero_distance() {
        let se = Kernel::SquaredExp {
            length_scale: 0.5,
            variance: 2.0,
        };
        let m52 = Kernel::Matern52 {
            length_scale: 0.5,
            variance: 2.0,
        };
        let p = [0.3, 0.7];
        assert!((se.eval(&p, &p) - 2.0).abs() < 1e-12);
        assert!((m52.eval(&p, &p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kernels_decay_with_distance() {
        for k in [
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            Kernel::Matern52 {
                length_scale: 0.3,
                variance: 1.0,
            },
            Kernel::Additive {
                length_scale: 0.3,
                variance: 1.0,
            },
        ] {
            let near = k.eval(&[0.0, 0.0], &[0.05, 0.0]);
            let far = k.eval(&[0.0, 0.0], &[0.9, 0.9]);
            assert!(near > far, "{k:?}");
        }
    }

    #[test]
    fn additive_kernel_sees_partial_match() {
        // Points matching in one of two dims keep half the similarity;
        // a product kernel (SE) would decay multiplicatively.
        let add = Kernel::Additive {
            length_scale: 0.1,
            variance: 1.0,
        };
        let a = [0.0, 0.0];
        let b = [0.0, 1.0]; // matches in dim 0 only
        assert!(add.eval(&a, &b) > 0.45);
    }

    #[test]
    fn fit_auto_picks_reasonable_model() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|v| v[0] * v[0]).collect();
        let gp = GpRegressor::fit_auto(
            &x,
            &y,
            Kernel::Matern52 {
                length_scale: 1.0,
                variance: 1.0,
            },
        );
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 0.25).abs() < 0.1, "predicted {m}");
    }

    #[test]
    fn ei_prefers_low_mean_and_high_uncertainty() {
        let best = 1.0;
        let certain_bad = expected_improvement(2.0, 0.01, best);
        let uncertain_bad = expected_improvement(2.0, 2.0, best);
        let certain_good = expected_improvement(0.5, 0.01, best);
        assert!(uncertain_bad > certain_bad);
        assert!(certain_good > certain_bad);
        assert!(expected_improvement(0.5, 0.0, best) > 0.0);
    }

    #[test]
    fn lcb_is_mean_minus_beta_std() {
        assert!((lower_confidence_bound(1.0, 0.5, 2.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_with_noise_still_fit() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        let gp = GpRegressor::fit(
            &x,
            &y,
            Kernel::SquaredExp {
                length_scale: 0.3,
                variance: 1.0,
            },
            1e-2,
        )
        .unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.05);
    }
}
