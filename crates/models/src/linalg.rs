//! Small dense linear algebra: exactly what Gaussian-process regression
//! and least-squares model fitting need, and nothing more.
//!
//! Implemented here rather than pulling in a linear-algebra crate (see
//! DESIGN.md §5): the workloads are small (n ≲ a few hundred
//! observations), so a straightforward Cholesky path is fast enough and
//! keeps the dependency set to the allowed list.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on incompatible dimensions.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on incompatible dimensions.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in matvec");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Cholesky decomposition `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular `L`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is
    /// non-positive (after a tiny jitter tolerance).
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Incremental Cholesky: given `self = L` with `L Lᵀ = A` (n × n),
    /// returns the factor of the bordered matrix
    /// `[[A, a], [aᵀ, d]]` in O(n²) instead of refactorizing in O(n³).
    ///
    /// The appended row is computed with the same operations, in the
    /// same order, as [`Matrix::cholesky`] would use for its last row,
    /// so the result is bit-for-bit identical to a from-scratch
    /// factorization of the grown matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when the new pivot
    /// is non-positive (same tolerance as [`Matrix::cholesky`]).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square or `a.len() != self.rows()`.
    pub fn cholesky_append(&self, a: &[f64], d: f64) -> Result<Matrix, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky_append needs a square L");
        let n = self.rows;
        assert_eq!(a.len(), n, "border column length mismatch");
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            l.data[i * (n + 1)..i * (n + 1) + n].copy_from_slice(self.row(i));
        }
        for j in 0..n {
            let mut sum = a[j];
            for k in 0..j {
                sum -= l[(n, k)] * l[(j, k)];
            }
            l[(n, j)] = sum / l[(j, j)];
        }
        let mut sum = d;
        for k in 0..n {
            sum -= l[(n, k)] * l[(n, k)];
        }
        if sum <= 1e-12 {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        l[(n, n)] = sum.sqrt();
        Ok(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self[(i, j)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ x = b` for lower-triangular `L` (back substitution).
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for j in i + 1..n {
                sum -= self[(j, i)] * x[j];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Cholesky hit a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves the ridge-regularized least squares problem
/// `argmin_w ‖X w − y‖² + λ‖w‖²` via the normal equations and Cholesky.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] when `XᵀX + λI` is
/// numerically singular (only possible with `lambda == 0`).
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn ridge_solve(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(x.rows(), y.len(), "X and y row mismatch");
    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    for i in 0..xtx.rows() {
        xtx[(i, i)] += lambda;
    }
    let xty = xt.matvec(y);
    let l = xtx.cholesky()?;
    let z = l.solve_lower(&xty);
    Ok(l.solve_lower_transpose(&z))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_matmul_is_identity_action() {
        let i = Matrix::identity(3);
        let m = Matrix::from_vec(3, 3, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        assert_eq!(i.matmul(&m), m);
        assert_eq!(m.matmul(&i), m);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_close(&m.matvec(&[1.0, 1.0, 1.0]), &[6.0, 15.0], 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]);
        let l = a.cholesky().unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]);
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn triangular_solves_invert_cholesky() {
        let a = Matrix::from_vec(3, 3, vec![6., 2., 1., 2., 5., 2., 1., 2., 4.]);
        let l = a.cholesky().unwrap();
        let b = [1.0, 2.0, 3.0];
        // Solve A x = b via L, then verify.
        let z = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&z);
        let ax = a.matvec(&x);
        assert_close(&ax, &b, 1e-10);
    }

    #[test]
    fn ridge_recovers_exact_solution_without_regularization() {
        // y = 2*x0 - 1*x1
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let y = [2.0, -1.0, 1.0, 3.0];
        let w = ridge_solve(&x, &y, 0.0).unwrap();
        assert_close(&w, &[2.0, -1.0], 1e-9);
    }

    #[test]
    fn ridge_shrinks_with_lambda() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let y = [1.0, 1.0];
        let w0 = ridge_solve(&x, &y, 0.0).unwrap()[0];
        let w1 = ridge_solve(&x, &y, 10.0).unwrap()[0];
        assert!((w0 - 1.0).abs() < 1e-12);
        assert!(w1 < w0 && w1 > 0.0);
    }

    #[test]
    fn cholesky_append_matches_full_factorization() {
        let a4 = Matrix::from_vec(
            4,
            4,
            vec![
                6., 2., 1., 0.5, 2., 5., 2., 0.2, 1., 2., 4., 0.1, 0.5, 0.2, 0.1, 3.,
            ],
        );
        let a3 = Matrix::from_vec(3, 3, vec![6., 2., 1., 2., 5., 2., 1., 2., 4.]);
        let grown = a3
            .cholesky()
            .unwrap()
            .cholesky_append(&[0.5, 0.2, 0.1], 3.0)
            .unwrap();
        let full = a4.cholesky().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(grown[(i, j)], full[(i, j)], "mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn cholesky_append_rejects_indefinite_border() {
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]);
        let l = a.cholesky().unwrap();
        // Border making the matrix singular: new point equals row 0.
        assert!(matches!(
            l.cholesky_append(&[4., 2.], 4.0),
            Err(LinalgError::NotPositiveDefinite { pivot: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_checks_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
