//! Small statistics helpers shared across models and experiments.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// The median.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Index of the minimum value (ties: first); `None` for empty input.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution (Abramowitz–Stegun 7.1.26,
/// |error| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    let sign = if z < 0.0 { -1.0 } else { 1.0 };
    let z = z.abs() / 2f64.sqrt();
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let erf = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-z * z).exp();
    0.5 * (1.0 + sign * erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn argmin_finds_first_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 5.0]), Some(1));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn distances() {
        assert!((dist(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn normal_cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.39894228).abs() < 1e-7);
        assert!(normal_pdf(3.0) < normal_pdf(0.0));
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }
}
