//! Property-based tests for the model crate's numerical invariants.

use models::{
    expected_improvement, GpRegressor, Kernel, Matrix, RandomForest, RegressionTree, TreeParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random PSD matrix A = B·Bᵀ + εI.
fn psd(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>() - 0.5).collect());
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += 0.1;
    }
    a
}

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|v| v.iter().sum::<f64>() * 3.0 + 1.0)
        .collect();
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cholesky of a PSD matrix always succeeds, and L·Lᵀ reconstructs A.
    #[test]
    fn cholesky_reconstructs(seed in any::<u64>(), n in 2usize..8) {
        let a = psd(n, seed);
        let l = a.cholesky().expect("psd by construction");
        let back = l.matmul(&l.transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-8);
            }
        }
    }

    /// Appending a row to an existing Cholesky factor matches the
    /// from-scratch factorization of the bordered matrix.
    #[test]
    fn cholesky_append_matches_full(seed in any::<u64>(), n in 2usize..8) {
        let big = psd(n + 1, seed);
        // Leading n×n principal minor and its border.
        let small = Matrix::from_vec(
            n, n,
            (0..n).flat_map(|i| (0..n).map(move |j| (i, j)))
                .map(|(i, j)| big[(i, j)]).collect(),
        );
        let a: Vec<f64> = (0..n).map(|j| big[(n, j)]).collect();
        let d = big[(n, n)];

        let l_small = small.cholesky().expect("principal minor of psd");
        let appended = l_small.cholesky_append(&a, d).expect("psd border");
        let full = big.cholesky().expect("psd");
        for i in 0..=n {
            for j in 0..=n {
                prop_assert!(
                    (appended[(i, j)] - full[(i, j)]).abs() < 1e-9,
                    "L[{i},{j}] {} vs {}", appended[(i, j)], full[(i, j)]
                );
            }
        }
    }

    /// Triangular solves invert the factorization: A·x == b.
    #[test]
    fn cholesky_solve_inverts(seed in any::<u64>(), n in 2usize..8) {
        let a = psd(n, seed);
        let l = a.cholesky().expect("psd");
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let z = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&z);
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    /// GP predictions at training points match targets closely with
    /// low noise, and the predictive std is non-negative everywhere.
    #[test]
    fn gp_interpolates(seed in any::<u64>(), n in 4usize..12) {
        let (x, y) = dataset(n, 2, seed);
        if let Ok(gp) = GpRegressor::fit(
            &x, &y,
            Kernel::Matern52 { length_scale: 0.5, variance: 1.0 },
            1e-6,
        ) {
            for (xi, yi) in x.iter().zip(&y) {
                let (m, s) = gp.predict(xi);
                prop_assert!(s >= 0.0);
                prop_assert!((m - yi).abs() < 0.3 + 0.05 * yi.abs(),
                    "pred {m} vs target {yi}");
            }
        }
    }

    /// Expected improvement is never negative.
    #[test]
    fn ei_is_nonnegative(mean in -100.0..100.0f64, std in 0.0..50.0f64, best in -100.0..100.0f64) {
        prop_assert!(expected_improvement(mean, std, best) >= 0.0);
    }

    /// Tree predictions never leave the training target range.
    #[test]
    fn tree_predictions_stay_in_range(seed in any::<u64>(), n in 8usize..40) {
        let (x, y) = dataset(n, 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let tree = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        let (lo, hi) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(l, h), &v| (l.min(v), h.max(v)));
        let q: Vec<f64> = vec![0.5, -3.0, 7.0];
        let p = tree.predict(&q);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// Forest predictions are convex combinations of tree predictions,
    /// so they also stay within the target range.
    #[test]
    fn forest_predictions_stay_in_range(seed in any::<u64>()) {
        let (x, y) = dataset(30, 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let f = RandomForest::fit(&x, &y, models::ForestParams::default(), &mut rng);
        let (lo, hi) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY),
            |(l, h), &v| (l.min(v), h.max(v)));
        let p = f.predict(&[0.2, 0.9, 0.4]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// k-medoids always partitions all points among k clusters with
    /// medoids belonging to their own clusters.
    #[test]
    fn kmedoids_partitions(seed in any::<u64>(), k in 1usize..5) {
        let (x, _) = dataset(20, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let c = models::k_medoids(&x, k, 10, &mut rng);
        prop_assert_eq!(c.assignment.len(), 20);
        prop_assert!(c.assignment.iter().all(|&a| a < k));
        for (ci, &m) in c.medoids.iter().enumerate() {
            prop_assert_eq!(c.assignment[m], ci, "medoid in its own cluster");
        }
        prop_assert!(c.cost >= 0.0);
    }
}
