//! Equivalence tests for the parallel and cached model-fitting paths.
//!
//! The parallel layer (`models::par`) and the incremental fit cache
//! (`models::GpFitCache`) are pure performance features: every result
//! they produce must be bit-for-bit identical to the sequential,
//! from-scratch computation. These tests pin that contract across
//! thread counts 1, 2 and 8 and across warm/cold cache states.

use models::{FitKind, ForestParams, GpFitCache, GpRegressor, Kernel, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|v| 2.0 + v.iter().map(|&u| (u - 0.4) * (u - 0.4)).sum::<f64>())
        .collect();
    (x, y)
}

fn queries(k: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

const BASE: Kernel = Kernel::Matern52 {
    length_scale: 0.4,
    variance: 1.0,
};

#[test]
fn fit_auto_is_identical_across_thread_counts() {
    let (x, y) = dataset(40, 5, 11);
    let qs = queries(16, 5, 12);
    let seq = GpRegressor::fit_auto_threads(&x, &y, BASE, 1);
    for threads in [2usize, 8] {
        let par = GpRegressor::fit_auto_threads(&x, &y, BASE, threads);
        assert_eq!(
            seq.log_marginal_likelihood(),
            par.log_marginal_likelihood(),
            "lml differs at {threads} threads"
        );
        for q in &qs {
            assert_eq!(
                seq.predict(q),
                par.predict(q),
                "prediction differs at {threads} threads"
            );
        }
    }
}

#[test]
fn forest_fit_is_identical_across_thread_counts() {
    let (x, y) = dataset(60, 4, 21);
    let qs = queries(10, 4, 22);
    let seq = RandomForest::fit_threads(
        &x,
        &y,
        ForestParams::default(),
        &mut StdRng::seed_from_u64(3),
        1,
    );
    for threads in [2usize, 8] {
        let par = RandomForest::fit_threads(
            &x,
            &y,
            ForestParams::default(),
            &mut StdRng::seed_from_u64(3),
            threads,
        );
        assert_eq!(seq.len(), par.len());
        for q in &qs {
            assert_eq!(
                seq.predict(q),
                par.predict(q),
                "forest prediction differs at {threads} threads"
            );
            assert_eq!(seq.predict_with_std(q), par.predict_with_std(q));
        }
    }
}

#[test]
fn predict_batch_matches_predict_loop() {
    let (x, y) = dataset(32, 6, 31);
    let gp = GpRegressor::fit_auto(&x, &y, BASE);
    let qs = queries(50, 6, 32);
    let batched = gp.predict_batch(&qs);
    assert_eq!(batched.len(), qs.len());
    for (q, b) in qs.iter().zip(&batched) {
        assert_eq!(gp.predict(q), *b);
    }
}

#[test]
fn incremental_cache_matches_full_refit_exactly() {
    // Grow a history one point at a time; after the first fit every
    // step should be an incremental cache hit whose fitted GP is
    // bit-for-bit identical to an uncached from-scratch fit_auto.
    let (x, y) = dataset(30, 5, 41);
    let qs = queries(12, 5, 42);
    let mut cache = GpFitCache::new();
    for n in 10..=x.len() {
        let (xs, ys) = (&x[..n], &y[..n]);
        let (cached, kind) = cache.fit_auto(xs, ys, BASE);
        if n > 10 {
            assert_eq!(kind, FitKind::Incremental, "n={n} should hit the cache");
        }
        let fresh = GpRegressor::fit_auto(xs, ys, BASE);
        assert_eq!(
            cached.log_marginal_likelihood(),
            fresh.log_marginal_likelihood(),
            "lml diverges at n={n}"
        );
        for q in &qs {
            assert_eq!(cached.predict(q), fresh.predict(q), "diverges at n={n}");
        }
    }
    assert_eq!(cache.cached_points(), x.len());
}

#[test]
fn cache_invalidates_on_kernel_change_and_shrunk_history() {
    let (x, y) = dataset(20, 4, 51);
    let mut cache = GpFitCache::new();
    let (_, k0) = cache.fit_auto(&x, &y, BASE);
    assert_eq!(k0, FitKind::Full);

    // Different base kernel: must refit from scratch.
    let other = Kernel::SquaredExp {
        length_scale: 0.4,
        variance: 1.0,
    };
    let (_, k1) = cache.fit_auto(&x, &y, other);
    assert_eq!(k1, FitKind::Full);

    // Shrunk history: must refit from scratch.
    let (_, k2) = cache.fit_auto(&x[..10], &y[..10], other);
    assert_eq!(k2, FitKind::Full);

    // Diverged prefix: must refit from scratch.
    let mut x2 = x[..10].to_vec();
    x2[0][0] += 0.5;
    let (_, k3) = cache.fit_auto(&x2, &y[..10], other);
    assert_eq!(k3, FitKind::Full);
}

#[test]
fn incremental_cache_appends_many_points_at_once() {
    // A hit does not require growth by exactly one point: the session
    // batches observations, so several rows may append per fit.
    let (x, y) = dataset(24, 5, 61);
    let mut cache = GpFitCache::new();
    cache.fit_auto(&x[..8], &y[..8], BASE);
    let (cached, kind) = cache.fit_auto(&x, &y, BASE);
    assert_eq!(kind, FitKind::Incremental);
    let fresh = GpRegressor::fit_auto(&x, &y, BASE);
    assert_eq!(
        cached.log_marginal_likelihood(),
        fresh.log_marginal_likelihood()
    );
    for q in &queries(8, 5, 62) {
        assert_eq!(cached.predict(q), fresh.predict(q));
    }
}

#[test]
fn par_equivalence_holds_for_additive_kernel() {
    // The sensitivity analysis fits additive-kernel GPs through the
    // same grid path; pin that family too.
    let (x, y) = dataset(26, 4, 71);
    let base = Kernel::Additive {
        length_scale: 0.3,
        variance: 1.0,
    };
    let seq = GpRegressor::fit_auto_threads(&x, &y, base, 1);
    let par = GpRegressor::fit_auto_threads(&x, &y, base, 8);
    for q in &queries(10, 4, 72) {
        assert_eq!(seq.predict(q), par.predict(q));
    }
}
